//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! result types but never serializes them through an external format
//! (there is no `serde_json` in the dependency tree), so the derives
//! only need to *exist* and register `#[serde(...)]` as an inert helper
//! attribute. They expand to nothing.

use proc_macro::TokenStream;

/// Inert `Serialize` derive: accepts the input, emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `Deserialize` derive: accepts the input, emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
