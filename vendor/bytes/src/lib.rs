//! Offline stand-in for the `bytes` crate.
//!
//! The frame codec in `ffd2d-phy` needs cheap-to-clone immutable byte
//! buffers with little-endian cursor reads ([`Bytes`]/[`Buf`]) and an
//! append-only builder ([`BytesMut`]/[`BufMut`]). This vendored subset
//! keeps the same API shape over a single contiguous `Arc<[u8]>`
//! allocation — zero-copy `clone` and `slice`, panicking bounds checks,
//! no rope/segment machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a view into shared
/// storage).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Bytes in the current view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer; shares storage with `self`.
    ///
    /// # Panics
    /// If the range is out of bounds of the current view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The viewed bytes as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor reads over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    ///
    /// # Panics
    /// If `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer exhausted");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        take(self, &mut raw);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        take(self, &mut raw);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        take(self, &mut raw);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut raw = [0u8; 4];
        take(self, &mut raw);
        i32::from_le_bytes(raw)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        take(self, &mut raw);
        i64::from_le_bytes(raw)
    }
}

fn take<B: Buf + ?Sized>(buf: &mut B, dest: &mut [u8]) {
    assert!(buf.remaining() >= dest.len(), "buffer exhausted");
    dest.copy_from_slice(&buf.chunk()[..dest.len()]);
    buf.advance(dest.len());
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Append writes to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_i32_le(-42);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_i32_le(), -42);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(s2.as_slice(), &[2, 3]);
        assert_eq!(b.len(), 5, "parent view unchanged");
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn truncated_read_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn equality_ignores_storage() {
        let a = Bytes::from(vec![9u8, 9]);
        let b = Bytes::from(vec![0u8, 9, 9, 0]).slice(1..3);
        assert_eq!(a, b);
    }
}
