//! Deterministic case runner.

/// Per-test deterministic RNG handed to strategies.
///
/// SplitMix64 stepping — statistically fine for generating test inputs
/// and trivially reproducible from the test name.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// A runner with an explicit seed.
    pub fn new(seed: u64) -> TestRunner {
        TestRunner { state: seed }
    }

    /// A runner seeded from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRunner {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn next_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Precondition failed (`prop_assume!`); try another case.
    Reject,
    /// Assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Run `body` over freshly generated cases until the configured case
/// count passes, a case fails, or too many cases are rejected.
pub fn run_cases<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let mut runner = TestRunner::from_name(name);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    while passed < cases {
        match body(&mut runner) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cases * 64,
                    "{name}: too many rejected cases ({rejected}); weaken prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing case(s)\n{msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::from_name("x");
        let mut b = TestRunner::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRunner::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics() {
        run_cases("always_fails", |_r| {
            Err(TestCaseError::fail("nope".to_string()))
        });
    }

    #[test]
    fn rejects_are_retried() {
        let mut seen = 0u64;
        run_cases("rejects", |r| {
            seen += 1;
            if r.next_u64() % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(seen >= 96);
    }
}
