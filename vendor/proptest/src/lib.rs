//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!`/`prop_assert*`/`prop_assume!`/
//! `prop_oneof!` macros, the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, `any::<T>()` for primitives, numeric
//! range strategies, tuple strategies, `Just`, and
//! [`collection::vec`]/[`collection::hash_set`].
//!
//! Differences from the real crate, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   formatted into the message instead of a minimised counterexample.
//! * **Deterministic by default.** The case RNG is seeded from the test
//!   name, so failures reproduce without a persistence file.
//! * Case count defaults to 96 and honours `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    stringify!($name),
                    |__ppt_runner: &mut $crate::test_runner::TestRunner|
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __ppt_runner);)+
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
