//! Collection strategies.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Size specification for collection strategies: an exact length or a
/// length range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, runner: &mut TestRunner) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + runner.next_usize(self.hi - self.lo)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = self.size.pick(runner);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

/// Strategy for `HashSet<T>`: draws distinct elements until a length
/// from `size` is reached.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> HashSet<S::Value> {
        let target = self.size.pick(runner);
        let mut out = HashSet::with_capacity(target);
        // Cap draws so a narrow element domain cannot spin forever; a
        // smaller-than-requested set is still a valid test input.
        let max_draws = 100 * (target + 1);
        let mut draws = 0;
        while out.len() < target && draws < max_draws {
            out.insert(self.element.new_value(runner));
            draws += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_within_range() {
        let mut r = TestRunner::new(5);
        let s = vec(0u32..10, 2..7);
        for _ in 0..200 {
            let v = s.new_value(&mut r);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_exact_length() {
        let mut r = TestRunner::new(6);
        let s = vec(0u32..10, 4usize);
        assert_eq!(s.new_value(&mut r).len(), 4);
    }

    #[test]
    fn hash_set_is_distinct_and_sized() {
        let mut r = TestRunner::new(7);
        let s = hash_set(crate::strategy::any::<u64>(), 3..20);
        for _ in 0..50 {
            let set = s.new_value(&mut r);
            assert!((3..20).contains(&set.len()));
        }
    }
}
