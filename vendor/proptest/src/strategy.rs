//! Strategies: composable random value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRunner;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.base.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, runner: &mut TestRunner) -> T::Value {
        (self.f)(self.base.new_value(runner)).new_value(runner)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.new_value(runner)
    }
}

/// Uniform choice among several strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let i = runner.next_usize(self.0.len());
        self.0[i].new_value(runner)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Draw one value from the full domain.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// The whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (runner.next_unit_f64() * 600.0 - 300.0).exp2();
        if runner.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let v = (runner.next_u64() as $u) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    return runner.next_u64() as $t;
                }
                let v = (runner.next_u64() as $u) % span;
                lo.wrapping_add(v as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                (self.start..=<$t>::MAX).new_value(runner)
            }
        }
    )*};
}

impl_int_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * runner.next_unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * runner.next_unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, runner: &mut TestRunner) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * runner.next_unit_f64() as f32;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRunner::new(1);
        for _ in 0..500 {
            let a = (3u32..9).new_value(&mut r);
            assert!((3..9).contains(&a));
            let b = (-4i32..=4).new_value(&mut r);
            assert!((-4..=4).contains(&b));
            let c = (0.5f64..2.0).new_value(&mut r);
            assert!((0.5..2.0).contains(&c));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = TestRunner::new(2);
        let s = (1usize..5).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..200 {
            let (n, k) = s.new_value(&mut r);
            assert!(k < n);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = TestRunner::new(3);
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.new_value(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
