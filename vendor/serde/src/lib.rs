//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! derive-macro namespaces so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The traits
//! are inert markers: nothing in the workspace serializes through an
//! external format, so no serializer plumbing is vendored.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
