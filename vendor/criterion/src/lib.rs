//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! `ffd2d-bench` targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size`/`bench_with_input`/
//! `finish`, [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! No statistics beyond mean-of-samples, no HTML reports, no baseline
//! storage — each benchmark prints `name  time: <mean> (±spread)` to
//! stdout. CLI: a bare argument filters benchmarks by substring,
//! `--quick` shortens the measurement window, harness flags cargo
//! passes (`--bench`, etc.) are ignored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, quick }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn measure(&self, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.matches(id) {
            return;
        }
        let budget = if self.quick {
            Duration::from_millis(40)
        } else {
            Duration::from_millis(400)
        };
        let samples = sample_size.clamp(3, 20);
        let mut bencher = Bencher {
            budget: budget / samples as u32,
            samples: Vec::with_capacity(samples),
        };
        for _ in 0..samples {
            f(&mut bencher);
        }
        let (mean, spread) = bencher.stats();
        println!("{id:<48} time: {} (±{})", fmt_ns(mean), fmt_ns(spread));
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.measure(id, 10, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sampling
/// configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.measure(&full, self.sample_size, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .measure(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, running it repeatedly until this sample's budget
    /// is spent, and record mean nanoseconds per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One calibration call so a slow routine still yields a sample.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut iters = 1u64;
        let mut total = first;
        while total < self.budget {
            let remaining = self.budget - total;
            let batch = (remaining.as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.samples.push(total.as_nanos() as f64 / iters as f64);
    }

    fn stats(&self) -> (f64, f64) {
        let n = self.samples.len().max(1) as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let spread = self
            .samples
            .iter()
            .map(|s| (s - mean).abs())
            .fold(0.0f64, f64::max);
        (mean, spread)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_samples() {
        let mut b = Bencher {
            budget: Duration::from_millis(2),
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let (mean, _) = b.stats();
        assert!(mean > 0.0);
    }

    #[test]
    fn id_formats_function_and_parameter() {
        let id = BenchmarkId::new("kruskal", 128);
        assert_eq!(id.id, "kruskal/128");
    }
}
