//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`RngCore`], [`SeedableRng`] (including the PCG-based
//! `seed_from_u64` expansion, kept bit-compatible with `rand_core`
//! 0.6), and the [`Rng`] extension trait with `gen`, `gen_range` and
//! `gen_bool`. All workspace RNGs are hand-rolled (`ffd2d-sim`'s
//! Xoshiro/SplitMix64), so no generator implementations live here —
//! only the traits those generators plug into.
//!
//! Sampling here favours simplicity over the bias-correction machinery
//! of the real crate: integer ranges use a modulo reduction (bias
//! ≤ span/2⁶⁴, irrelevant for simulation workloads) and floats use the
//! standard 53-bit mantissa trick. Every draw is a pure function of the
//! generator state, which is all the workspace's determinism story
//! needs.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the
/// workspace's infallible generators).
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// A new error with a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// Core trait every random-number generator implements.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it over the full seed with a
    /// PCG32 sequence (bit-compatible with `rand_core` 0.6, so seeds
    /// recorded in EXPERIMENTS.md stay stable).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator's raw output (the
/// `Standard` distribution of the real crate).
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let v = (rng.next_u64() as $u) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain: every raw draw is in range.
                    return <$t as SampleStandard>::sample_standard(rng);
                }
                let v = (rng.next_u64() as $u) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(1.0f64..=1.0);
            assert_eq!(d, 1.0);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    struct Bytes32;

    impl RngCore for Bytes32 {
        fn next_u32(&mut self) -> u32 {
            0
        }
        fn next_u64(&mut self) -> u64 {
            0
        }
        fn fill_bytes(&mut self, _: &mut [u8]) {}
        fn try_fill_bytes(&mut self, _: &mut [u8]) -> Result<(), Error> {
            Ok(())
        }
    }

    impl SeedableRng for Bytes32 {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            // Seed expansion must be deterministic and non-degenerate.
            assert_ne!(seed, [0u8; 32]);
            Bytes32
        }
    }

    #[test]
    fn seed_from_u64_expands_nontrivially() {
        let _ = Bytes32::seed_from_u64(0);
    }
}
