//! Stadium traffic offload — why the tree matters at scale.
//!
//! A dense crowd (300 UEs in the Table-I arena) wants D2D links to
//! offload the base station. Before any D2D traffic can flow the crowd
//! must discover neighbours and synchronize. This example runs the
//! mesh baseline (FST) and the proposed tree method (ST) on the *same*
//! crowd and prints the trade-off the paper's Figs. 3–4 plot: at this
//! scale the mesh fails to lock while the tree converges with bounded
//! signalling.
//!
//! ```text
//! cargo run --release --example stadium_offload
//! ```

use ffd2d::baseline::FstProtocol;
use ffd2d::core::{ScenarioConfig, StProtocol, World};
use ffd2d::sim::time::SlotDuration;

fn main() {
    let scenario = ScenarioConfig::table1(300)
        .seeded(90_000)
        .with_max_slots(SlotDuration(30_000));
    println!("building the crowd (300 UEs, 100 m × 100 m, Table-I radio) ...");
    let world = World::new(&scenario);

    println!("running FST (mesh firefly baseline) ...");
    let fst = FstProtocol::run_in(&world);
    println!("running ST (proposed tree method) ...");
    let st = StProtocol::run_in(&world);

    let describe = |name: &str, out: &ffd2d::core::RunOutcome| {
        let time = match out.convergence_time {
            Some(t) => format!("{} ms", t.as_millis()),
            None => format!(
                ">{} ms (did not converge)",
                scenario.sim.max_slots.as_millis()
            ),
        };
        println!(
            "  {name:<4} convergence: {time:<28} messages: {:>8}  collision rate: {:>5.1}%",
            out.messages(),
            100.0 * out.counters.collision_rate()
        );
    };
    describe("FST", &fst);
    describe("ST", &st);

    if st.converged() {
        println!(
            "\nST built a {}-edge spanning tree in {} merge rounds;",
            st.tree_edges.len(),
            st.merge_rounds
        );
        println!("the crowd is slot-synchronized and ready for D2D offload scheduling.");
    }
    if !fst.converged() && st.converged() {
        println!(
            "at this density the mesh jams itself (its {} messages bought no sync), \
             which is exactly the paper's argument for the tree.",
            fst.messages()
        );
    }
}
