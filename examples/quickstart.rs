//! Quickstart: run the paper's Table-I scenario once and inspect what
//! the ST protocol produced.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ffd2d::core::{ScenarioConfig, StProtocol, World};
use ffd2d::sim::time::SlotDuration;

fn main() {
    // 50 devices, 100 m × 100 m, 23 dBm, −95 dBm threshold, 10 dB
    // shadowing, UMi-NLOS fading — the paper's Table I.
    let scenario = ScenarioConfig::table1(50)
        .seeded(2024)
        .with_max_slots(SlotDuration(60_000));

    let world = World::new(&scenario);
    println!(
        "deployment: {} devices, proximity graph has {} links (avg degree {:.1})",
        world.n(),
        world.proximity_graph().m(),
        2.0 * world.proximity_graph().m() as f64 / world.n() as f64
    );

    let outcome = StProtocol::run_in(&world);

    match outcome.convergence_time {
        Some(t) => println!("converged in {} ms of simulated time", t.as_millis()),
        None => println!("did not converge within the horizon"),
    }
    println!(
        "spanning tree: {} edges over {} merge rounds",
        outcome.tree_edges.len(),
        outcome.merge_rounds
    );
    println!(
        "messages: {} total ({} RACH1 fires, {} RACH2 handshake, {} tree unicast)",
        outcome.messages(),
        outcome.counters.rach1_tx,
        outcome.counters.rach2_tx,
        outcome.counters.unicast_tx
    );
    println!(
        "discovery: {:.1}% of audible links found, {} same-service pairs",
        (100.0 * outcome.discovery_completeness()).min(100.0),
        outcome.service_matches
    );
}
