//! The firefly metaheuristic on its own — Algorithm 3 and eq. (13).
//!
//! Uses the firefly location-update rule to refine noisy RSSI position
//! estimates: each "firefly" is a candidate position for an unknown
//! transmitter; brightness is the agreement between the candidate's
//! predicted path losses and the measured RSSI at four anchor nodes.
//! Compares the textbook O(n²) sweep against the paper's rank-ordered
//! O(n log n) variant.
//!
//! ```text
//! cargo run --release --example firefly_optimizer
//! ```

use ffd2d::core::ffa::{ffa_naive, ffa_ranked, FfaConfig};
use ffd2d::radio::pathloss::PathLoss;
use ffd2d::sim::deployment::Meters;
use ffd2d::sim::rng::{StreamId, StreamRng};
use rand::Rng;

fn main() {
    let anchors: [[f64; 2]; 4] = [[10.0, 10.0], [90.0, 15.0], [20.0, 85.0], [80.0, 80.0]];
    let truth: [f64; 2] = [57.0, 42.0];
    let model = PathLoss::PaperPiecewise;

    // Measured RSSI losses from the hidden transmitter to each anchor,
    // with 2 dB measurement noise.
    let mut rng = StreamRng::new(0xF1_EF, 0, StreamId::Experiment);
    let measured: Vec<f64> = anchors
        .iter()
        .map(|a| {
            let d = ((a[0] - truth[0]).powi(2) + (a[1] - truth[1]).powi(2)).sqrt();
            model.loss(Meters(d)).get() + rng.gen_range(-2.0..2.0)
        })
        .collect();

    // Brightness: negative squared error between predicted and measured
    // losses over the anchors.
    let brightness = move |p: [f64; 2]| -> f64 {
        -anchors
            .iter()
            .zip(&measured)
            .map(|(a, &m)| {
                let d = ((a[0] - p[0]).powi(2) + (a[1] - p[1]).powi(2))
                    .sqrt()
                    .max(0.1);
                (model.loss(Meters(d)).get() - m).powi(2)
            })
            .sum::<f64>()
    };

    let cfg = FfaConfig {
        iterations: 80,
        ..FfaConfig::default()
    };
    for (name, ranked) in [
        ("basic O(n^2) FFA", false),
        ("ordered O(n log n) FFA", true),
    ] {
        let mut pop_rng = StreamRng::new(0xF1_EF, 1, StreamId::Experiment);
        let mut pop: Vec<[f64; 2]> = (0..120)
            .map(|_| [pop_rng.gen_range(0.0..100.0), pop_rng.gen_range(0.0..100.0)])
            .collect();
        let mut move_rng = StreamRng::new(0xF1_EF, 2, StreamId::Experiment);
        let result = if ranked {
            ffa_ranked(&mut pop, &brightness, &cfg, &mut move_rng)
        } else {
            ffa_naive(&mut pop, &brightness, &cfg, &mut move_rng)
        };
        let err = ((result.best_position[0] - truth[0]).powi(2)
            + (result.best_position[1] - truth[1]).powi(2))
        .sqrt();
        println!(
            "{name:<24} best ({:5.1}, {:5.1})  error {err:5.2} m  comparisons {:>9}  moves {:>7}",
            result.best_position[0], result.best_position[1], result.comparisons, result.moves
        );
    }
    println!(
        "true position          ({:5.1}, {:5.1})",
        truth[0], truth[1]
    );
}
