//! Proximity services in a shopping mall — the ProSe use-case the
//! paper's introduction motivates.
//!
//! Shoppers cluster around store fronts (clustered deployment). Each
//! device advertises a service interest (food court, electronics,
//! fashion, cinema). The ST protocol discovers neighbours and services
//! *simultaneously* with synchronization; afterwards every device knows
//! which nearby devices share its interest, plus an RSSI distance
//! estimate to each — everything an app needs to suggest "people near
//! you who also want X".
//!
//! ```text
//! cargo run --release --example mall_proximity
//! ```

use ffd2d::core::device::{CouplingMode, Device};
use ffd2d::core::{ScenarioConfig, World};
use ffd2d::phy::codec::ServiceClass;
use ffd2d::radio::units::Dbm;
use ffd2d::sim::deployment::{Deployment, Meters};
use ffd2d::sim::rng::{StreamId, StreamRng};
use ffd2d::sim::time::Slot;

const SERVICES: [&str; 4] = ["food court", "electronics", "fashion", "cinema"];

fn main() {
    // A 120 m × 80 m mall floor with 4 store clusters of shoppers.
    let mut cfg = ScenarioConfig::table1(60).seeded(7);
    cfg.sim.area_width = Meters(120.0);
    cfg.sim.area_height = Meters(80.0);
    cfg.protocol.service_classes = 4;

    let mut rng = StreamRng::new(cfg.sim.seed, 0, StreamId::Deployment);
    let deployment = Deployment::clustered(
        cfg.sim.n_devices,
        4,
        Meters(8.0),
        cfg.sim.area_width,
        cfg.sim.area_height,
        &mut rng,
    );
    // Build the world for the channel/services, then overlay the mall
    // deployment through the lower-level pieces: this example drives
    // the discovery layer directly to show the per-device API.
    let world = World::new(&cfg);

    // Simulate a discovery pass by hand: every device beacons once and
    // all audible peers record it (the protocol engines automate this;
    // here the per-call API is the point).
    let n = deployment.len();
    let mut devices: Vec<Device> = (0..n as u32)
        .map(|id| {
            Device::new(
                id,
                n,
                (id as f64) / n as f64,
                100,
                5,
                world.services()[id as usize],
            )
        })
        .collect();
    let channel =
        ffd2d::radio::channel::Channel::new(&deployment, cfg.channel.clone(), cfg.sim.seed);
    for tx in 0..n as u32 {
        for rx in 0..n as u32 {
            if tx == rx {
                continue;
            }
            let sample = channel.sample(tx, rx, Slot(tx as u64));
            if sample.detected {
                let service = world.services()[tx as usize];
                devices[rx as usize].table.observe_fire(
                    tx,
                    Dbm(sample.rx_power.get()),
                    service,
                    tx,
                    Slot(tx as u64),
                    &cfg.channel.pathloss,
                    cfg.channel.tx_power,
                );
            }
        }
    }
    for d in devices.iter_mut() {
        d.coupling = CouplingMode::Isolated;
    }

    // Report what three shoppers can see.
    for &id in &[0u32, 20, 40] {
        let me = &devices[id as usize];
        let mine = me.service;
        let matches = me.table.service_matches(mine);
        println!(
            "shopper {id} (interested in {}) discovered {} peers, {} sharing the interest:",
            SERVICES[mine.0 as usize],
            me.table.discovered(),
            matches.len()
        );
        let mut nearest: Vec<(u32, f64, f64)> = matches
            .iter()
            .filter_map(|&m| {
                me.table
                    .get(m)
                    .map(|info| (m, info.est_distance.0, deployment.distance(id, m).0))
            })
            .collect();
        nearest.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (peer, est, actual) in nearest.into_iter().take(3) {
            println!("    peer {peer}: RSSI-estimated {est:.1} m away (actually {actual:.1} m)");
        }
    }
    let _ = ServiceClass::KEEP_ALIVE; // (documents the keep-alive class)
}
