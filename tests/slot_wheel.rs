//! Property lock: [`SlotWheel`] ≡ a coalescing priority queue.
//!
//! The two-tier wheel (bitmap ring + far-horizon overflow heap) must be
//! observationally identical to the obvious reference — an ordered set
//! of pending slots popped in ascending order — under any interleaving
//! of pushes (near, far beyond the ring capacity, and stale behind the
//! clock), min-pops, and stepped-window claims. The engines rely on
//! exactly this contract: the wheel is their only wake-up store, and a
//! slot surfacing early, late, twice, or never would break the
//! stepped ≡ event ≡ adaptive bit-identity locked by
//! `tests/engine_equivalence.rs`.

use ffd2d::sim::SlotWheel;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One scripted operation against both implementations.
#[derive(Debug, Clone)]
enum Op {
    /// Push an absolute slot `next + offset` (offsets beyond the ring
    /// capacity land in the overflow tier).
    Push(u64),
    /// Push a slot strictly behind the clock (stale: both drop it).
    PushStale,
    /// Pop the minimum pending slot.
    Pop,
    /// Claim the slot at the clock, as a stepped window does.
    Claim,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Offsets straddle the 4096-slot ring: most in-window, a tail deep
    // into the overflow heap. The tag skews toward pushes so queues
    // actually build up across both tiers.
    (0u8..9, 0u64..10_000).prop_map(|(tag, offset)| match tag {
        0..=3 => Op::Push(offset),
        4 => Op::PushStale,
        5 | 6 => Op::Pop,
        _ => Op::Claim,
    })
}

proptest! {
    #[test]
    fn wheel_matches_ordered_set_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut wheel = SlotWheel::new();
        let mut reference: BTreeSet<u64> = BTreeSet::new();
        // The reference clock mirrors the wheel's: pops and claims
        // advance it, stale pushes sit behind it.
        let mut clock = 0u64;

        for op in &ops {
            match op {
                Op::Push(offset) => {
                    let s = clock + offset;
                    wheel.push(s);
                    reference.insert(s);
                }
                Op::PushStale => {
                    if clock > 0 {
                        let s = clock - 1;
                        wheel.push(s);
                        // Dropped: the reference never re-admits a
                        // slot behind the clock.
                    }
                }
                Op::Pop => {
                    let expect = reference.iter().next().copied();
                    if let Some(s) = expect {
                        reference.remove(&s);
                        clock = s + 1;
                    }
                    prop_assert_eq!(wheel.pop(), expect, "pop order diverged");
                }
                Op::Claim => {
                    let woke = wheel.claim(clock);
                    let expect = reference.remove(&clock);
                    prop_assert_eq!(woke, expect, "claim at {} diverged", clock);
                    clock += 1;
                }
            }
            prop_assert_eq!(
                wheel.pending(),
                reference.len(),
                "pending count diverged"
            );
            prop_assert_eq!(wheel.is_empty(), reference.is_empty());
        }

        // Drain whatever is left: the tail must come out in exactly
        // ascending set order, overflow tier included.
        let mut drained = Vec::new();
        while let Some(s) = wheel.pop() {
            drained.push(s);
        }
        let expect: Vec<u64> = reference.iter().copied().collect();
        prop_assert_eq!(drained, expect, "drain order diverged");
    }
}
