//! Protocol-level invariants checked over many seeded runs: the
//! conservation laws that must hold for *every* trial, converged or
//! not.

use ffd2d::baseline::FstProtocol;
use ffd2d::core::{ScenarioConfig, StProtocol, World};
use ffd2d::graph::UnionFind;
use ffd2d::sim::time::SlotDuration;

fn outcomes(n: usize) -> Vec<(ffd2d::core::RunOutcome, World)> {
    (0..4u64)
        .map(|seed| {
            let cfg = ScenarioConfig::table1(n)
                .seeded(seed * 13 + 1)
                .with_max_slots(SlotDuration(60_000));
            let world = World::new(&cfg);
            (StProtocol::run_in(&world), world)
        })
        .collect()
}

#[test]
fn tree_edges_are_always_a_forest() {
    for (out, _) in outcomes(30) {
        let mut uf = UnionFind::new(out.n_devices);
        for &(u, v) in &out.tree_edges {
            assert!(
                uf.union(u, v),
                "cycle in accepted tree edges: {:?}",
                out.tree_edges
            );
        }
        assert!(out.tree_edges.len() < out.n_devices);
    }
}

#[test]
fn message_counters_are_internally_consistent() {
    for (out, _) in outcomes(25) {
        let c = &out.counters;
        assert_eq!(out.messages(), c.rach1_tx + c.rach2_tx + c.unicast_tx);
        // Every reception outcome requires at least one transmission.
        if c.total_rx_attempts() > 0 {
            assert!(c.total_tx() > 0);
        }
        // Collision rate is a valid probability.
        let rate = c.collision_rate();
        assert!((0.0..=1.0).contains(&rate));
        // The discovery tally cannot exceed all ordered pairs.
        let pairs = (out.n_devices * (out.n_devices - 1)) as u64;
        assert!(out.discovered_links <= pairs);
        assert!(out.service_matches <= out.discovered_links);
    }
}

#[test]
fn converged_runs_have_spanning_trees_on_connected_worlds() {
    for (out, world) in outcomes(30) {
        if out.converged() && ffd2d::graph::connectivity::is_connected(world.proximity_graph()) {
            assert_eq!(
                out.tree_edges.len(),
                out.n_devices - 1,
                "converged but tree incomplete"
            );
        }
    }
}

#[test]
fn fst_never_spends_tree_signalling() {
    for seed in 0..4u64 {
        let cfg = ScenarioConfig::table1(20)
            .seeded(seed)
            .with_max_slots(SlotDuration(30_000));
        let out = FstProtocol::run(&cfg);
        assert_eq!(out.counters.rach2_tx, 0);
        assert_eq!(out.counters.unicast_tx, 0);
        assert_eq!(out.merge_rounds, 0);
        assert!(out.tree_edges.is_empty());
    }
}

#[test]
fn horizon_is_respected() {
    // A one-slot horizon: nothing converges, nothing overruns, nothing
    // panics.
    let cfg = ScenarioConfig::table1(10)
        .seeded(3)
        .with_max_slots(SlotDuration(1));
    let st = StProtocol::run(&cfg);
    assert!(!st.converged());
    let fst = FstProtocol::run(&cfg);
    assert!(!fst.converged());
    assert_eq!(st.time_or(SlotDuration(1)), SlotDuration(1));
}
