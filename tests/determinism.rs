//! Reproducibility guarantees across the whole stack: every published
//! number must be a pure function of `(scenario, master seed)`.

use ffd2d::baseline::FstProtocol;
use ffd2d::core::{ScenarioConfig, StProtocol, World};
use ffd2d::experiments::sweep::{run_paper_sweep, SweepParams};
use ffd2d::sim::time::SlotDuration;

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig::table1(25)
        .seeded(seed)
        .with_max_slots(SlotDuration(120_000))
}

#[test]
fn identical_seeds_identical_outcomes() {
    let a = StProtocol::run(&scenario(99));
    let b = StProtocol::run(&scenario(99));
    assert_eq!(a, b);
    let fa = FstProtocol::run(&scenario(99));
    let fb = FstProtocol::run(&scenario(99));
    assert_eq!(fa, fb);
}

#[test]
fn different_seeds_differ() {
    let a = StProtocol::run(&scenario(1));
    let b = StProtocol::run(&scenario(2));
    // Different deployment → different tree and timing.
    assert_ne!(a.tree_edges, b.tree_edges);
}

#[test]
fn world_construction_is_stable() {
    let cfg = scenario(5);
    let w1 = World::new(&cfg);
    let w2 = World::new(&cfg);
    assert_eq!(w1.deployment().positions(), w2.deployment().positions());
    assert_eq!(w1.proximity_graph().edges(), w2.proximity_graph().edges());
    for a in 0..w1.n() as u32 {
        for b in 0..w1.n() as u32 {
            if a != b {
                assert_eq!(
                    w1.rx_dbm(a, b, ffd2d::sim::Slot(123)),
                    w2.rx_dbm(a, b, ffd2d::sim::Slot(123))
                );
            }
        }
    }
}

#[test]
fn sweep_reports_are_bitwise_reproducible() {
    // The Monte-Carlo harness must give identical reports on repeat
    // runs (and therefore across machines/thread counts by design).
    let params = SweepParams {
        node_counts: vec![15, 30],
        trials: 2,
        horizon: SlotDuration(60_000),
        master_seed: 42,
        ..Default::default()
    };
    let a = run_paper_sweep(&params);
    let b = run_paper_sweep(&params);
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1.time_ms.mean().to_bits(), y.1.time_ms.mean().to_bits());
        assert_eq!(x.2.messages.mean().to_bits(), y.2.messages.mean().to_bits());
    }
}

#[test]
fn sweep_output_is_invariant_under_worker_count() {
    // The parallel harness hands each (param, trial) cell a seed that is
    // a pure function of (master seed, cell), so the grouped output —
    // full protocol runs over the grid-backed medium — must be
    // bit-identical whether the pool has 1, 2 or 8 workers.
    use ffd2d::parallel::{run_trials_with_workers, SweepConfig};

    let params = [10usize, 25];
    let cfg = SweepConfig {
        master_seed: 0xD2D_CAFE,
        trials: 3,
    };
    let trial = |&n: &usize, ctx: ffd2d::parallel::TrialCtx| {
        let scenario = ScenarioConfig::table1(n)
            .seeded(ctx.seed)
            .with_max_slots(SlotDuration(60_000));
        StProtocol::run(&scenario)
    };
    let single = run_trials_with_workers(&params, &cfg, Some(1), trial);
    for workers in [2usize, 8] {
        let parallel = run_trials_with_workers(&params, &cfg, Some(workers), trial);
        assert_eq!(
            single, parallel,
            "sweep output changed with {workers} workers"
        );
    }
}

#[test]
fn protocol_outcome_does_not_depend_on_unrelated_streams() {
    // Consuming the Experiment stream elsewhere must not perturb a
    // trial: streams are independent by construction.
    use ffd2d::sim::rng::{StreamId, StreamRng};
    use rand::Rng;
    let a = StProtocol::run(&scenario(7));
    let mut unrelated = StreamRng::new(7, 0, StreamId::Experiment);
    let _: f64 = unrelated.gen();
    let b = StProtocol::run(&scenario(7));
    assert_eq!(a, b);
}
