//! Equivalence harness: the event-driven slot-skipping engine (and the
//! adaptive engine built on it) versus the stepped reference loop.
//!
//! Both protocol engines ([`StProtocol`] and the FST baseline) can run
//! in three modes (see [`EngineMode`]): the *stepped* loop materializes
//! every slot of the horizon; the *event-driven* loop jumps
//! between wake-up slots (oscillator fires, phase-transition
//! boundaries, unicast deliveries, handshake deadlines) and
//! fast-forwards the idle stretches through memoized phase
//! trajectories; the *adaptive* engine starts event-driven and cuts
//! over per 256-slot density window to stepped execution (and back)
//! when most slots wake anyway. The fast-forward replays the exact
//! `tick()` arithmetic, RNG streams are only consumed at materialized
//! slots, and the wake set provably covers every slot where anything
//! beyond pure phase ticking happens — materializing *extra* slots is
//! outcome-neutral, so every cutover schedule agrees too and all three
//! modes must match **bit for bit**.
//!
//! The harness locks that down at n ∈ {50, 200, 500} across the three
//! channel regimes of `tests/medium_equivalence.rs`:
//!
//! * the paper's Table-I channel (σ = 10 dB shadowing + Rayleigh
//!   fading) in the dense 100 m × 100 m arena;
//! * the ideal channel in a 2 km arena (multi-fragment topologies,
//!   genuine spatial pruning);
//! * a low-shadowing (σ = 3 dB), no-fading 1 km arena.
//!
//! For each cell it asserts identical [`RunOutcome`]s for both
//! protocols, and byte-identical same-seed JSONL traces across the two
//! engine settings (traced runs always materialize every slot — the
//! configured mode must not leak into the log bytes).

use ffd2d::baseline::FstProtocol;
use ffd2d::core::{EngineMode, Parallelism, ScenarioConfig, StProtocol};
use ffd2d::radio::fading::FadingModel;
use ffd2d::sim::deployment::Meters;
use ffd2d::sim::time::SlotDuration;
use ffd2d::trace::JsonlSink;

/// Table-I channel in the paper arena (dense, heavy shadowing+fading).
fn table1_cfg(n: usize, seed: u64, horizon: u64) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(seed)
        .with_max_slots(SlotDuration(horizon))
}

/// Ideal channel in a 2 km arena: sparse contact graphs, so the runs
/// spend most slots idle — the regime the event engine is built for.
fn sparse_ideal_cfg(n: usize, seed: u64, horizon: u64) -> ScenarioConfig {
    let mut cfg = table1_cfg(n, seed, horizon).ideal_channel();
    cfg.sim.area_width = Meters(2000.0);
    cfg.sim.area_height = Meters(2000.0);
    cfg
}

/// Low shadowing, no fading, 1 km arena.
fn sparse_shadowed_cfg(n: usize, seed: u64, horizon: u64) -> ScenarioConfig {
    let mut cfg = table1_cfg(n, seed, horizon).with_shadowing(3.0);
    cfg.channel.fading = FadingModel::None;
    cfg.sim.area_width = Meters(1000.0);
    cfg.sim.area_height = Meters(1000.0);
    cfg
}

/// Assert stepped ≡ event-driven ≡ adaptive for both protocols on
/// `cfg`: bit-identical `RunOutcome`s and byte-identical JSONL traces.
fn assert_engines_agree(label: &str, cfg: &ScenarioConfig) {
    let stepped = cfg.clone().with_engine(EngineMode::Stepped);
    let event = cfg.clone().with_engine(EngineMode::EventDriven);
    let adaptive = cfg.clone().with_engine(EngineMode::Adaptive);

    let st_stepped = StProtocol::run(&stepped);
    let fst_stepped = FstProtocol::run(&stepped);
    for (mode, alt) in [("event", &event), ("adaptive", &adaptive)] {
        let st_alt = StProtocol::run(alt);
        assert_eq!(st_stepped, st_alt, "ST outcomes diverged ({mode}): {label}");
        let fst_alt = FstProtocol::run(alt);
        assert_eq!(
            fst_stepped, fst_alt,
            "FST outcomes diverged ({mode}): {label}"
        );
    }

    // Same seed ⇒ byte-identical JSONL logs, whichever mode the config
    // asks for, and tracing must not perturb the untraced outcome.
    let st_trace = |cfg: &ScenarioConfig| {
        let mut sink = JsonlSink::new(Vec::new());
        let out = StProtocol::run_traced(cfg, &mut sink);
        assert!(sink.io_error().is_none());
        (out, sink.into_inner())
    };
    let (out_s, log_s) = st_trace(&stepped);
    assert_eq!(out_s, st_stepped, "tracing perturbed the ST run: {label}");
    assert!(!log_s.is_empty(), "empty ST trace: {label}");
    for (mode, alt) in [("event", &event), ("adaptive", &adaptive)] {
        let (out_a, log_a) = st_trace(alt);
        assert_eq!(
            out_a, st_stepped,
            "tracing perturbed the ST run ({mode}): {label}"
        );
        assert_eq!(log_s, log_a, "ST JSONL bytes diverged ({mode}): {label}");
    }

    let fst_trace = |cfg: &ScenarioConfig| {
        let mut sink = JsonlSink::new(Vec::new());
        let out = FstProtocol::run_traced(cfg, &mut sink);
        assert!(sink.io_error().is_none());
        (out, sink.into_inner())
    };
    let (fout_s, flog_s) = fst_trace(&stepped);
    assert_eq!(fout_s, fst_stepped, "tracing perturbed FST: {label}");
    assert!(!flog_s.is_empty(), "empty FST trace: {label}");
    for (mode, alt) in [("event", &event), ("adaptive", &adaptive)] {
        let (fout_a, flog_a) = fst_trace(alt);
        assert_eq!(
            fout_a, fst_stepped,
            "tracing perturbed FST ({mode}): {label}"
        );
        assert_eq!(flog_s, flog_a, "FST JSONL bytes diverged ({mode}): {label}");
    }
}

// The horizons shrink with n to keep the (stepped, traced) reference
// runs affordable in debug builds; equivalence does not require
// convergence, but the n=50 cells do converge and so exercise the
// early-exit path under both engines.

#[test]
fn engines_agree_at_n50_table1() {
    assert_engines_agree("n=50 table1", &table1_cfg(50, 0xA11CE, 30_000));
}

#[test]
fn engines_agree_at_n200_table1() {
    assert_engines_agree("n=200 table1", &table1_cfg(200, 0xB0B, 8_000));
}

#[test]
fn engines_agree_at_n500_table1() {
    assert_engines_agree("n=500 table1", &table1_cfg(500, 0x5EED, 2_000));
}

#[test]
fn engines_agree_at_n50_sparse_ideal() {
    assert_engines_agree("n=50 sparse-ideal", &sparse_ideal_cfg(50, 1, 30_000));
}

#[test]
fn engines_agree_at_n200_sparse_ideal() {
    assert_engines_agree("n=200 sparse-ideal", &sparse_ideal_cfg(200, 2, 8_000));
}

#[test]
fn engines_agree_at_n500_sparse_ideal() {
    assert_engines_agree("n=500 sparse-ideal", &sparse_ideal_cfg(500, 3, 2_000));
}

#[test]
fn engines_agree_at_n50_sparse_shadowed() {
    assert_engines_agree("n=50 sparse-shadowed", &sparse_shadowed_cfg(50, 7, 30_000));
}

#[test]
fn engines_agree_at_n200_sparse_shadowed() {
    assert_engines_agree("n=200 sparse-shadowed", &sparse_shadowed_cfg(200, 8, 8_000));
}

#[test]
fn engines_agree_at_n500_sparse_shadowed() {
    assert_engines_agree("n=500 sparse-shadowed", &sparse_shadowed_cfg(500, 9, 2_000));
}

/// Assert the intra-run medium parallelism knob is outcome-neutral on
/// `cfg`: bit-identical [`ffd2d::core::RunOutcome`]s and byte-identical
/// JSONL traces for both protocols under worker counts {1, 2, 8}
/// versus `Off`. (`Fixed` bypasses the auto-engagement threshold, so
/// even small-n cells genuinely run the threaded path.)
fn assert_parallelism_neutral(label: &str, cfg: &ScenarioConfig) {
    let run_all = |p: Parallelism| {
        let cfg = cfg.clone().with_parallelism(p);
        let st = StProtocol::run(&cfg);
        let fst = FstProtocol::run(&cfg);
        let mut st_sink = JsonlSink::new(Vec::new());
        let st_traced = StProtocol::run_traced(&cfg, &mut st_sink);
        assert!(st_sink.io_error().is_none());
        let mut fst_sink = JsonlSink::new(Vec::new());
        let fst_traced = FstProtocol::run_traced(&cfg, &mut fst_sink);
        assert!(fst_sink.io_error().is_none());
        assert_eq!(st, st_traced, "tracing perturbed ST: {label}");
        assert_eq!(fst, fst_traced, "tracing perturbed FST: {label}");
        (st, fst, st_sink.into_inner(), fst_sink.into_inner())
    };

    let baseline = run_all(Parallelism::Off);
    assert!(!baseline.2.is_empty(), "empty ST trace: {label}");
    for workers in [1usize, 2, 8] {
        let sharded = run_all(Parallelism::Fixed(workers));
        assert_eq!(
            sharded.0, baseline.0,
            "ST outcomes diverged: {label}, {workers} workers"
        );
        assert_eq!(
            sharded.1, baseline.1,
            "FST outcomes diverged: {label}, {workers} workers"
        );
        assert_eq!(
            sharded.2, baseline.2,
            "ST JSONL bytes diverged: {label}, {workers} workers"
        );
        assert_eq!(
            sharded.3, baseline.3,
            "FST JSONL bytes diverged: {label}, {workers} workers"
        );
    }
}

/// A dense Table-I cell whose every 256-slot density window stays busy:
/// the adaptive engine must cut over to stepped execution mid-run (the
/// `dense_engine` bench and `tests/telemetry.rs` observe the transition
/// counters) and still match both fixed modes bit for bit — plain,
/// traced, and under medium sharding at workers {1, 2}.
#[test]
fn engines_agree_on_a_dense_cell() {
    let cfg = table1_cfg(1000, 0xDE45E, 600);
    assert_engines_agree("n=1000 dense", &cfg);

    let adaptive = cfg.with_engine(EngineMode::Adaptive);
    let st_base = StProtocol::run(&adaptive);
    let fst_base = FstProtocol::run(&adaptive);
    for workers in [1usize, 2] {
        let sharded = adaptive
            .clone()
            .with_parallelism(Parallelism::Fixed(workers));
        assert_eq!(
            st_base,
            StProtocol::run(&sharded),
            "ST adaptive diverged under {workers} workers"
        );
        assert_eq!(
            fst_base,
            FstProtocol::run(&sharded),
            "FST adaptive diverged under {workers} workers"
        );
    }
}

#[test]
fn parallelism_is_outcome_neutral_at_n50() {
    assert_parallelism_neutral("n=50 table1", &table1_cfg(50, 0xA11CE, 30_000));
}

#[test]
fn parallelism_is_outcome_neutral_at_n500() {
    assert_parallelism_neutral("n=500 table1", &table1_cfg(500, 0x5EED, 2_000));
}
