//! Equivalence harness: the spatial-grid fast medium versus the
//! reference per-pair resolver.
//!
//! `ffd2d_core::world::FastMedium` prunes candidate links through a
//! spatial grid and memoises mean link gains; `ffd2d_phy::Medium`
//! re-samples every `(transmission, receiver)` pair through the full
//! `Channel` stack. Both implement the same decode/collision/capture
//! semantics, and the pruning bound is *provable* (worst-case shadowing
//! plus worst-case fading can never lift a pruned link over the
//! detection threshold), so the two must agree **bit for bit** — same
//! decode pairs, same counters — on any seeded transmission schedule.
//!
//! The harness drives both media through identical deterministic
//! schedules at n ∈ {10, 100, 500} across three channel regimes:
//!
//! * the paper's Table-I channel (σ = 10 dB shadowing + Rayleigh
//!   fading) in the 100 m × 100 m arena, where the worst-case audible
//!   radius exceeds the diagonal and the grid degenerates to one cell;
//! * the ideal channel in a 2 km arena, where the 89 m nominal range is
//!   tiny against the diagonal and the grid genuinely prunes;
//! * a low-shadowing (σ = 3 dB), no-fading 1 km arena — pruning with a
//!   non-trivial shadowing bound in play.

use ffd2d_core::scenario::ScenarioConfig;
use ffd2d_core::world::{FastMedium, World};
use ffd2d_parallel::Parallelism;
use ffd2d_phy::codec::ServiceClass;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_phy::medium::{Medium, Transmission};
use ffd2d_radio::fading::FadingModel;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::Meters;
use ffd2d_sim::time::{Slot, SlotDuration};
use ffd2d_trace::JsonlSink;

/// Deterministic schedule: for each slot, a seed-derived subset of
/// devices transmits, alternating between the two RACH codecs so both
/// per-codec accumulators are exercised.
fn schedule(n: u32, seed: u64, slot: u64) -> Vec<ProximitySignal> {
    let mut txs = Vec::new();
    // 1..=4 transmitters per slot, senders strided around the ring.
    let count = 1 + ((seed ^ slot).wrapping_mul(0x9E37_79B9) >> 7) % 4;
    for k in 0..count {
        let sender = ((slot.wrapping_mul(2 * k + 7) + seed + k * 31) % n as u64) as u32;
        let kind = if (slot + k).is_multiple_of(2) {
            // RACH-1 discovery beacon.
            FrameKind::Fire {
                fragment: sender,
                age: (slot % 5) as u8,
            }
        } else {
            // RACH-2 handshake frame.
            FrameKind::HConnect {
                to: (sender + 1) % n,
                fragment: sender,
                fragment_size: 1,
                head: sender,
            }
        };
        txs.push(ProximitySignal {
            sender,
            service: ServiceClass::KEEP_ALIVE,
            kind,
        });
    }
    txs
}

/// Drive both resolvers through `slots` slots of the schedule and
/// assert identical decode reports and counters at every slot.
fn assert_equivalent(cfg: &ScenarioConfig, seed: u64, slots: u64) {
    let world = World::new(cfg);
    let n = world.n() as u32;
    let channel = world.reference_channel();
    let reference = Medium::default();
    let receivers: Vec<u32> = (0..n).collect();
    let mut fast = FastMedium::new(n as usize);

    let mut ref_counters = Counters::new();
    let mut fast_counters = Counters::new();
    for slot in 0..slots {
        let txs = schedule(n, seed, slot);
        let transmissions: Vec<Transmission> = txs
            .iter()
            .map(|&signal| Transmission::new(signal))
            .collect();

        let reports = reference.resolve(
            &channel,
            Slot(slot),
            &transmissions,
            &receivers,
            &mut ref_counters,
        );
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (rx, report) in receivers.iter().zip(&reports) {
            for sig in &report.decoded {
                expected.push((*rx, sig.sender));
            }
        }
        expected.sort_unstable();

        let mut got: Vec<(u32, u32)> = Vec::new();
        fast.resolve(
            &world,
            Slot(slot),
            &txs,
            &mut fast_counters,
            |rx, sig, _p| {
                got.push((rx, sig.sender));
            },
        );
        got.sort_unstable();

        assert_eq!(
            got, expected,
            "decode reports diverged: n={n} seed={seed} slot={slot}"
        );
        assert_eq!(
            fast_counters, ref_counters,
            "counters diverged: n={n} seed={seed} slot={slot}"
        );
    }
    assert!(
        ref_counters.rx_ok > 0,
        "vacuous run: nothing ever decoded (n={n} seed={seed})"
    );
}

/// Table-I channel in the paper arena: heavy shadowing and fading, grid
/// degenerates to a single cell (radius > diagonal) — the exactness of
/// the lazy-gain path is what is under test.
fn table1_cfg(n: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(seed)
        .with_max_slots(SlotDuration(1000))
}

/// Ideal channel in a 2 km arena: the grid genuinely prunes (~89 m
/// audible radius against a 2.8 km diagonal).
fn sparse_ideal_cfg(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = table1_cfg(n, seed).ideal_channel();
    cfg.sim.area_width = Meters(2000.0);
    cfg.sim.area_height = Meters(2000.0);
    cfg
}

/// Low shadowing, no fading, 1 km arena: pruning with a non-zero (but
/// modest) worst-case shadowing boost in the radius.
fn sparse_shadowed_cfg(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = table1_cfg(n, seed).with_shadowing(3.0);
    cfg.channel.fading = FadingModel::None;
    cfg.sim.area_width = Meters(1000.0);
    cfg.sim.area_height = Meters(1000.0);
    cfg
}

#[test]
fn equivalent_at_n10_table1() {
    assert_equivalent(&table1_cfg(10, 0xA11CE), 0xA11CE, 300);
}

#[test]
fn equivalent_at_n100_table1() {
    assert_equivalent(&table1_cfg(100, 0xB0B), 0xB0B, 120);
}

#[test]
fn equivalent_at_n500_table1() {
    assert_equivalent(&table1_cfg(500, 0x5EED), 0x5EED, 40);
}

#[test]
fn equivalent_at_n10_sparse_ideal() {
    // A 2 km arena leaves 10 devices mutually out of range (vacuously
    // equivalent); 400 m keeps pruning real and decodes non-trivial.
    let mut cfg = sparse_ideal_cfg(10, 1);
    cfg.sim.area_width = Meters(400.0);
    cfg.sim.area_height = Meters(400.0);
    assert_equivalent(&cfg, 1, 300);
}

#[test]
fn equivalent_at_n100_sparse_ideal() {
    assert_equivalent(&sparse_ideal_cfg(100, 2), 2, 120);
}

#[test]
fn equivalent_at_n500_sparse_ideal() {
    let cfg = sparse_ideal_cfg(500, 3);
    // Sanity: this scenario must actually exercise pruning.
    let w = World::new(&cfg);
    assert!(
        w.spatial_grid().cell_count() > 100,
        "expected a fine grid, got {} cells",
        w.spatial_grid().cell_count()
    );
    assert_equivalent(&cfg, 3, 40);
}

#[test]
fn equivalent_at_n10_sparse_shadowed() {
    assert_equivalent(&sparse_shadowed_cfg(10, 7), 7, 300);
}

#[test]
fn equivalent_at_n100_sparse_shadowed() {
    assert_equivalent(&sparse_shadowed_cfg(100, 8), 8, 120);
}

#[test]
fn equivalent_at_n500_sparse_shadowed() {
    assert_equivalent(&sparse_shadowed_cfg(500, 9), 9, 40);
}

/// Per-receiver decoded `(rx, sender)` pairs, one entry per
/// (slot, receiver) in visit order.
type DecodedByReceiver = Vec<Vec<(u32, u32)>>;

/// Drive the reference resolver over `slots` slots under one
/// parallelism setting, returning everything observable: reports,
/// counters, and the traced JSONL bytes.
fn run_reference_sharded(
    cfg: &ScenarioConfig,
    seed: u64,
    slots: u64,
    parallelism: Parallelism,
) -> (DecodedByReceiver, Counters, Vec<u8>) {
    let world = World::new(cfg);
    let n = world.n() as u32;
    let channel = world.reference_channel();
    let medium = Medium::default().with_parallelism(parallelism);
    let receivers: Vec<u32> = (0..n).collect();
    let mut counters = Counters::new();
    let mut sink = JsonlSink::new(Vec::new());
    let mut decoded = Vec::new();
    for slot in 0..slots {
        let txs = schedule(n, seed, slot);
        let transmissions: Vec<Transmission> = txs.iter().map(|&s| Transmission::new(s)).collect();
        let reports = medium.resolve_traced(
            &channel,
            Slot(slot),
            &transmissions,
            &receivers,
            &mut counters,
            &mut sink,
        );
        // Keep the *exact* report order (no sort): sharding must not
        // even permute within a receiver.
        for (rx, report) in receivers.iter().zip(&reports) {
            decoded.push(
                report
                    .decoded
                    .iter()
                    .map(|sig| (*rx, sig.sender))
                    .collect::<Vec<_>>(),
            );
        }
    }
    assert!(sink.io_error().is_none());
    (decoded, counters, sink.into_inner())
}

/// Drive the fast resolver likewise; deliveries keep order and carry
/// the decoded power's exact bits.
fn run_fast_sharded(
    cfg: &ScenarioConfig,
    seed: u64,
    slots: u64,
    parallelism: Parallelism,
) -> (Vec<(u32, u32, u64)>, Counters, Vec<u8>) {
    let cfg = cfg.clone().with_parallelism(parallelism);
    let world = World::new(&cfg);
    let n = world.n() as u32;
    let mut fast = FastMedium::new(n as usize);
    let mut counters = Counters::new();
    let mut sink = JsonlSink::new(Vec::new());
    let mut delivered = Vec::new();
    for slot in 0..slots {
        let txs = schedule(n, seed, slot);
        fast.resolve_traced(
            &world,
            Slot(slot),
            &txs,
            &mut counters,
            &mut sink,
            |rx, sig, p, _| delivered.push((rx, sig.sender, p.to_bits())),
        );
    }
    assert!(sink.io_error().is_none());
    (delivered, counters, sink.into_inner())
}

/// Worker-count determinism, reference resolver: reports (in exact
/// order), counters and traced JSONL bytes must not depend on the
/// sharding. `Fixed` bypasses the auto-engagement threshold, so even
/// the small-n run genuinely crosses the threaded path.
fn assert_reference_sharding_neutral(cfg: &ScenarioConfig, seed: u64, slots: u64) {
    let baseline = run_reference_sharded(cfg, seed, slots, Parallelism::Off);
    assert!(baseline.1.rx_ok > 0, "vacuous run: nothing ever decoded");
    for workers in [1usize, 2, 8] {
        let sharded = run_reference_sharded(cfg, seed, slots, Parallelism::Fixed(workers));
        assert_eq!(sharded.0, baseline.0, "reports diverged, {workers} workers");
        assert_eq!(
            sharded.1, baseline.1,
            "counters diverged, {workers} workers"
        );
        assert_eq!(
            sharded.2, baseline.2,
            "trace bytes diverged, {workers} workers"
        );
    }
}

/// Worker-count determinism, fast resolver: deliveries (order and
/// power bits), counters and traced JSONL bytes must not depend on the
/// sharding of the touched-cell walk.
fn assert_fast_sharding_neutral(cfg: &ScenarioConfig, seed: u64, slots: u64) {
    let baseline = run_fast_sharded(cfg, seed, slots, Parallelism::Off);
    assert!(baseline.1.rx_ok > 0, "vacuous run: nothing ever decoded");
    for workers in [1usize, 2, 8] {
        let sharded = run_fast_sharded(cfg, seed, slots, Parallelism::Fixed(workers));
        assert_eq!(
            sharded.0, baseline.0,
            "deliveries diverged, {workers} workers"
        );
        assert_eq!(
            sharded.1, baseline.1,
            "counters diverged, {workers} workers"
        );
        assert_eq!(
            sharded.2, baseline.2,
            "trace bytes diverged, {workers} workers"
        );
    }
}

#[test]
fn reference_sharding_neutral_at_n50_table1() {
    assert_reference_sharding_neutral(&table1_cfg(50, 0xCAFE), 0xCAFE, 60);
}

#[test]
fn reference_sharding_neutral_at_n500_table1() {
    assert_reference_sharding_neutral(&table1_cfg(500, 0xD00D), 0xD00D, 15);
}

#[test]
fn fast_sharding_neutral_at_n50_table1() {
    assert_fast_sharding_neutral(&table1_cfg(50, 0xF00), 0xF00, 60);
}

#[test]
fn fast_sharding_neutral_at_n500_table1() {
    assert_fast_sharding_neutral(&table1_cfg(500, 0xF500), 0xF500, 15);
}

#[test]
fn fast_sharding_neutral_at_n500_sparse_ideal() {
    // The pruning regime: many grid cells, so the cell-chunked shards
    // genuinely split the walk.
    assert_fast_sharding_neutral(&sparse_ideal_cfg(500, 0x5CA7), 0x5CA7, 15);
}

#[test]
fn auto_parallelism_is_equivalent_to_reference() {
    // End-to-end: the fast medium under `Auto` still matches the
    // reference resolver bit for bit (Auto stays sequential below the
    // pair cutoff and shards above it; either way nothing may move).
    let cfg = table1_cfg(100, 0xAA10).with_parallelism(Parallelism::Auto);
    assert_equivalent(&cfg, 0xAA10, 60);
}

#[test]
fn empty_slots_are_equivalent_and_move_no_counter() {
    // Idle slots interleaved with busy ones: both resolvers early-out
    // on an empty transmission list — no decodes, no counter movement,
    // and the accumulator state carried across the idle gap stays
    // consistent. (The protocol engines skip idle slots entirely; this
    // pins the shortcut both rely on.)
    let cfg = table1_cfg(20, 5);
    let world = World::new(&cfg);
    let channel = world.reference_channel();
    let reference = Medium::default();
    let receivers: Vec<u32> = (0..20).collect();
    let mut fast = FastMedium::new(20);
    let mut ref_counters = Counters::new();
    let mut fast_counters = Counters::new();
    for slot in 0..60u64 {
        let txs = if slot % 3 == 0 {
            schedule(20, 5, slot)
        } else {
            Vec::new()
        };
        let transmissions: Vec<Transmission> = txs.iter().map(|&s| Transmission::new(s)).collect();
        let before = ref_counters;
        let reports = reference.resolve(
            &channel,
            Slot(slot),
            &transmissions,
            &receivers,
            &mut ref_counters,
        );
        assert_eq!(reports.len(), receivers.len());
        if txs.is_empty() {
            assert!(reports.iter().all(|r| r.decoded.is_empty()));
            assert_eq!(ref_counters, before, "idle slot moved a counter");
        }
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (rx, report) in receivers.iter().zip(&reports) {
            for sig in &report.decoded {
                expected.push((*rx, sig.sender));
            }
        }
        expected.sort_unstable();
        let mut got: Vec<(u32, u32)> = Vec::new();
        fast.resolve(
            &world,
            Slot(slot),
            &txs,
            &mut fast_counters,
            |rx, sig, _p| {
                got.push((rx, sig.sender));
            },
        );
        got.sort_unstable();
        assert_eq!(got, expected, "decode reports diverged at slot {slot}");
        assert_eq!(
            fast_counters, ref_counters,
            "counters diverged at slot {slot}"
        );
    }
    assert!(ref_counters.rx_ok > 0, "vacuous run");
}

#[test]
fn half_duplex_transmitters_hear_nothing_in_both_media() {
    // Every device transmits: no decodes, identical counters.
    let cfg = table1_cfg(20, 4);
    let world = World::new(&cfg);
    let channel = world.reference_channel();
    let reference = Medium::default();
    let receivers: Vec<u32> = (0..20).collect();
    let txs: Vec<ProximitySignal> = (0..20)
        .map(|d| ProximitySignal {
            sender: d,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: d,
                age: 0,
            },
        })
        .collect();
    let transmissions: Vec<Transmission> = txs.iter().map(|&s| Transmission::new(s)).collect();

    let mut ref_counters = Counters::new();
    let reports = reference.resolve(
        &channel,
        Slot(0),
        &transmissions,
        &receivers,
        &mut ref_counters,
    );
    assert!(reports.iter().all(|r| r.decoded.is_empty()));

    let mut fast = FastMedium::new(20);
    let mut fast_counters = Counters::new();
    fast.resolve(&world, Slot(0), &txs, &mut fast_counters, |_, _, _| {
        panic!("transmitting devices must be deaf")
    });
    assert_eq!(fast_counters, ref_counters);
}
