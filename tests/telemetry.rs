//! Telemetry guarantees: self-profiling never perturbs the simulation.
//!
//! * A recorded run's [`RunOutcome`] is bit-identical to an unrecorded
//!   one — for both protocols, all three engine modes, and sharded medium
//!   resolution at several worker counts (telemetry reads the clock but
//!   never an RNG stream or any protocol state).
//! * With a trace sink attached as well, the JSONL bytes are identical
//!   whether or not a recorder is listening.
//! * Same `(scenario, seed)` ⇒ identical telemetry *structure*: every
//!   counter and every timer/observation call count matches across
//!   re-runs (durations differ — they are wall clock — but
//!   `perf_inspect` renders the same breakdown shape).
//! * The recorder actually records: the hot-path keys the engines claim
//!   to instrument are present with plausible magnitudes.

use ffd2d::baseline::FstProtocol;
use ffd2d::core::{EngineMode, Parallelism, ScenarioConfig, StProtocol};
use ffd2d::sim::time::SlotDuration;
use ffd2d::telemetry::{NullRecorder, Telemetry};
use ffd2d::trace::JsonlSink;
use proptest::prelude::*;

fn scenario(n: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(seed)
        .with_max_slots(SlotDuration(30_000))
}

/// The full (protocol × engine × workers) matrix for one scenario.
fn assert_outcome_neutral(cfg: &ScenarioConfig) {
    for engine in [
        EngineMode::Stepped,
        EngineMode::EventDriven,
        EngineMode::Adaptive,
    ] {
        for workers in [1usize, 4] {
            let cfg = cfg
                .clone()
                .with_engine(engine)
                .with_parallelism(Parallelism::Fixed(workers));
            let label = format!("{engine:?}, workers={workers}");

            let plain = StProtocol::run(&cfg);
            let mut rec = Telemetry::new();
            let recorded = StProtocol::run_instrumented(&cfg, &mut rec);
            assert_eq!(plain, recorded, "telemetry perturbed ST ({label})");
            let null = StProtocol::run_instrumented(&cfg, &mut NullRecorder);
            assert_eq!(plain, null, "NullRecorder perturbed ST ({label})");
            assert!(
                rec.counter("engine.slots_materialized") > 0,
                "ST recorded nothing ({label})"
            );

            let plain = FstProtocol::run(&cfg);
            let mut rec = Telemetry::new();
            let recorded = FstProtocol::run_instrumented(&cfg, &mut rec);
            assert_eq!(plain, recorded, "telemetry perturbed FST ({label})");
            let null = FstProtocol::run_instrumented(&cfg, &mut NullRecorder);
            assert_eq!(plain, null, "NullRecorder perturbed FST ({label})");
            assert!(
                rec.counter("engine.slots_materialized") > 0,
                "FST recorded nothing ({label})"
            );
        }
    }
}

#[test]
fn telemetry_is_outcome_neutral_across_the_matrix() {
    assert_outcome_neutral(&scenario(50, 11));
}

#[test]
fn telemetry_is_outcome_neutral_under_faults() {
    let cfg = scenario(40, 3);
    let faults = ffd2d::core::FaultPlan::resolve("churn-light", 40, 30_000).expect("preset");
    assert_outcome_neutral(&cfg.with_faults(faults));
}

proptest! {
    /// Seeds beyond the hand-picked ones: the recorder never changes
    /// the outcome. Each case runs one (seed, engine) draw for both
    /// protocols on a small arena — the deterministic matrix above
    /// covers the worker axis; this adds seed diversity cheaply.
    #[test]
    fn telemetry_neutrality_holds_for_arbitrary_seeds(seed in 0u64..1_000_000, mode in 0u8..3) {
        let engine = match mode {
            0 => EngineMode::Stepped,
            1 => EngineMode::EventDriven,
            _ => EngineMode::Adaptive,
        };
        let cfg = ScenarioConfig::table1(20)
            .seeded(seed)
            .with_max_slots(SlotDuration(8_000))
            .with_engine(engine);
        let mut rec = Telemetry::new();
        prop_assert_eq!(
            StProtocol::run(&cfg),
            StProtocol::run_instrumented(&cfg, &mut rec),
            "ST, {:?}, seed {}", engine, seed
        );
        let mut rec = Telemetry::new();
        prop_assert_eq!(
            FstProtocol::run(&cfg),
            FstProtocol::run_instrumented(&cfg, &mut rec),
            "FST, {:?}, seed {}", engine, seed
        );
    }
}

#[test]
fn trace_jsonl_is_byte_identical_with_recorder_attached() {
    let cfg = scenario(50, 23);
    let world = ffd2d::core::World::new(&cfg);

    let st = |rec: bool| -> Vec<u8> {
        let mut sink = JsonlSink::new(Vec::new());
        if rec {
            let mut t = Telemetry::new();
            StProtocol::run_in_instrumented(&world, &mut sink, &mut t);
        } else {
            StProtocol::run_in_traced(&world, &mut sink);
        }
        assert!(sink.io_error().is_none());
        sink.into_inner()
    };
    assert_eq!(st(false), st(true), "recorder changed ST trace bytes");

    let fst = |rec: bool| -> Vec<u8> {
        let mut sink = JsonlSink::new(Vec::new());
        if rec {
            let mut t = Telemetry::new();
            FstProtocol::run_in_instrumented(&world, &mut sink, &mut t);
        } else {
            FstProtocol::run_in_traced(&world, &mut sink);
        }
        assert!(sink.io_error().is_none());
        sink.into_inner()
    };
    assert_eq!(fst(false), fst(true), "recorder changed FST trace bytes");
}

/// Structure (counters + histogram call counts), durations dropped.
fn structure(t: &Telemetry) -> Vec<(String, u64)> {
    let mut s: Vec<(String, u64)> = t
        .counters()
        .map(|(k, v)| (format!("counter:{k}"), v))
        .collect();
    s.extend(t.timers().map(|(k, h)| (format!("timer:{k}"), h.count())));
    s.extend(
        t.observations()
            .map(|(k, h)| (format!("obs:{k}"), h.count())),
    );
    s
}

#[test]
fn same_seed_reruns_have_identical_telemetry_structure() {
    let cfg = scenario(60, 7).with_parallelism(Parallelism::Fixed(4));
    let run = || {
        let mut rec = Telemetry::new();
        StProtocol::run_instrumented(&cfg, &mut rec);
        rec
    };
    let (a, b) = (run(), run());
    let (sa, sb) = (structure(&a), structure(&b));
    assert!(!sa.is_empty());
    assert_eq!(sa, sb, "re-run changed the telemetry structure");
    // Observation histograms carry identical *samples* too (they count
    // work items, not nanoseconds), so their quantiles must agree.
    for ((ka, ha), (kb, hb)) in a.observations().zip(b.observations()) {
        assert_eq!(ka, kb);
        assert_eq!(ha.sum(), hb.sum(), "{ka} sum differs across re-runs");
        assert_eq!(ha.min(), hb.min(), "{ka} min differs across re-runs");
        assert_eq!(ha.max(), hb.max(), "{ka} max differs across re-runs");
    }
}

#[test]
fn hot_path_keys_are_recorded_with_plausible_magnitudes() {
    // Event-driven + sharded medium exercises every instrumented path.
    let cfg = scenario(80, 5)
        .with_engine(EngineMode::EventDriven)
        .with_parallelism(Parallelism::Fixed(4));
    let mut rec = Telemetry::new();
    let out = StProtocol::run_instrumented(&cfg, &mut rec);
    assert!(out.converged());

    let materialized = rec.counter("engine.slots_materialized");
    assert!(materialized > 0);
    assert!(
        rec.counter("engine.wakeups_scheduled") >= rec.counter("engine.wakeups_fired"),
        "fired wake-ups cannot exceed scheduled ones"
    );
    assert_eq!(
        rec.counter("engine.wakeups_fired"),
        materialized,
        "every fired wake-up materializes exactly one slot"
    );
    assert!(rec.counter("engine.slots_skipped") > 0, "no slots warped");
    assert!(
        rec.counter("medium.slots_resolved") <= materialized,
        "cannot resolve more slots than were materialized"
    );
    assert!(rec.counter("medium.transmissions") > 0);
    let fills = rec.counter("medium.gain_cache_misses");
    let hits = rec.counter("medium.gain_cache_hits");
    assert!(fills > 0, "epoch cache never filled a row");
    assert!(
        hits > fills,
        "epoch cache should serve far more rows than it fills \
         (hits {hits}, fills {fills})"
    );
    // Slot timers: each materialized slot lands in exactly one
    // phase-keyed histogram.
    let slot_samples: u64 = [
        "engine.slot.discovery",
        "engine.slot.merge",
        "engine.slot.sync",
    ]
    .iter()
    .filter_map(|k| rec.timer(k))
    .map(|h| h.count())
    .sum();
    assert_eq!(slot_samples, materialized);
    assert_eq!(
        rec.timer("engine.run_ns").map(|h| h.count()),
        Some(1),
        "one total-run timer sample"
    );
    assert!(
        rec.timer("medium.shard_busy_ns")
            .map(|h| h.count())
            .unwrap_or(0)
            > 0,
        "sharded medium recorded no per-shard busy time"
    );
}
