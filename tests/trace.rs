//! Tracing guarantees: observation never perturbs the simulation, and
//! the JSONL logs are deterministic, replayable artefacts.
//!
//! * A traced run's [`RunOutcome`] is bit-identical to an untraced one
//!   (tracing consumes no randomness and touches no protocol state).
//! * Same `(scenario, seed)` ⇒ byte-identical JSONL logs.
//! * Every emitted line parses back, and re-encoding reproduces the
//!   exact bytes (the log is a lossless wire format).
//! * The per-slot timeline tallies agree with the run's [`Counters`] —
//!   the events are a complete account of the medium's bookkeeping.

use ffd2d::baseline::FstProtocol;
use ffd2d::core::{ScenarioConfig, StProtocol};
use ffd2d::sim::time::SlotDuration;
use ffd2d::trace::{
    encode_event, parse_event, CountingSink, JsonlSink, NullSink, TeeSink, TimelineSink,
};

fn scenario(n: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(seed)
        .with_max_slots(SlotDuration(30_000))
}

fn st_jsonl(cfg: &ScenarioConfig) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    StProtocol::run_traced(cfg, &mut sink);
    assert!(sink.io_error().is_none());
    sink.into_inner()
}

#[test]
fn tracing_does_not_perturb_the_run() {
    for n in [50, 200] {
        let cfg = scenario(n, 11);
        let untraced = StProtocol::run(&cfg);
        let null = StProtocol::run_traced(&cfg, &mut NullSink);
        let mut counting = CountingSink::new();
        let counted = StProtocol::run_traced(&cfg, &mut counting);
        assert_eq!(untraced, null, "NullSink perturbed the ST run at n={n}");
        assert_eq!(
            untraced, counted,
            "CountingSink perturbed the ST run at n={n}"
        );
        assert!(counting.total() > 0, "no events at n={n}");

        let fst_untraced = FstProtocol::run(&cfg);
        let fst_counted = FstProtocol::run_traced(&cfg, &mut CountingSink::new());
        assert_eq!(fst_untraced, fst_counted, "tracing perturbed FST at n={n}");
    }
}

#[test]
fn same_seed_gives_byte_identical_jsonl() {
    let cfg = scenario(50, 23);
    assert_eq!(st_jsonl(&cfg), st_jsonl(&cfg));

    let fst = |cfg: &ScenarioConfig| {
        let mut sink = JsonlSink::new(Vec::new());
        FstProtocol::run_traced(cfg, &mut sink);
        sink.into_inner()
    };
    assert_eq!(fst(&cfg), fst(&cfg));

    // And a different seed actually changes the log.
    assert_ne!(st_jsonl(&cfg), st_jsonl(&scenario(50, 24)));
}

#[test]
fn jsonl_log_round_trips_losslessly() {
    let log = st_jsonl(&scenario(30, 5));
    let text = String::from_utf8(log).expect("JSONL is UTF-8");
    let mut lines = 0u64;
    for line in text.lines() {
        let ev = parse_event(line).unwrap_or_else(|| panic!("unparseable line: {line}"));
        assert_eq!(encode_event(&ev), line, "re-encode changed the bytes");
        lines += 1;
    }
    assert!(lines > 100, "suspiciously short log: {lines} lines");
}

#[test]
fn timeline_tallies_match_run_counters() {
    let cfg = scenario(40, 9);
    let mut timeline = TimelineSink::new();
    let out = StProtocol::run_traced(&cfg, &mut timeline);
    let rows = timeline.rows();
    assert!(!rows.is_empty());

    let sum = |f: fn(&ffd2d::trace::TimelineRow) -> u64| rows.iter().map(f).sum::<u64>();
    assert_eq!(sum(|r| r.rach1_tx), out.counters.rach1_tx);
    assert_eq!(sum(|r| r.rach2_tx), out.counters.rach2_tx);
    assert_eq!(sum(|r| r.rx_ok), out.counters.rx_ok);
    assert_eq!(sum(|r| r.rx_collision), out.counters.rx_collision);
    assert_eq!(
        sum(|r| r.rx_below_threshold),
        out.counters.rx_below_threshold
    );

    // The final row reflects the converged population.
    let last = rows[rows.len() - 1];
    assert!(out.converged());
    assert_eq!(last.fragments, 1);
    assert_eq!(last.ground_truth_links, out.ground_truth_links);
}

#[test]
fn tee_preserves_both_branches() {
    let cfg = scenario(25, 3);
    let mut jsonl = JsonlSink::new(Vec::new());
    let mut counting = CountingSink::new();
    StProtocol::run_traced(&cfg, &mut TeeSink(&mut jsonl, &mut counting));
    assert_eq!(jsonl.events(), counting.total());
    assert_eq!(
        st_jsonl(&cfg),
        jsonl.into_inner(),
        "tee changed the JSONL bytes"
    );
}
