//! Cross-crate integration tests: the full stack, driven through the
//! `ffd2d` facade exactly as a downstream user would.

use ffd2d::baseline::FstProtocol;
use ffd2d::core::{ScenarioConfig, StProtocol, World};
use ffd2d::graph::connectivity::is_connected;
use ffd2d::graph::tree::is_spanning_tree;
use ffd2d::graph::{Edge, W};
use ffd2d::sim::time::SlotDuration;

fn scenario(n: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(seed)
        .with_max_slots(SlotDuration(120_000))
}

#[test]
fn st_full_stack_converges_and_builds_a_valid_tree() {
    let cfg = scenario(40, 1);
    let world = World::new(&cfg);
    assert!(is_connected(world.proximity_graph()));

    let out = StProtocol::run_in(&world);
    assert!(out.converged(), "{out:?}");
    assert_eq!(out.tree_edges.len(), 39);
    let edges: Vec<Edge> = out
        .tree_edges
        .iter()
        .map(|&(u, v)| Edge::new(u, v, W::new(0.0)))
        .collect();
    assert!(
        is_spanning_tree(40, &edges),
        "edges are not a spanning tree"
    );

    // Every accepted tree edge must be a usable radio link: its mean
    // power should at least be near the detection threshold (marginal
    // fading links are possible, hard failures are not).
    for &(u, v) in &out.tree_edges {
        let p = world.mean_rx_dbm(u, v);
        assert!(
            p >= world.threshold_dbm() - 9.0,
            "tree uses an unusable link {u}-{v} at {p} dBm"
        );
    }
}

#[test]
fn paired_protocols_share_identical_worlds() {
    let cfg = scenario(25, 2);
    let world = World::new(&cfg);
    let st = StProtocol::run_in(&world);
    let fst = FstProtocol::run_in(&world);
    // Same ground truth in both outcomes.
    assert_eq!(st.ground_truth_links, fst.ground_truth_links);
    assert_eq!(st.n_devices, fst.n_devices);
    // Both synchronize this small scenario.
    assert!(st.converged() && fst.converged());
    // Only ST builds a tree; only ST spends RACH2/unicast signalling.
    assert!(!st.tree_edges.is_empty());
    assert!(fst.tree_edges.is_empty());
    assert_eq!(fst.counters.rach2_tx + fst.counters.unicast_tx, 0);
    assert!(st.counters.rach2_tx > 0);
}

#[test]
fn facade_reexports_cover_the_stack() {
    // Compile-time integration check: one item per substrate crate,
    // reached through the facade.
    let _slot = ffd2d::sim::Slot(0);
    let _dbm = ffd2d::radio::Dbm(23.0);
    let _codec = ffd2d::phy::RachCodec::Rach1;
    let _uf = ffd2d::graph::UnionFind::new(4);
    let _prc = ffd2d::osc::Prc::standard();
    let _sum = ffd2d::metrics::Summary::new();
    let out = ffd2d::parallel::parallel_map(&[1, 2, 3], |x| x * 2);
    assert_eq!(out, vec![2, 4, 6]);
}

#[test]
fn ideal_channel_tree_is_the_unique_maximum_spanning_tree() {
    let cfg = scenario(18, 3).ideal_channel();
    let world = World::new(&cfg);
    let out = StProtocol::run_in(&world);
    assert!(out.converged());
    let oracle = ffd2d::graph::kruskal_max_st(world.proximity_graph());
    let oracle_edges: Vec<(u32, u32)> = oracle.edges.iter().map(|e| (e.u, e.v)).collect();
    assert_eq!(out.tree_edges, oracle_edges);
}

#[test]
fn two_device_network_is_the_smallest_working_case() {
    let cfg = scenario(2, 4).ideal_channel();
    let out = StProtocol::run(&cfg);
    assert!(out.converged());
    assert_eq!(out.tree_edges, vec![(0, 1)]);
    let fst = FstProtocol::run(&cfg);
    assert!(fst.converged());
}

#[test]
fn shadowed_worlds_still_converge_across_seeds() {
    for seed in 10..15 {
        let out = StProtocol::run(&scenario(35, seed));
        assert!(out.converged(), "seed {seed}: {out:?}");
    }
}
