//! Equivalence harness: the epoch-keyed gain cache versus direct
//! per-pair recomputation.
//!
//! [`FastMedium`] caches mean link gains (path loss + shadowing — every
//! position-determined term) in rows keyed `(sender, grid cell)`,
//! valid while the world's mobility epoch stands still and the row's
//! membership stamp matches its sender's; the per-slot fading draw
//! stays outside the cache. A cached row is *the same `f64`s* the
//! direct path computes (same batched kernel, same iteration order), so
//! `GainCacheMode::Off` versus `Epoch` must agree **bit for bit** —
//! including under churn, where joins/leaves stale exactly the churned
//! senders' rows mid-run.
//!
//! The harness locks that down across the full execution matrix (both
//! protocols × all three engines × medium workers {1, 4}) under a
//! churn-heavy fault plan, asserting identical [`RunOutcome`]s and
//! byte-identical JSONL traces; a proptest then drives the medium
//! directly through random position updates, checking a warmed cache
//! never serves a stale row (post-move resolution is bit-identical to
//! a cold medium's) and keeps serving within an unchanged epoch.

use ffd2d::baseline::FstProtocol;
use ffd2d::core::world::FastMedium;
use ffd2d::core::{
    EngineMode, FaultPlan, GainCacheMode, Parallelism, ScenarioConfig, StProtocol, World,
};
use ffd2d::phy::codec::ServiceClass;
use ffd2d::phy::frame::{FrameKind, ProximitySignal};
use ffd2d::sim::counters::Counters;
use ffd2d::sim::deployment::{Meters, Position};
use ffd2d::sim::time::{Slot, SlotDuration};
use ffd2d::trace::JsonlSink;
use proptest::prelude::*;

/// Table-I arena under a churn-heavy plan: joins and leaves force the
/// mid-run cache flush path, power droops exercise the per-transmission
/// adjustment downstream of the cached mean.
fn churny_cfg(n: usize, seed: u64, horizon: u64) -> ScenarioConfig {
    let faults = FaultPlan::resolve("churn-heavy", n, horizon).expect("preset");
    ScenarioConfig::table1(n)
        .seeded(seed)
        .with_max_slots(SlotDuration(horizon))
        .with_faults(faults)
}

/// Assert `Epoch` ≡ `Off` for both protocols on `cfg`: bit-identical
/// `RunOutcome`s and byte-identical JSONL traces.
fn assert_cache_neutral(label: &str, cfg: &ScenarioConfig) {
    let run_all = |mode: GainCacheMode| {
        let cfg = cfg.clone().with_gain_cache(mode);
        let st = StProtocol::run(&cfg);
        let fst = FstProtocol::run(&cfg);
        let mut st_sink = JsonlSink::new(Vec::new());
        let st_traced = StProtocol::run_traced(&cfg, &mut st_sink);
        assert!(st_sink.io_error().is_none());
        let mut fst_sink = JsonlSink::new(Vec::new());
        let fst_traced = FstProtocol::run_traced(&cfg, &mut fst_sink);
        assert!(fst_sink.io_error().is_none());
        assert_eq!(st, st_traced, "tracing perturbed ST: {label}");
        assert_eq!(fst, fst_traced, "tracing perturbed FST: {label}");
        (st, fst, st_sink.into_inner(), fst_sink.into_inner())
    };

    let cached = run_all(GainCacheMode::Epoch);
    let direct = run_all(GainCacheMode::Off);
    assert!(!cached.2.is_empty(), "empty ST trace: {label}");
    assert_eq!(cached.0, direct.0, "ST outcomes diverged: {label}");
    assert_eq!(cached.1, direct.1, "FST outcomes diverged: {label}");
    assert_eq!(cached.2, direct.2, "ST JSONL bytes diverged: {label}");
    assert_eq!(cached.3, direct.3, "FST JSONL bytes diverged: {label}");
}

#[test]
fn gain_cache_is_outcome_neutral_across_the_matrix() {
    // Engines × workers on one churn-heavy cell; each arm runs both
    // protocols, plain and traced, under both cache modes.
    let base = churny_cfg(48, 0xCAC4E, 12_000);
    for engine in [
        EngineMode::Stepped,
        EngineMode::EventDriven,
        EngineMode::Adaptive,
    ] {
        for workers in [1usize, 4] {
            let cfg = base
                .clone()
                .with_engine(engine)
                .with_parallelism(Parallelism::Fixed(workers));
            assert_cache_neutral(&format!("{engine:?}, workers={workers}"), &cfg);
        }
    }
}

#[test]
fn narrow_churn_invalidation_keeps_the_cache_hot() {
    // Churn stales only the churned senders' rows (per-row membership
    // stamps), so a churn-heavy run must keep serving the untouched
    // majority of the cache — under the old whole-store flush this
    // cell's hit rate collapsed every join/leave.
    let cfg = churny_cfg(96, 0xC0FFEE, 8_000);
    let world = World::new(&cfg);
    let mut rec = ffd2d::telemetry::Telemetry::new();
    StProtocol::run_in_instrumented(&world, &mut ffd2d::trace::NullSink, &mut rec);
    let churn = rec.counter("chaos.churn_events");
    assert!(churn > 0, "the churn-heavy plan must actually churn");
    let hits = rec.counter("medium.gain_cache_hits");
    let misses = rec.counter("medium.gain_cache_misses");
    assert!(hits + misses > 0, "the cell must exercise the cache");
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate > 0.95,
        "churn-heavy hit rate degraded to {rate:.3} ({hits} hits / {misses} misses, \
         {churn} churn events) — narrow invalidation regressed"
    );
}

#[test]
fn gain_cache_is_outcome_neutral_on_a_larger_churny_cell() {
    // One bigger population on the defaults (event engine, auto
    // parallelism off) — enough devices that rows genuinely span
    // multiple shards when CI pins FFD2D_WORKERS.
    assert_cache_neutral("n=200 churn-heavy", &churny_cfg(200, 0xD2D, 4_000));
}

/// A mixed fire/handshake batch, senders spread over the population.
fn batch(n: usize, slot: u64) -> Vec<ProximitySignal> {
    (0..12u32)
        .map(|k| {
            let sender = ((k as u64 * (n as u64 / 12).max(1) + slot * 5) % n as u64) as u32;
            let kind = if k % 2 == 0 {
                FrameKind::Fire {
                    fragment: sender,
                    age: 0,
                }
            } else {
                FrameKind::HConnect {
                    to: sender ^ 1,
                    fragment: sender,
                    fragment_size: 1,
                    head: sender,
                }
            };
            ProximitySignal {
                sender,
                service: ServiceClass::KEEP_ALIVE,
                kind,
            }
        })
        .collect()
}

/// Resolve one slot and return every delivery (receiver, sender,
/// rx-power bits) plus the counters — the full observable output.
fn resolve_one(
    medium: &mut FastMedium,
    world: &World,
    slot: u64,
) -> (Vec<(u32, u32, u64)>, Counters) {
    let mut counters = Counters::new();
    let mut deliveries = Vec::new();
    let txs = batch(world.n(), slot);
    medium.resolve(world, Slot(slot), &txs, &mut counters, |r, sig, p| {
        deliveries.push((r, sig.sender, p.to_bits()));
    });
    (deliveries, counters)
}

proptest! {
    /// Random position updates invalidate the cache correctly: after
    /// any move, a medium whose cache was warmed under the *old*
    /// positions resolves bit-identically to a cold medium over the
    /// moved world (no stale row survives), and while nothing moves the
    /// warmed cache keeps resolving bit-identically slot after slot.
    #[test]
    fn position_updates_never_leave_stale_rows(
        seed in 0u64..10_000,
        moved in proptest::collection::vec((0usize..40, -80.0f64..80.0, -80.0f64..80.0), 1..8),
    ) {
        // A 1 km ideal-channel arena: the audibility disc is smaller
        // than the arena, so the grid has many cells and a row covers
        // only part of the population — stale entries would be local,
        // exactly what a whole-store flush must still catch.
        let mut cfg = ScenarioConfig::table1(40).seeded(seed).ideal_channel();
        cfg.sim.area_width = Meters(1000.0);
        cfg.sim.area_height = Meters(1000.0);
        let mut world = World::new(&cfg);

        let mut warm = FastMedium::new(world.n());
        // Warm the cache, then check an unchanged epoch re-serves the
        // cached rows bit-identically to a cold medium.
        let _ = resolve_one(&mut warm, &world, 0);
        let warm_out = resolve_one(&mut warm, &world, 1);
        let cold_out = resolve_one(&mut FastMedium::new(world.n()), &world, 1);
        prop_assert_eq!(&warm_out, &cold_out, "cached re-serve diverged before any move");

        // Perturb a random subset of devices (clamped by the world).
        let mut positions: Vec<Position> = world.deployment().positions().to_vec();
        for &(idx, dx, dy) in &moved {
            positions[idx].x += dx;
            positions[idx].y += dy;
        }
        let epoch_before = world.mobility_epoch();
        world.update_positions(&positions);
        prop_assert!(world.mobility_epoch() > epoch_before, "move did not advance the epoch");

        // The warmed medium must now agree with a cold one on the moved
        // world — any stale mean would shift an rx power and change a
        // delivery bit pattern or a counter.
        let warm_out = resolve_one(&mut warm, &world, 2);
        let cold_out = resolve_one(&mut FastMedium::new(world.n()), &world, 2);
        prop_assert_eq!(&warm_out, &cold_out, "stale row served after a position update");

        // And the re-warmed cache keeps agreeing on later slots.
        let warm_out = resolve_one(&mut warm, &world, 3);
        let cold_out = resolve_one(&mut FastMedium::new(world.n()), &world, 3);
        prop_assert_eq!(&warm_out, &cold_out, "re-warmed cache diverged");
    }
}
