//! Fault-injection contract tests.
//!
//! The chaos subsystem (`ffd2d-chaos`) adds seeded churn, frame
//! drop/duplication, clock skew and power droops to both protocol
//! engines. Two properties make it safe to carry in every build:
//!
//! 1. **None-neutrality** — a [`FaultPlan::none`] attached to a
//!    scenario is *provably inert*: bit-identical [`RunOutcome`]s and
//!    byte-identical JSONL traces versus a config that never mentions
//!    faults at all, for both protocols, both engines, and both medium
//!    worker counts.
//! 2. **Seeded determinism** — a faulted run is a pure function of
//!    `(scenario, plan, seed)`: re-running byte-identically reproduces
//!    it, and like the clean path it is invariant to the engine mode
//!    and the medium worker count (frame fates are stateless keyed
//!    draws, so delivery order can't leak in).
//!
//! On top of the contract, the re-convergence tests check graceful
//! degradation: after the last churn event the population must converge
//! again within the horizon, with the rejoined devices re-attached to
//! the spanning structure.

use ffd2d::baseline::FstProtocol;
use ffd2d::chaos::{ChurnEvent, ChurnKind, ClockSkew, FaultPlan, PowerDroop};
use ffd2d::core::{EngineMode, Parallelism, RunOutcome, ScenarioConfig, StProtocol};
use ffd2d::sim::time::SlotDuration;
use ffd2d::trace::JsonlSink;

fn cfg(n: usize, seed: u64, horizon: u64) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(seed)
        .with_max_slots(SlotDuration(horizon))
}

fn st_traced(cfg: &ScenarioConfig) -> (RunOutcome, Vec<u8>) {
    let mut sink = JsonlSink::new(Vec::new());
    let out = StProtocol::run_traced(cfg, &mut sink);
    assert!(sink.io_error().is_none());
    (out, sink.into_inner())
}

fn fst_traced(cfg: &ScenarioConfig) -> (RunOutcome, Vec<u8>) {
    let mut sink = JsonlSink::new(Vec::new());
    let out = FstProtocol::run_traced(cfg, &mut sink);
    assert!(sink.io_error().is_none());
    (out, sink.into_inner())
}

/// A plan exercising every fault class at once.
fn spicy_plan(horizon: u64) -> FaultPlan {
    FaultPlan {
        drop_prob: 0.05,
        dup_prob: 0.02,
        churn: vec![
            ChurnEvent {
                slot: horizon / 3,
                device: 3,
                kind: ChurnKind::Leave,
            },
            ChurnEvent {
                slot: horizon / 3 + 50,
                device: 7,
                kind: ChurnKind::Leave,
            },
            ChurnEvent {
                slot: horizon * 2 / 3,
                device: 3,
                kind: ChurnKind::Join,
            },
        ],
        skew: vec![ClockSkew {
            device: 5,
            extra_slots: 2,
        }],
        droop: vec![PowerDroop {
            device: 1,
            from_slot: horizon / 4,
            until_slot: horizon / 2,
            droop_db: 12.0,
        }],
    }
}

/// `FaultPlan::none()` must be indistinguishable — in outcome bits and
/// trace bytes — from a scenario that never mentions faults, across
/// protocols × engines × worker counts.
#[test]
fn none_plan_is_outcome_and_byte_neutral() {
    for engine in [
        EngineMode::Stepped,
        EngineMode::EventDriven,
        EngineMode::Adaptive,
    ] {
        for workers in [1usize, 2] {
            let base = cfg(50, 0xA11CE, 12_000)
                .with_engine(engine)
                .with_parallelism(Parallelism::Fixed(workers));
            let with_none = base.clone().with_faults(FaultPlan::none());
            let label = format!("{engine:?}/workers={workers}");

            let st_base = StProtocol::run(&base);
            assert_eq!(st_base, StProtocol::run(&with_none), "ST {label}");
            assert_eq!(st_base.reconvergence_time, None, "ST {label}");
            assert_eq!(st_base.orphaned_fragments, 0, "ST {label}");
            assert_eq!(st_base.counters.fault_dropped_frames, 0, "ST {label}");
            assert_eq!(st_base.counters.fault_dup_frames, 0, "ST {label}");
            let (st_out_a, st_log_a) = st_traced(&base);
            let (st_out_b, st_log_b) = st_traced(&with_none);
            assert_eq!(st_out_a, st_out_b, "ST traced {label}");
            assert_eq!(st_log_a, st_log_b, "ST JSONL bytes {label}");
            assert!(!st_log_a.is_empty(), "ST empty trace {label}");

            let fst_base = FstProtocol::run(&base);
            assert_eq!(fst_base, FstProtocol::run(&with_none), "FST {label}");
            assert_eq!(fst_base.reconvergence_time, None, "FST {label}");
            assert_eq!(fst_base.counters.fault_dropped_frames, 0, "FST {label}");
            let (fst_out_a, fst_log_a) = fst_traced(&base);
            let (fst_out_b, fst_log_b) = fst_traced(&with_none);
            assert_eq!(fst_out_a, fst_out_b, "FST traced {label}");
            assert_eq!(fst_log_a, fst_log_b, "FST JSONL bytes {label}");
            assert!(!fst_log_a.is_empty(), "FST empty trace {label}");
        }
    }
}

/// A faulted run is deterministic per seed and invariant to the engine
/// mode and the medium worker count — same contract the clean path
/// honors, now with drops, dups, churn, skew and droops all active.
#[test]
fn faulted_runs_are_deterministic_and_engine_invariant() {
    let horizon = 9_000;
    let plan = spicy_plan(horizon);
    let mk = |engine, workers| {
        cfg(30, 0xFA57, horizon)
            .with_engine(engine)
            .with_parallelism(Parallelism::Fixed(workers))
            .with_faults(plan.clone())
    };

    // Reference run; every variant must match it bit for bit.
    let st_ref = StProtocol::run(&mk(EngineMode::Stepped, 1));
    let fst_ref = FstProtocol::run(&mk(EngineMode::Stepped, 1));
    // The faults actually fired (the plan is not accidentally inert).
    assert!(
        st_ref.counters.fault_dropped_frames > 0,
        "no drops injected: {st_ref:?}"
    );
    assert!(
        st_ref.counters.fault_dup_frames > 0,
        "no dups injected: {st_ref:?}"
    );
    assert!(fst_ref.counters.fault_dropped_frames > 0);

    for engine in [
        EngineMode::Stepped,
        EngineMode::EventDriven,
        EngineMode::Adaptive,
    ] {
        for workers in [1usize, 2] {
            let c = mk(engine, workers);
            let label = format!("{engine:?}/workers={workers}");
            assert_eq!(StProtocol::run(&c), st_ref, "ST {label}");
            assert_eq!(FstProtocol::run(&c), fst_ref, "FST {label}");
        }
    }

    // Same seed ⇒ byte-identical JSONL, including the FaultInjected /
    // DeviceLeft / DeviceJoined events, across engines and workers.
    let (st_out, st_log) = st_traced(&mk(EngineMode::Stepped, 1));
    assert_eq!(st_out, st_ref, "tracing perturbed the faulted ST run");
    for engine in [
        EngineMode::Stepped,
        EngineMode::EventDriven,
        EngineMode::Adaptive,
    ] {
        for workers in [1usize, 2] {
            let (out, log) = st_traced(&mk(engine, workers));
            let label = format!("{engine:?}/workers={workers}");
            assert_eq!(out, st_ref, "ST traced {label}");
            assert_eq!(log, st_log, "ST JSONL bytes {label}");
        }
    }
    let log_text = String::from_utf8(st_log).unwrap();
    assert!(
        log_text.contains("\"fault_injected\""),
        "no FaultInjected events"
    );
    assert!(log_text.contains("\"device_left\""), "no DeviceLeft event");
    assert!(
        log_text.contains("\"device_joined\""),
        "no DeviceJoined event"
    );

    let (fst_out, fst_log) = fst_traced(&mk(EngineMode::Stepped, 1));
    assert_eq!(fst_out, fst_ref, "tracing perturbed the faulted FST run");
    let (fst_out2, fst_log2) = fst_traced(&mk(EngineMode::EventDriven, 2));
    assert_eq!(fst_out2, fst_ref);
    assert_eq!(fst_log2, fst_log, "FST JSONL bytes diverged");
}

/// After the last churn event (`churn-light`: a leave wave at a third
/// of the preset horizon, everyone rejoining at two thirds) the ST
/// population must re-converge within the run horizon, with every
/// rejoined device re-attached to the spanning tree.
#[test]
fn st_reconverges_after_churn_at_n50() {
    let plan = FaultPlan::resolve("churn-light", 50, 24_000).unwrap();
    let last_fault = plan.last_fault_slot().unwrap();
    let rejoined: Vec<u32> = plan
        .churn
        .iter()
        .filter(|ev| ev.kind == ChurnKind::Join)
        .map(|ev| ev.device)
        .collect();
    assert!(!rejoined.is_empty(), "preset scheduled no rejoins");

    let horizon = 60_000;
    let out = StProtocol::run(&cfg(50, 0xC0FFEE, horizon).with_faults(plan));
    assert!(out.converged(), "never converged at all: {out:?}");
    let reconv = out
        .reconvergence_time
        .unwrap_or_else(|| panic!("no re-convergence after slot {last_fault}: {out:?}"));
    assert!(
        reconv.0 <= horizon - last_fault,
        "re-convergence {reconv:?} exceeds the post-fault window"
    );
    for d in rejoined {
        assert!(
            out.tree_edges.iter().any(|&(u, v)| u == d || v == d),
            "rejoined device {d} not re-attached to the tree: {:?}",
            out.tree_edges
        );
    }
}

/// Same invariant at n = 200: a ten-device leave wave with full rejoin
/// still re-converges within the horizon.
#[test]
fn st_reconverges_after_churn_at_n200() {
    let plan = FaultPlan::resolve("churn-light", 200, 24_000).unwrap();
    let last_fault = plan.last_fault_slot().unwrap();
    let horizon = 60_000;
    let out = StProtocol::run(&cfg(200, 0xD2D, horizon).with_faults(plan));
    assert!(out.converged(), "never converged at all: {out:?}");
    let reconv = out
        .reconvergence_time
        .unwrap_or_else(|| panic!("no re-convergence after slot {last_fault}: {out:?}"));
    assert!(reconv.0 <= horizon - last_fault);
}

/// The mesh baseline degrades gracefully too: full-mesh coupling
/// re-entrains rejoining devices without any tree machinery.
#[test]
fn fst_reconverges_after_churn_at_n50() {
    let plan = FaultPlan::resolve("churn-light", 50, 24_000).unwrap();
    let last_fault = plan.last_fault_slot().unwrap();
    let horizon = 60_000;
    let out = FstProtocol::run(&cfg(50, 0xBEE, horizon).with_faults(plan));
    assert!(out.converged(), "never converged at all: {out:?}");
    let reconv = out
        .reconvergence_time
        .unwrap_or_else(|| panic!("no re-convergence after slot {last_fault}: {out:?}"));
    assert!(reconv.0 <= horizon - last_fault);
    assert!(out.tree_edges.is_empty());
}
