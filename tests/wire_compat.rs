//! Wire-format compatibility: everything the protocol engines put on
//! the air round-trips through the PHY frame codec, and the collision
//! medium treats encoded/decoded frames identically.

use ffd2d::phy::codec::{RachCodec, ServiceClass};
use ffd2d::phy::frame::{FrameKind, ProximitySignal};
use ffd2d::phy::medium::{Medium, Transmission};
use ffd2d::radio::channel::{Channel, ChannelConfig};
use ffd2d::sim::deployment::{Deployment, Meters, Position};
use ffd2d::sim::{Counters, Slot};

fn engine_frames() -> Vec<ProximitySignal> {
    // The exact frame kinds the ST engine broadcasts (fires, beacons,
    // handshakes) — beacons are fires with the sentinel age.
    vec![
        ProximitySignal {
            sender: 0,
            service: ServiceClass::new(2),
            kind: FrameKind::Fire {
                fragment: 17,
                age: 5,
            },
        },
        ProximitySignal {
            sender: 1,
            service: ServiceClass::new(0),
            kind: FrameKind::Fire {
                fragment: 1,
                age: u8::MAX, // keep-alive beacon sentinel
            },
        },
        ProximitySignal {
            sender: 2,
            service: ServiceClass::new(1),
            kind: FrameKind::HConnect {
                to: 0,
                fragment: 2,
                fragment_size: 41,
                head: 2,
            },
        },
    ]
}

#[test]
fn every_engine_frame_round_trips() {
    for sig in engine_frames() {
        let bytes = sig.encode();
        let decoded = ProximitySignal::decode(bytes.clone()).expect("decode");
        assert_eq!(decoded, sig);
        // Encoding is stable (same signal → same bytes).
        assert_eq!(sig.encode(), bytes);
    }
}

#[test]
fn codec_assignment_survives_the_wire() {
    for sig in engine_frames() {
        let decoded = ProximitySignal::decode(sig.encode()).unwrap();
        assert_eq!(decoded.codec(), sig.codec());
    }
    // Fires are RACH1, handshakes RACH2.
    assert_eq!(engine_frames()[0].codec(), RachCodec::Rach1);
    assert_eq!(engine_frames()[2].codec(), RachCodec::Rach2);
}

#[test]
fn medium_is_agnostic_to_an_encode_decode_pass() {
    let dep = Deployment::from_positions(
        vec![
            Position::new(0.0, 0.0),
            Position::new(15.0, 0.0),
            Position::new(40.0, 0.0),
        ],
        Meters(100.0),
        Meters(100.0),
    );
    let ch = Channel::new(&dep, ChannelConfig::default(), 5);
    let medium = Medium::default();
    let receivers = [0u32, 1, 2];

    let direct: Vec<Transmission> = engine_frames().into_iter().map(Transmission::new).collect();
    let reencoded: Vec<Transmission> = engine_frames()
        .into_iter()
        .map(|s| Transmission::new(ProximitySignal::decode(s.encode()).unwrap()))
        .collect();

    let mut c1 = Counters::new();
    let mut c2 = Counters::new();
    let r1 = medium.resolve(&ch, Slot(7), &direct, &receivers, &mut c1);
    let r2 = medium.resolve(&ch, Slot(7), &reencoded, &receivers, &mut c2);
    assert_eq!(c1, c2);
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.decoded, b.decoded);
    }
}

#[test]
fn frame_sizes_fit_a_rach_payload() {
    // A PRACH-multiplexed payload is tiny; every protocol frame must
    // stay within a conservative 32-byte budget.
    for sig in engine_frames() {
        assert!(
            sig.encode().len() <= 32,
            "{:?} is {} bytes",
            sig.kind,
            sig.encode().len()
        );
    }
}
