//! Wire-format compatibility: everything the protocol engines put on
//! the air round-trips through the PHY frame codec, and the collision
//! medium treats encoded/decoded frames identically. Property tests at
//! the bottom feed the decoder truncated, bit-flipped and arbitrary
//! junk buffers: it must never panic and never accept bytes it could
//! not itself have produced.

use bytes::Bytes;
use ffd2d::phy::codec::{RachCodec, ServiceClass};
use ffd2d::phy::frame::{FrameError, FrameKind, ProximitySignal};
use ffd2d::phy::medium::{Medium, Transmission};
use ffd2d::radio::channel::{Channel, ChannelConfig};
use ffd2d::sim::deployment::{Deployment, Meters, Position};
use ffd2d::sim::{Counters, Slot};

fn engine_frames() -> Vec<ProximitySignal> {
    // The exact frame kinds the ST engine broadcasts (fires, beacons,
    // handshakes) — beacons are fires with the sentinel age.
    vec![
        ProximitySignal {
            sender: 0,
            service: ServiceClass::new(2),
            kind: FrameKind::Fire {
                fragment: 17,
                age: 5,
            },
        },
        ProximitySignal {
            sender: 1,
            service: ServiceClass::new(0),
            kind: FrameKind::Fire {
                fragment: 1,
                age: u8::MAX, // keep-alive beacon sentinel
            },
        },
        ProximitySignal {
            sender: 2,
            service: ServiceClass::new(1),
            kind: FrameKind::HConnect {
                to: 0,
                fragment: 2,
                fragment_size: 41,
                head: 2,
            },
        },
    ]
}

#[test]
fn every_engine_frame_round_trips() {
    for sig in engine_frames() {
        let bytes = sig.encode();
        let decoded = ProximitySignal::decode(bytes.clone()).expect("decode");
        assert_eq!(decoded, sig);
        // Encoding is stable (same signal → same bytes).
        assert_eq!(sig.encode(), bytes);
    }
}

#[test]
fn codec_assignment_survives_the_wire() {
    for sig in engine_frames() {
        let decoded = ProximitySignal::decode(sig.encode()).unwrap();
        assert_eq!(decoded.codec(), sig.codec());
    }
    // Fires are RACH1, handshakes RACH2.
    assert_eq!(engine_frames()[0].codec(), RachCodec::Rach1);
    assert_eq!(engine_frames()[2].codec(), RachCodec::Rach2);
}

#[test]
fn medium_is_agnostic_to_an_encode_decode_pass() {
    let dep = Deployment::from_positions(
        vec![
            Position::new(0.0, 0.0),
            Position::new(15.0, 0.0),
            Position::new(40.0, 0.0),
        ],
        Meters(100.0),
        Meters(100.0),
    );
    let ch = Channel::new(&dep, ChannelConfig::default(), 5);
    let medium = Medium::default();
    let receivers = [0u32, 1, 2];

    let direct: Vec<Transmission> = engine_frames().into_iter().map(Transmission::new).collect();
    let reencoded: Vec<Transmission> = engine_frames()
        .into_iter()
        .map(|s| Transmission::new(ProximitySignal::decode(s.encode()).unwrap()))
        .collect();

    let mut c1 = Counters::new();
    let mut c2 = Counters::new();
    let r1 = medium.resolve(&ch, Slot(7), &direct, &receivers, &mut c1);
    let r2 = medium.resolve(&ch, Slot(7), &reencoded, &receivers, &mut c2);
    assert_eq!(c1, c2);
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.decoded, b.decoded);
    }
}

#[test]
fn frame_sizes_fit_a_rach_payload() {
    // A PRACH-multiplexed payload is tiny; every protocol frame must
    // stay within a conservative 32-byte budget.
    for sig in engine_frames() {
        assert!(
            sig.encode().len() <= 32,
            "{:?} is {} bytes",
            sig.kind,
            sig.encode().len()
        );
    }
}

// ---------------------------------------------------------------------
// Adversarial decoding properties. A real receiver sees whatever the
// channel hands it — short reads, flipped bits, noise decoded as a
// preamble — so the codec's contract is: `decode` never panics, and any
// `Ok` it returns re-encodes to a prefix of the exact bytes it was
// given (it cannot invent field values the wire didn't carry).
// ---------------------------------------------------------------------

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Every `FrameKind` variant (RACH1 and RACH2 alike) with arbitrary
/// field values.
fn arb_kind() -> BoxedStrategy<FrameKind> {
    prop_oneof![
        (any::<u32>(), any::<u8>()).prop_map(|(fragment, age)| FrameKind::Fire { fragment, age }),
        any::<u32>().prop_map(|to| FrameKind::DiscoveryReply { to }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<i32>()).prop_map(
            |(to, best_u, best_v, weight)| FrameKind::Report {
                to,
                best_u,
                best_v,
                weight,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(to, u, v)| FrameKind::MergeCmd {
            to,
            u,
            v
        }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(to, fragment, fragment_size, head)| FrameKind::HConnect {
                to,
                fragment,
                fragment_size,
                head,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(to, fragment, fragment_size, head)| FrameKind::HAccept {
                to,
                fragment,
                fragment_size,
                head,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(to, fragment, head)| FrameKind::NewFragment { to, fragment, head }),
    ]
    .boxed()
}

fn arb_signal() -> BoxedStrategy<ProximitySignal> {
    (any::<u32>(), 0u8..ServiceClass::COUNT, arb_kind())
        .prop_map(|(sender, service, kind)| ProximitySignal {
            sender,
            service: ServiceClass::new(service),
            kind,
        })
        .boxed()
}

proptest! {
    /// Every strict prefix of a valid encoding is rejected as
    /// `Truncated` — payloads are fixed-length per tag, so there is no
    /// shorter buffer the decoder could legitimately accept.
    #[test]
    fn every_strict_prefix_is_rejected(sig in arb_signal()) {
        let full = sig.encode();
        for cut in 0..full.len() {
            prop_assert_eq!(
                ProximitySignal::decode(full.slice(0..cut)),
                Err(FrameError::Truncated),
                "{:?} cut to {} bytes",
                sig,
                cut
            );
        }
    }

    /// A single flipped bit anywhere in the frame must not panic the
    /// decoder, and a successful decode must re-encode to a prefix of
    /// the corrupted buffer — i.e. the decoder only ever reports what
    /// was actually on the wire. (A tag flip may shorten the expected
    /// payload and leave trailing bytes unread; that is fine, inventing
    /// bytes is not.)
    #[test]
    fn bit_flips_never_panic_or_forge_fields(
        sig in arb_signal(),
        pos in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut mutated = sig.encode().to_vec();
        let idx = pos as usize % mutated.len();
        mutated[idx] ^= 1 << bit;
        match ProximitySignal::decode(Bytes::from(mutated.clone())) {
            Err(_) => {} // rejection is always sound
            Ok(decoded) => {
                let re = decoded.encode();
                prop_assert!(
                    re.len() <= mutated.len() && re[..] == mutated[..re.len()],
                    "decoder forged fields: {:?} -> {:?} re-encodes to {:?}, wire was {:?}",
                    sig,
                    decoded,
                    re,
                    mutated
                );
            }
        }
    }

    /// Arbitrary junk buffers (channel noise that happened to clear the
    /// preamble detector) obey the same contract: no panic, and any
    /// accept re-encodes to a prefix of the input.
    #[test]
    fn arbitrary_buffers_never_panic_or_forge_fields(
        junk in proptest::collection::vec(any::<u8>(), 0..64usize),
    ) {
        match ProximitySignal::decode(Bytes::from(junk.clone())) {
            Err(_) => {}
            Ok(decoded) => {
                let re = decoded.encode();
                prop_assert!(
                    re.len() <= junk.len() && re[..] == junk[..re.len()],
                    "decoder forged fields from junk {:?}: {:?}",
                    junk,
                    decoded
                );
            }
        }
    }
}
