//! The sink trait and the structural sinks.
//!
//! Engines are generic over `S: TraceSink` and consult the associated
//! constant [`TraceSink::ENABLED`] before *constructing* an event:
//!
//! ```ignore
//! if S::ENABLED {
//!     sink.event(&TraceEvent::Converged { slot });
//! }
//! ```
//!
//! With [`NullSink`] the branch is a compile-time `if false` — the
//! event construction, any state gathered for it (fragment counts,
//! phase spreads), and the call itself all vanish under monomorphization.
//! That is the crate's zero-cost-off contract, pinned by the
//! `trace_overhead` bench.

use std::collections::BTreeMap;

use crate::event::TraceEvent;

/// A consumer of protocol events.
///
/// Sinks observe and never perturb: implementations must not influence
/// the caller (no panics on well-formed events, no feedback channel),
/// so a traced run's outcome is bit-identical to an untraced one.
pub trait TraceSink {
    /// Whether this sink consumes events at all. `false` lets
    /// monomorphized emission sites compile out event construction
    /// entirely; everything real keeps the default `true`.
    const ENABLED: bool = true;

    /// Consume one event.
    fn event(&mut self, ev: &TraceEvent);

    /// Flush any buffered output (end of run).
    fn finish(&mut self) {}
}

/// Forwarding impl so engines can hold `&mut S` and still be handed
/// further down (e.g. into a medium resolver) without moving the sink.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn event(&mut self, ev: &TraceEvent) {
        (**self).event(ev)
    }

    fn finish(&mut self) {
        (**self).finish()
    }
}

/// The off switch: ignores everything and advertises itself as
/// disabled, so traced code paths monomorphize to the untraced ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: &TraceEvent) {}
}

/// Tallies events per kind — the cheapest enabled sink, used by tests,
/// smoke checks, and the overhead bench's "tracing on" arm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Event tallies keyed by [`TraceEvent::tag`] (BTreeMap for
    /// deterministic iteration order in reports).
    pub counts: BTreeMap<&'static str, u64>,
}

impl CountingSink {
    /// An empty tally.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Events seen for `tag` (0 when never seen).
    pub fn count(&self, tag: &str) -> u64 {
        self.counts.get(tag).copied().unwrap_or(0)
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn event(&mut self, ev: &TraceEvent) {
        *self.counts.entry(ev.tag()).or_insert(0) += 1;
    }
}

/// Buffers events in memory, in arrival order.
///
/// The intra-run parallel medium hands one `BufferSink` to each shard:
/// workers record their receivers' events privately, then the caller
/// [`BufferSink::flush_into`]s the buffers in shard order — which is
/// receiver order, because shards are contiguous receiver ranges — so
/// the merged stream is byte-identical to the sequential resolver's.
/// Events are plain `Copy` data (see [`TraceEvent`]), so buffering
/// never borrows from the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BufferSink {
    /// Buffered events, in the order they were emitted.
    pub events: Vec<TraceEvent>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Replay every buffered event into `sink`, in order, and clear the
    /// buffer (the allocation is kept for reuse).
    pub fn flush_into<S: TraceSink>(&mut self, sink: &mut S) {
        for ev in self.events.drain(..) {
            sink.event(&ev);
        }
    }
}

impl TraceSink for BufferSink {
    #[inline]
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// Fans one event stream into two sinks (compose for more). Disabled
/// only if both branches are, so `Tee<Null, Null>` still costs nothing.
#[derive(Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn event(&mut self, ev: &TraceEvent) {
        if A::ENABLED {
            self.0.event(ev);
        }
        if B::ENABLED {
            self.1.event(ev);
        }
    }

    fn finish(&mut self) {
        self.0.finish();
        self.1.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        const {
            assert!(!NullSink::ENABLED);
            assert!(!<TeeSink<NullSink, NullSink>>::ENABLED);
            assert!(<TeeSink<NullSink, CountingSink>>::ENABLED);
            assert!(!<&mut NullSink as TraceSink>::ENABLED);
        }
    }

    #[test]
    fn counting_sink_tallies_by_tag() {
        let mut s = CountingSink::new();
        s.event(&TraceEvent::Converged { slot: 1 });
        s.event(&TraceEvent::Converged { slot: 2 });
        s.event(&TraceEvent::RunEnd {
            slot: 2,
            converged: true,
        });
        assert_eq!(s.count("converged"), 2);
        assert_eq!(s.count("run_end"), 1);
        assert_eq!(s.count("tx"), 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn buffer_sink_replays_in_order_and_clears() {
        let mut buf = BufferSink::new();
        buf.event(&TraceEvent::Converged { slot: 1 });
        buf.event(&TraceEvent::Converged { slot: 2 });
        buf.event(&TraceEvent::RunEnd {
            slot: 2,
            converged: true,
        });
        assert_eq!(buf.events.len(), 3);
        let mut out = CountingSink::new();
        buf.flush_into(&mut out);
        assert_eq!(out.count("converged"), 2);
        assert_eq!(out.count("run_end"), 1);
        assert!(buf.events.is_empty(), "flush clears the buffer");
        const {
            assert!(BufferSink::ENABLED);
        }
    }

    #[test]
    fn tee_feeds_both_branches() {
        let mut tee = TeeSink(CountingSink::new(), CountingSink::new());
        tee.event(&TraceEvent::Converged { slot: 9 });
        tee.finish();
        assert_eq!(tee.0.count("converged"), 1);
        assert_eq!(tee.1.count("converged"), 1);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut s = CountingSink::new();
        {
            let r = &mut s;
            let mut rr: &mut CountingSink = r;
            TraceSink::event(&mut rr, &TraceEvent::Converged { slot: 3 });
        }
        assert_eq!(s.count("converged"), 1);
    }
}
