//! Per-slot timeline aggregation.
//!
//! [`TimelineSink`] folds the event stream into one row per slot: the
//! population summary the engine emits ([`TraceEvent::SlotStats`]) plus
//! tallies of that slot's transmissions and reception outcomes. The
//! result is the convergence-dynamics view the paper's aggregate
//! figures cannot show — how fragment count, sync error, discovery
//! completeness and collision rate evolve over a run — exported as CSV
//! for `results/`.

use crate::event::{Codec, TraceEvent};
use crate::sink::TraceSink;

/// One slot's aggregated view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineRow {
    /// The slot.
    pub slot: u64,
    /// Distinct fragment labels (0 until the first `SlotStats`).
    pub fragments: u32,
    /// Sync error: smallest covering arc of all phases, in turns.
    pub phase_spread: f64,
    /// Directed neighbour links discovered so far.
    pub discovered_links: u64,
    /// Directed ground-truth audible links.
    pub ground_truth_links: u64,
    /// RACH1 broadcasts this slot.
    pub rach1_tx: u64,
    /// RACH2 broadcasts this slot.
    pub rach2_tx: u64,
    /// Successful decodes this slot.
    pub rx_ok: u64,
    /// Receptions lost to collision this slot.
    pub rx_collision: u64,
    /// Receptions provably below threshold this slot.
    pub rx_below_threshold: u64,
}

impl TimelineRow {
    fn new(slot: u64) -> TimelineRow {
        TimelineRow {
            slot,
            fragments: 0,
            phase_spread: f64::NAN,
            discovered_links: 0,
            ground_truth_links: 0,
            rach1_tx: 0,
            rach2_tx: 0,
            rx_ok: 0,
            rx_collision: 0,
            rx_below_threshold: 0,
        }
    }

    /// Fraction of ground-truth links discovered (1.0 when none exist).
    pub fn discovery_completeness(&self) -> f64 {
        if self.ground_truth_links == 0 {
            1.0
        } else {
            self.discovered_links as f64 / self.ground_truth_links as f64
        }
    }

    /// Fraction of this slot's reception attempts lost to collision
    /// (0.0 when the slot was silent).
    pub fn collision_rate(&self) -> f64 {
        let attempts = self.rx_ok + self.rx_collision + self.rx_below_threshold;
        if attempts == 0 {
            0.0
        } else {
            self.rx_collision as f64 / attempts as f64
        }
    }
}

/// Folds events into one [`TimelineRow`] per slot (rows appear in slot
/// order; a slot with no events gets no row).
#[derive(Debug, Clone, Default)]
pub struct TimelineSink {
    rows: Vec<TimelineRow>,
}

impl TimelineSink {
    /// An empty timeline.
    pub fn new() -> TimelineSink {
        TimelineSink::default()
    }

    /// The aggregated rows, in slot order.
    pub fn rows(&self) -> &[TimelineRow] {
        &self.rows
    }

    fn row_mut(&mut self, slot: u64) -> &mut TimelineRow {
        // Events arrive in slot order; a backwards jump would indicate
        // interleaved runs, which one sink instance does not support.
        match self.rows.last() {
            Some(last) if last.slot == slot => {}
            _ => self.rows.push(TimelineRow::new(slot)),
        }
        self.rows.last_mut().expect("just pushed")
    }

    /// First slot at which discovery completeness reached `x` (0..=1),
    /// if it ever did.
    pub fn slot_reaching_completeness(&self, x: f64) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.ground_truth_links > 0 && r.discovery_completeness() >= x)
            .map(|r| r.slot)
    }

    /// Render the timeline as CSV (header + one row per slot).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.rows.len() + 1));
        out.push_str(
            "slot,fragments,phase_spread,discovered_links,ground_truth_links,\
             discovery_completeness,rach1_tx,rach2_tx,rx_ok,rx_collision,\
             rx_below_threshold,collision_rate\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.slot,
                r.fragments,
                r.phase_spread,
                r.discovered_links,
                r.ground_truth_links,
                r.discovery_completeness(),
                r.rach1_tx,
                r.rach2_tx,
                r.rx_ok,
                r.rx_collision,
                r.rx_below_threshold,
                r.collision_rate(),
            ));
        }
        out
    }
}

impl TraceSink for TimelineSink {
    fn event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::SlotStats {
                slot,
                fragments,
                phase_spread,
                discovered_links,
                ground_truth_links,
            } => {
                let row = self.row_mut(slot);
                row.fragments = fragments;
                row.phase_spread = phase_spread;
                row.discovered_links = discovered_links;
                row.ground_truth_links = ground_truth_links;
            }
            TraceEvent::Tx { slot, codec, .. } => {
                let row = self.row_mut(slot);
                // Saturating like `Counters`: a replayed trace must
                // never wrap a tally, however long the capture.
                match codec {
                    Codec::Rach1 => row.rach1_tx = row.rach1_tx.saturating_add(1),
                    Codec::Rach2 => row.rach2_tx = row.rach2_tx.saturating_add(1),
                }
            }
            TraceEvent::RxDecode { slot, .. } => {
                let row = self.row_mut(slot);
                row.rx_ok = row.rx_ok.saturating_add(1);
            }
            TraceEvent::RxCollision { slot, signals, .. } => {
                let row = self.row_mut(slot);
                row.rx_collision = row.rx_collision.saturating_add(signals as u64);
            }
            TraceEvent::RxBelowThreshold { slot, count } => {
                let row = self.row_mut(slot);
                row.rx_below_threshold = row.rx_below_threshold.saturating_add(count);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_aggregate_per_slot() {
        let mut t = TimelineSink::new();
        t.event(&TraceEvent::Tx {
            slot: 5,
            sender: 1,
            codec: Codec::Rach1,
            kind: crate::FrameLabel::Fire,
        });
        t.event(&TraceEvent::RxDecode {
            slot: 5,
            receiver: 2,
            sender: 1,
            codec: Codec::Rach1,
            rx_dbm: -80.0,
        });
        t.event(&TraceEvent::RxCollision {
            slot: 5,
            receiver: 3,
            codec: Codec::Rach1,
            signals: 2,
        });
        t.event(&TraceEvent::SlotStats {
            slot: 5,
            fragments: 7,
            phase_spread: 0.5,
            discovered_links: 10,
            ground_truth_links: 40,
        });
        t.event(&TraceEvent::SlotStats {
            slot: 6,
            fragments: 6,
            phase_spread: 0.4,
            discovered_links: 12,
            ground_truth_links: 40,
        });
        assert_eq!(t.rows().len(), 2);
        let r = t.rows()[0];
        assert_eq!(r.slot, 5);
        assert_eq!(r.fragments, 7);
        assert_eq!(r.rach1_tx, 1);
        assert_eq!(r.rx_ok, 1);
        assert_eq!(r.rx_collision, 2);
        assert!((r.collision_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.discovery_completeness() - 0.25).abs() < 1e-12);
        assert_eq!(t.rows()[1].slot, 6);
    }

    #[test]
    fn completeness_threshold_lookup() {
        let mut t = TimelineSink::new();
        for (slot, links) in [(0u64, 0u64), (10, 20), (20, 36), (30, 40)] {
            t.event(&TraceEvent::SlotStats {
                slot,
                fragments: 1,
                phase_spread: 0.0,
                discovered_links: links,
                ground_truth_links: 40,
            });
        }
        assert_eq!(t.slot_reaching_completeness(0.5), Some(10));
        assert_eq!(t.slot_reaching_completeness(0.9), Some(20));
        assert_eq!(t.slot_reaching_completeness(1.0), Some(30));
        assert_eq!(TimelineSink::new().slot_reaching_completeness(0.5), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = TimelineSink::new();
        t.event(&TraceEvent::SlotStats {
            slot: 1,
            fragments: 3,
            phase_spread: 0.25,
            discovered_links: 4,
            ground_truth_links: 8,
        });
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("slot,fragments,phase_spread"));
        assert!(lines[1].starts_with("1,3,0.25,4,8,0.5,"));
    }
}
