//! # ffd2d-trace — slot-level protocol tracing with zero-cost-off sinks
//!
//! The paper's evidence is aggregate (Fig. 3 convergence times, Fig. 4
//! message counts); when a trial censors at the horizon the aggregates
//! cannot say *why*. This crate is the instrumentation layer underneath
//! every engine in the workspace: protocol engines and the shared-medium
//! resolvers emit typed [`TraceEvent`]s into a [`TraceSink`] chosen by
//! the caller.
//!
//! The design constraint is that tracing must cost **nothing when off**:
//! engines are monomorphized over the sink type, and [`NullSink`]
//! advertises [`TraceSink::ENABLED`]` = false`, so every emission site —
//! including the event construction itself — compiles down to dead code
//! the optimizer removes. The `trace_overhead` bench in `ffd2d-bench`
//! pins the "within noise" claim, and the integration suite pins that a
//! traced run's [`RunOutcome`-equivalent] observables are bit-identical
//! to the untraced path (sinks observe, they never perturb: no RNG
//! draws, no protocol state).
//!
//! Provided sinks:
//!
//! * [`NullSink`] — compiles to nothing (the default everywhere).
//! * [`CountingSink`] — per-kind event tallies, for tests and smoke
//!   checks.
//! * [`TimelineSink`] — per-slot aggregation (fragment count, sync
//!   error, discovery completeness, collision rate) with CSV export,
//!   the raw material of convergence-dynamics plots.
//! * [`JsonlSink`] — replayable event log, one JSON object per line,
//!   written through any `std::io::Write`. Same seed + same scenario ⇒
//!   byte-identical log. [`jsonl::parse_event`] reads it back.
//! * [`TeeSink`] — fan one event stream into two sinks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod jsonl;
pub mod sink;
pub mod timeline;

pub use event::{Codec, FaultKind, FrameLabel, ProtoPhase, RejectReason, TraceEvent};
pub use jsonl::{encode_event, parse_event, JsonlSink};
pub use sink::{BufferSink, CountingSink, NullSink, TeeSink, TraceSink};
pub use timeline::{TimelineRow, TimelineSink};
