//! Replayable JSONL event logs.
//!
//! One event per line, one JSON object per event, field order fixed by
//! the encoder — so a trace is a pure function of `(scenario, seed)`
//! and the determinism suite can assert *byte* identity. Floats are
//! rendered with Rust's shortest round-trip formatting, which both
//! sides of the round trip agree on exactly.
//!
//! The vendored `serde` is an inert API stub (nothing in the offline
//! build serializes through it), so the encoding here is a small
//! hand-rolled writer plus a matching single-line parser — enough for
//! the event vocabulary, deliberately not a general JSON library.

use std::io::Write;

use crate::event::{Codec, FaultKind, FrameLabel, ProtoPhase, RejectReason, TraceEvent};
use crate::sink::TraceSink;

/// Encode one event as a single JSON line (no trailing newline).
pub fn encode_event(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"t\":\"");
    s.push_str(ev.tag());
    s.push('"');
    let field_u = |s: &mut String, k: &str, v: u64| {
        s.push_str(",\"");
        s.push_str(k);
        s.push_str("\":");
        s.push_str(&v.to_string());
    };
    let field_f = |s: &mut String, k: &str, v: f64| {
        s.push_str(",\"");
        s.push_str(k);
        s.push_str("\":");
        // Shortest round-trip decimal; JSON has no Infinity/NaN, and no
        // event field can produce them (phases and powers are finite),
        // but guard anyway so a log line is always valid JSON.
        if v.is_finite() {
            s.push_str(&format!("{v:?}"));
        } else {
            s.push_str("null");
        }
    };
    let field_s = |s: &mut String, k: &str, v: &str| {
        s.push_str(",\"");
        s.push_str(k);
        s.push_str("\":\"");
        s.push_str(v);
        s.push('"');
    };
    let field_b = |s: &mut String, k: &str, v: bool| {
        s.push_str(",\"");
        s.push_str(k);
        s.push_str("\":");
        s.push_str(if v { "true" } else { "false" });
    };
    match *ev {
        TraceEvent::PhaseEnter { slot, phase } => {
            field_u(&mut s, "slot", slot);
            field_s(&mut s, "phase", phase.name());
        }
        TraceEvent::RoundStart {
            slot,
            round,
            budget,
            fragments,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "round", round as u64);
            field_u(&mut s, "budget", budget);
            field_u(&mut s, "fragments", fragments as u64);
        }
        TraceEvent::Tx {
            slot,
            sender,
            codec,
            kind,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "sender", sender as u64);
            field_s(&mut s, "codec", codec.name());
            field_s(&mut s, "kind", kind.name());
        }
        TraceEvent::RxDecode {
            slot,
            receiver,
            sender,
            codec,
            rx_dbm,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "receiver", receiver as u64);
            field_u(&mut s, "sender", sender as u64);
            field_s(&mut s, "codec", codec.name());
            field_f(&mut s, "rx_dbm", rx_dbm);
        }
        TraceEvent::RxCollision {
            slot,
            receiver,
            codec,
            signals,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "receiver", receiver as u64);
            field_s(&mut s, "codec", codec.name());
            field_u(&mut s, "signals", signals as u64);
        }
        TraceEvent::RxBelowThreshold { slot, count } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "count", count);
        }
        TraceEvent::PhaseAdjust {
            slot,
            device,
            sender,
            before,
            after,
            absorbed,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "device", device as u64);
            field_u(&mut s, "sender", sender as u64);
            field_f(&mut s, "before", before);
            field_f(&mut s, "after", after);
            field_b(&mut s, "absorbed", absorbed);
        }
        TraceEvent::MergeRequest {
            slot,
            round,
            requester,
            target,
            req_fragment,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "round", round as u64);
            field_u(&mut s, "requester", requester as u64);
            field_u(&mut s, "target", target as u64);
            field_u(&mut s, "req_fragment", req_fragment as u64);
        }
        TraceEvent::MergeAccept {
            slot,
            round,
            device,
            peer,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "round", round as u64);
            field_u(&mut s, "device", device as u64);
            field_u(&mut s, "peer", peer as u64);
        }
        TraceEvent::MergeReject {
            slot,
            round,
            device,
            requester,
            reason,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "round", round as u64);
            field_u(&mut s, "device", device as u64);
            field_u(&mut s, "requester", requester as u64);
            field_s(&mut s, "reason", reason.name());
        }
        TraceEvent::FragmentCommit {
            slot,
            round,
            device,
            peer,
            survivor,
            old_head,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "round", round as u64);
            field_u(&mut s, "device", device as u64);
            field_u(&mut s, "peer", peer as u64);
            field_u(&mut s, "survivor", survivor as u64);
            field_u(&mut s, "old_head", old_head as u64);
        }
        TraceEvent::SlotStats {
            slot,
            fragments,
            phase_spread,
            discovered_links,
            ground_truth_links,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "fragments", fragments as u64);
            field_f(&mut s, "phase_spread", phase_spread);
            field_u(&mut s, "discovered_links", discovered_links);
            field_u(&mut s, "ground_truth_links", ground_truth_links);
        }
        TraceEvent::FaultInjected {
            slot,
            device,
            sender,
            kind,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "device", device as u64);
            field_u(&mut s, "sender", sender as u64);
            field_s(&mut s, "kind", kind.name());
        }
        TraceEvent::DeviceJoined { slot, device } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "device", device as u64);
        }
        TraceEvent::DeviceLeft {
            slot,
            device,
            orphaned,
        } => {
            field_u(&mut s, "slot", slot);
            field_u(&mut s, "device", device as u64);
            field_u(&mut s, "orphaned", orphaned as u64);
        }
        TraceEvent::Converged { slot } => {
            field_u(&mut s, "slot", slot);
        }
        TraceEvent::RunEnd { slot, converged } => {
            field_u(&mut s, "slot", slot);
            field_b(&mut s, "converged", converged);
        }
    }
    s.push('}');
    s
}

/// A parsed scalar JSON value (the only shapes the encoder emits).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Minimal single-object parser for lines produced by [`encode_event`]:
/// flat objects of string/number/bool/null fields. Returns `None` on
/// anything malformed.
fn parse_object(line: &str) -> Option<Vec<(String, Value)>> {
    let b = line.trim().as_bytes();
    let mut i = 0usize;
    let eat = |b: &[u8], i: &mut usize, c: u8| -> Option<()> {
        if b.get(*i) == Some(&c) {
            *i += 1;
            Some(())
        } else {
            None
        }
    };
    let parse_string = |b: &[u8], i: &mut usize| -> Option<String> {
        eat(b, i, b'"')?;
        let start = *i;
        while *i < b.len() && b[*i] != b'"' {
            // The encoder never emits escapes (names are ASCII
            // identifiers); reject them rather than mis-decode.
            if b[*i] == b'\\' {
                return None;
            }
            *i += 1;
        }
        let s = std::str::from_utf8(&b[start..*i]).ok()?.to_string();
        eat(b, i, b'"')?;
        Some(s)
    };
    eat(b, &mut i, b'{')?;
    let mut fields = Vec::new();
    loop {
        let key = parse_string(b, &mut i)?;
        eat(b, &mut i, b':')?;
        let value = match b.get(i)? {
            b'"' => Value::Str(parse_string(b, &mut i)?),
            b't' => {
                i = i.checked_add(4)?;
                if b.get(i - 4..i)? != b"true" {
                    return None;
                }
                Value::Bool(true)
            }
            b'f' => {
                i = i.checked_add(5)?;
                if b.get(i - 5..i)? != b"false" {
                    return None;
                }
                Value::Bool(false)
            }
            b'n' => {
                i = i.checked_add(4)?;
                if b.get(i - 4..i)? != b"null" {
                    return None;
                }
                Value::Null
            }
            _ => {
                let start = i;
                while i < b.len() && !matches!(b[i], b',' | b'}') {
                    i += 1;
                }
                let s = std::str::from_utf8(&b[start..i]).ok()?;
                Value::Num(s.trim().parse().ok()?)
            }
        };
        fields.push((key, value));
        match b.get(i)? {
            b',' => i += 1,
            b'}' => {
                i += 1;
                break;
            }
            _ => return None,
        }
    }
    if i == b.len() {
        Some(fields)
    } else {
        None
    }
}

struct Fields(Vec<(String, Value)>);

impl Fields {
    fn str(&self, k: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
    }
    fn f64(&self, k: &str) -> Option<f64> {
        self.0
            .iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| match v {
                Value::Num(x) => Some(*x),
                _ => None,
            })
    }
    fn u64(&self, k: &str) -> Option<u64> {
        let x = self.f64(k)?;
        if x >= 0.0 && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }
    fn u32(&self, k: &str) -> Option<u32> {
        u32::try_from(self.u64(k)?).ok()
    }
    fn bool(&self, k: &str) -> Option<bool> {
        self.0
            .iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| match v {
                Value::Bool(x) => Some(*x),
                _ => None,
            })
    }
}

/// Parse one JSONL line back into a [`TraceEvent`]. Returns `None` on
/// malformed input or an unknown event tag — callers decide whether to
/// skip or abort.
pub fn parse_event(line: &str) -> Option<TraceEvent> {
    let f = Fields(parse_object(line)?);
    let ev = match f.str("t")? {
        "phase_enter" => TraceEvent::PhaseEnter {
            slot: f.u64("slot")?,
            phase: ProtoPhase::from_name(f.str("phase")?)?,
        },
        "round_start" => TraceEvent::RoundStart {
            slot: f.u64("slot")?,
            round: f.u32("round")?,
            budget: f.u64("budget")?,
            fragments: f.u32("fragments")?,
        },
        "tx" => TraceEvent::Tx {
            slot: f.u64("slot")?,
            sender: f.u32("sender")?,
            codec: Codec::from_name(f.str("codec")?)?,
            kind: FrameLabel::from_name(f.str("kind")?)?,
        },
        "rx_decode" => TraceEvent::RxDecode {
            slot: f.u64("slot")?,
            receiver: f.u32("receiver")?,
            sender: f.u32("sender")?,
            codec: Codec::from_name(f.str("codec")?)?,
            rx_dbm: f.f64("rx_dbm")?,
        },
        "rx_collision" => TraceEvent::RxCollision {
            slot: f.u64("slot")?,
            receiver: f.u32("receiver")?,
            codec: Codec::from_name(f.str("codec")?)?,
            signals: f.u32("signals")?,
        },
        "rx_below_threshold" => TraceEvent::RxBelowThreshold {
            slot: f.u64("slot")?,
            count: f.u64("count")?,
        },
        "phase_adjust" => TraceEvent::PhaseAdjust {
            slot: f.u64("slot")?,
            device: f.u32("device")?,
            sender: f.u32("sender")?,
            before: f.f64("before")?,
            after: f.f64("after")?,
            absorbed: f.bool("absorbed")?,
        },
        "merge_request" => TraceEvent::MergeRequest {
            slot: f.u64("slot")?,
            round: f.u32("round")?,
            requester: f.u32("requester")?,
            target: f.u32("target")?,
            req_fragment: f.u32("req_fragment")?,
        },
        "merge_accept" => TraceEvent::MergeAccept {
            slot: f.u64("slot")?,
            round: f.u32("round")?,
            device: f.u32("device")?,
            peer: f.u32("peer")?,
        },
        "merge_reject" => TraceEvent::MergeReject {
            slot: f.u64("slot")?,
            round: f.u32("round")?,
            device: f.u32("device")?,
            requester: f.u32("requester")?,
            reason: RejectReason::from_name(f.str("reason")?)?,
        },
        "fragment_commit" => TraceEvent::FragmentCommit {
            slot: f.u64("slot")?,
            round: f.u32("round")?,
            device: f.u32("device")?,
            peer: f.u32("peer")?,
            survivor: f.u32("survivor")?,
            old_head: f.u32("old_head")?,
        },
        "slot_stats" => TraceEvent::SlotStats {
            slot: f.u64("slot")?,
            fragments: f.u32("fragments")?,
            phase_spread: f.f64("phase_spread")?,
            discovered_links: f.u64("discovered_links")?,
            ground_truth_links: f.u64("ground_truth_links")?,
        },
        "fault_injected" => TraceEvent::FaultInjected {
            slot: f.u64("slot")?,
            device: f.u32("device")?,
            sender: f.u32("sender")?,
            kind: FaultKind::from_name(f.str("kind")?)?,
        },
        "device_joined" => TraceEvent::DeviceJoined {
            slot: f.u64("slot")?,
            device: f.u32("device")?,
        },
        "device_left" => TraceEvent::DeviceLeft {
            slot: f.u64("slot")?,
            device: f.u32("device")?,
            orphaned: f.u32("orphaned")?,
        },
        "converged" => TraceEvent::Converged {
            slot: f.u64("slot")?,
        },
        "run_end" => TraceEvent::RunEnd {
            slot: f.u64("slot")?,
            converged: f.bool("converged")?,
        },
        _ => return None,
    };
    Some(ev)
}

/// A sink writing one JSON line per event through any `Write`.
///
/// Wrap files in a `BufWriter` — the sink writes line by line. Errors
/// are sticky and silent during the run (a sink must not perturb the
/// protocol); check [`JsonlSink::io_error`] after [`TraceSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<std::io::Error>,
    events: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            error: None,
            events: 0,
        }
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The first I/O error hit, if any (writes stop after it).
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Unwrap the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = encode_event(ev);
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|_| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        self.events += 1;
    }

    fn finish(&mut self) {
        if let Err(e) = self.out.flush() {
            self.error.get_or_insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseEnter {
                slot: 0,
                phase: ProtoPhase::Discovery,
            },
            TraceEvent::RoundStart {
                slot: 300,
                round: 1,
                budget: 180,
                fragments: 50,
            },
            TraceEvent::Tx {
                slot: 301,
                sender: 3,
                codec: Codec::Rach2,
                kind: FrameLabel::HConnect,
            },
            TraceEvent::RxDecode {
                slot: 301,
                receiver: 9,
                sender: 3,
                codec: Codec::Rach2,
                rx_dbm: -87.52309,
            },
            TraceEvent::RxCollision {
                slot: 302,
                receiver: 4,
                codec: Codec::Rach1,
                signals: 3,
            },
            TraceEvent::RxBelowThreshold {
                slot: 302,
                count: 91,
            },
            TraceEvent::PhaseAdjust {
                slot: 303,
                device: 4,
                sender: 8,
                before: 0.25,
                after: 0.75,
                absorbed: false,
            },
            TraceEvent::MergeRequest {
                slot: 304,
                round: 1,
                requester: 3,
                target: 9,
                req_fragment: 2,
            },
            TraceEvent::MergeAccept {
                slot: 305,
                round: 1,
                device: 9,
                peer: 3,
            },
            TraceEvent::MergeReject {
                slot: 306,
                round: 1,
                device: 0,
                requester: 3,
                reason: RejectReason::GrantDenied,
            },
            TraceEvent::FragmentCommit {
                slot: 307,
                round: 1,
                device: 3,
                peer: 9,
                survivor: 0,
                old_head: 2,
            },
            TraceEvent::SlotStats {
                slot: 308,
                fragments: 12,
                phase_spread: 0.4406,
                discovered_links: 130,
                ground_truth_links: 244,
            },
            TraceEvent::FaultInjected {
                slot: 400,
                device: 6,
                sender: 2,
                kind: FaultKind::FrameDup,
            },
            TraceEvent::DeviceJoined {
                slot: 450,
                device: 5,
            },
            TraceEvent::DeviceLeft {
                slot: 460,
                device: 6,
                orphaned: 2,
            },
            TraceEvent::Converged { slot: 5000 },
            TraceEvent::RunEnd {
                slot: 5000,
                converged: true,
            },
        ]
    }

    #[test]
    fn encode_parse_round_trips_every_kind() {
        for ev in all_events() {
            let line = encode_event(&ev);
            let back = parse_event(&line);
            assert_eq!(back, Some(ev), "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            "not json",
            "{\"t\":\"unknown_kind\",\"slot\":1}",
            "{\"t\":\"converged\"}",                          // missing slot
            "{\"t\":\"converged\",\"slot\":-3}",              // negative slot
            "{\"t\":\"converged\",\"slot\":1} tail",          // trailing garbage
            "{\"t\":\"run_end\",\"slot\":1,\"converged\":2}", // wrong type
        ] {
            assert_eq!(parse_event(bad), None, "input: {bad:?}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        let probe = [-95.000001, 1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE];
        for &x in &probe {
            let ev = TraceEvent::RxDecode {
                slot: 1,
                receiver: 0,
                sender: 1,
                codec: Codec::Rach1,
                rx_dbm: x,
            };
            match parse_event(&encode_event(&ev)) {
                Some(TraceEvent::RxDecode { rx_dbm, .. }) => {
                    assert_eq!(rx_dbm.to_bits(), x.to_bits())
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        for ev in all_events() {
            sink.event(&ev);
        }
        sink.finish();
        assert!(sink.io_error().is_none());
        assert_eq!(sink.events(), all_events().len() as u64);
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), all_events().len());
        for (line, ev) in lines.iter().zip(all_events()) {
            assert_eq!(parse_event(line), Some(ev));
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        for ev in all_events() {
            assert_eq!(encode_event(&ev), encode_event(&ev));
        }
    }
}
