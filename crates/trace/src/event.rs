//! The typed protocol-event vocabulary.
//!
//! One [`TraceEvent`] is one observable fact about a run: a phase
//! transition, a transmission, a reception outcome, an oscillator
//! adjustment, a step of the merge machinery, or a per-slot summary.
//! Events carry plain ids and slots (no references into engine state),
//! so sinks can buffer them freely and logs can be replayed without the
//! world that produced them.
//!
//! The vocabulary deliberately mirrors the quantities the paper plots
//! plus the ones its figures *hide*: per-phase message mix, per-slot
//! collision rate, fragment lineage, and the discovery ramp.

use serde::{Deserialize, Serialize};

/// Device identifier (matches `ffd2d_sim` device ids).
pub type DeviceId = u32;

/// Which RACH codec a broadcast used (§IV's two-codec split). A
/// trace-local mirror of `ffd2d_phy::RachCodec`, so this crate stays
/// below the PHY layer in the dependency order and the PHY's media can
/// emit events too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Codec {
    /// Regular firefly operation: fires, discovery beacons.
    Rach1,
    /// Inter-fragment merge handshakes.
    Rach2,
}

impl Codec {
    /// Stable lowercase name used in JSONL logs.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Rach1 => "rach1",
            Codec::Rach2 => "rach2",
        }
    }

    /// Inverse of [`Codec::name`].
    pub fn from_name(s: &str) -> Option<Codec> {
        match s {
            "rach1" => Some(Codec::Rach1),
            "rach2" => Some(Codec::Rach2),
            _ => None,
        }
    }
}

/// Broadcast frame kinds, as seen by the medium (a trace-local mirror
/// of `ffd2d_phy::FrameKind` discriminants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameLabel {
    /// Firefly pulse / discovery beacon.
    Fire,
    /// FST pairwise discovery response.
    DiscoveryReply,
    /// Convergecast report.
    Report,
    /// Head's merge instruction.
    MergeCmd,
    /// Algorithm 2 handshake request.
    HConnect,
    /// Algorithm 2 handshake acknowledgement.
    HAccept,
    /// Fragment-identity flood.
    NewFragment,
}

impl FrameLabel {
    /// Stable lowercase name used in JSONL logs.
    pub fn name(self) -> &'static str {
        match self {
            FrameLabel::Fire => "fire",
            FrameLabel::DiscoveryReply => "discovery_reply",
            FrameLabel::Report => "report",
            FrameLabel::MergeCmd => "merge_cmd",
            FrameLabel::HConnect => "h_connect",
            FrameLabel::HAccept => "h_accept",
            FrameLabel::NewFragment => "new_fragment",
        }
    }

    /// Inverse of [`FrameLabel::name`].
    pub fn from_name(s: &str) -> Option<FrameLabel> {
        Some(match s {
            "fire" => FrameLabel::Fire,
            "discovery_reply" => FrameLabel::DiscoveryReply,
            "report" => FrameLabel::Report,
            "merge_cmd" => FrameLabel::MergeCmd,
            "h_connect" => FrameLabel::HConnect,
            "h_accept" => FrameLabel::HAccept,
            "new_fragment" => FrameLabel::NewFragment,
            _ => return None,
        })
    }
}

/// Protocol phase of the ST engine (the FST baseline reports `Sync`
/// throughout: it has no discovery or merge machinery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtoPhase {
    /// Free-running discovery listening.
    Discovery,
    /// GHS/Borůvka merge rounds.
    Merge,
    /// Tree-coupled synchronization.
    Sync,
}

impl ProtoPhase {
    /// Stable lowercase name used in JSONL logs.
    pub fn name(self) -> &'static str {
        match self {
            ProtoPhase::Discovery => "discovery",
            ProtoPhase::Merge => "merge",
            ProtoPhase::Sync => "sync",
        }
    }

    /// Inverse of [`ProtoPhase::name`].
    pub fn from_name(s: &str) -> Option<ProtoPhase> {
        match s {
            "discovery" => Some(ProtoPhase::Discovery),
            "merge" => Some(ProtoPhase::Merge),
            "sync" => Some(ProtoPhase::Sync),
            _ => None,
        }
    }
}

/// Why a merge request did not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The head denied the grant (matching discipline: budget spent or
    /// an own request is pending without mutual priority).
    GrantDenied,
    /// The handshake turned out to target the requester's own fragment
    /// (stale neighbour label) and was voided.
    VoidSameFragment,
}

impl RejectReason {
    /// Stable lowercase name used in JSONL logs.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::GrantDenied => "grant_denied",
            RejectReason::VoidSameFragment => "void_same_fragment",
        }
    }

    /// Inverse of [`RejectReason::name`].
    pub fn from_name(s: &str) -> Option<RejectReason> {
        match s {
            "grant_denied" => Some(RejectReason::GrantDenied),
            "void_same_fragment" => Some(RejectReason::VoidSameFragment),
            _ => None,
        }
    }
}

/// Kind of an injected fault (a trace-local mirror of the
/// `ffd2d-chaos` frame fates — the trace crate sits below chaos in the
/// dependency order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A decoded frame was discarded at the receiver.
    FrameDrop,
    /// A decoded frame was delivered twice at the receiver.
    FrameDup,
}

impl FaultKind {
    /// Stable lowercase name used in JSONL logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FrameDrop => "frame_drop",
            FaultKind::FrameDup => "frame_dup",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn from_name(s: &str) -> Option<FaultKind> {
        match s {
            "frame_drop" => Some(FaultKind::FrameDrop),
            "frame_dup" => Some(FaultKind::FrameDup),
            _ => None,
        }
    }
}

/// One observable fact about a protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The engine entered a protocol phase.
    PhaseEnter {
        /// Slot of the transition.
        slot: u64,
        /// The phase entered.
        phase: ProtoPhase,
    },
    /// A merge round opened.
    RoundStart {
        /// Slot the round opened at.
        slot: u64,
        /// 1-based round number.
        round: u32,
        /// Slot budget granted to the round.
        budget: u64,
        /// Fragments alive at the round boundary.
        fragments: u32,
    },
    /// A proximity signal went on the air (per RACH codec).
    Tx {
        /// Transmission slot.
        slot: u64,
        /// Transmitting device.
        sender: DeviceId,
        /// Codec carrying the broadcast.
        codec: Codec,
        /// Frame kind on the air.
        kind: FrameLabel,
    },
    /// A receiver decoded a signal.
    RxDecode {
        /// Reception slot.
        slot: u64,
        /// Decoding device.
        receiver: DeviceId,
        /// Decoded signal's sender.
        sender: DeviceId,
        /// Codec the decode happened on.
        codec: Codec,
        /// Received power in dBm (what RSSI ranging consumes).
        rx_dbm: f64,
    },
    /// A same-codec preamble collision at one receiver (no capture).
    RxCollision {
        /// Reception slot.
        slot: u64,
        /// Receiver that lost the slot.
        receiver: DeviceId,
        /// Codec the collision happened on.
        codec: Codec,
        /// Above-threshold signals that collided.
        signals: u32,
    },
    /// Receptions provably below the detection threshold this slot
    /// (aggregate: the fast medium reconstructs this count in closed
    /// form rather than walking inaudible pairs).
    RxBelowThreshold {
        /// Reception slot.
        slot: u64,
        /// Lost (transmission, receiver) pairs.
        count: u64,
    },
    /// A decoded fire adjusted a receiver's oscillator (PRC coupling or
    /// tree master–slave alignment).
    PhaseAdjust {
        /// Slot of the adjustment.
        slot: u64,
        /// Adjusted device.
        device: DeviceId,
        /// Sender of the coupling pulse.
        sender: DeviceId,
        /// Phase (turns) before the pulse.
        before: f64,
        /// Phase (turns) after the pulse.
        after: f64,
        /// Whether the pulse absorbed the device (it fires now).
        absorbed: bool,
    },
    /// A boundary device asked to merge (an `H_Connect` reached its
    /// addressee and was queued for a grant, or matched mutually).
    MergeRequest {
        /// Slot of the request's reception.
        slot: u64,
        /// Round it belongs to.
        round: u32,
        /// Requesting boundary device.
        requester: DeviceId,
        /// Addressed target device.
        target: DeviceId,
        /// Requester's fragment label.
        req_fragment: DeviceId,
    },
    /// A merge handshake was accepted end-to-end (an accept went out).
    MergeAccept {
        /// Slot of the accept.
        slot: u64,
        /// Round it belongs to.
        round: u32,
        /// Accepting device.
        device: DeviceId,
        /// The requester being accepted.
        peer: DeviceId,
    },
    /// A merge request stalled or died.
    MergeReject {
        /// Slot of the rejection.
        slot: u64,
        /// Round it belongs to.
        round: u32,
        /// Device at which the request died (head or boundary).
        device: DeviceId,
        /// The requester affected.
        requester: DeviceId,
        /// Why.
        reason: RejectReason,
    },
    /// A tree edge was committed; fragment lineage for the merge tree.
    FragmentCommit {
        /// Slot of the commit.
        slot: u64,
        /// Round it belongs to.
        round: u32,
        /// Committing endpoint.
        device: DeviceId,
        /// Peer endpoint of the new tree edge.
        peer: DeviceId,
        /// Head surviving the merge.
        survivor: DeviceId,
        /// This endpoint's head before the commit (lineage edge
        /// `absorbed → survivor` when they differ).
        old_head: DeviceId,
    },
    /// Per-slot population summary (emitted every slot by traced
    /// engines; the cadence is the "slot tick").
    SlotStats {
        /// The slot summarised.
        slot: u64,
        /// Distinct fragment labels across the population.
        fragments: u32,
        /// Smallest covering arc of all phases, in turns (sync error).
        phase_spread: f64,
        /// Directed neighbour-table entries established so far.
        discovered_links: u64,
        /// Directed ground-truth audible links (completeness
        /// denominator; constant over a static run).
        ground_truth_links: u64,
    },
    /// A fault plan injected a frame-level fault at a receiver.
    FaultInjected {
        /// Slot of the injection.
        slot: u64,
        /// Receiver whose delivery was perturbed.
        device: DeviceId,
        /// Sender of the perturbed frame.
        sender: DeviceId,
        /// What happened to the frame.
        kind: FaultKind,
    },
    /// A device joined (powered on) under the churn schedule.
    DeviceJoined {
        /// Slot the device became active.
        slot: u64,
        /// The joining device.
        device: DeviceId,
    },
    /// A device left (powered off) under the churn schedule.
    DeviceLeft {
        /// Slot the device went silent.
        slot: u64,
        /// The leaving device.
        device: DeviceId,
        /// Fragments its departure orphaned (former tree neighbours
        /// split into this many extra components).
        orphaned: u32,
    },
    /// Every device fired in one slot — convergence.
    Converged {
        /// Slot of convergence.
        slot: u64,
    },
    /// The run ended (convergence or horizon).
    RunEnd {
        /// Final slot executed.
        slot: u64,
        /// Whether the run converged.
        converged: bool,
    },
}

impl TraceEvent {
    /// Stable snake_case tag naming the event kind (the `"t"` field of
    /// the JSONL encoding, and the key of [`CountingSink`] tallies).
    ///
    /// [`CountingSink`]: crate::CountingSink
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::PhaseEnter { .. } => "phase_enter",
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::Tx { .. } => "tx",
            TraceEvent::RxDecode { .. } => "rx_decode",
            TraceEvent::RxCollision { .. } => "rx_collision",
            TraceEvent::RxBelowThreshold { .. } => "rx_below_threshold",
            TraceEvent::PhaseAdjust { .. } => "phase_adjust",
            TraceEvent::MergeRequest { .. } => "merge_request",
            TraceEvent::MergeAccept { .. } => "merge_accept",
            TraceEvent::MergeReject { .. } => "merge_reject",
            TraceEvent::FragmentCommit { .. } => "fragment_commit",
            TraceEvent::SlotStats { .. } => "slot_stats",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::DeviceJoined { .. } => "device_joined",
            TraceEvent::DeviceLeft { .. } => "device_left",
            TraceEvent::Converged { .. } => "converged",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }

    /// The slot the event happened in.
    pub fn slot(&self) -> u64 {
        match *self {
            TraceEvent::PhaseEnter { slot, .. }
            | TraceEvent::RoundStart { slot, .. }
            | TraceEvent::Tx { slot, .. }
            | TraceEvent::RxDecode { slot, .. }
            | TraceEvent::RxCollision { slot, .. }
            | TraceEvent::RxBelowThreshold { slot, .. }
            | TraceEvent::PhaseAdjust { slot, .. }
            | TraceEvent::MergeRequest { slot, .. }
            | TraceEvent::MergeAccept { slot, .. }
            | TraceEvent::MergeReject { slot, .. }
            | TraceEvent::FragmentCommit { slot, .. }
            | TraceEvent::SlotStats { slot, .. }
            | TraceEvent::FaultInjected { slot, .. }
            | TraceEvent::DeviceJoined { slot, .. }
            | TraceEvent::DeviceLeft { slot, .. }
            | TraceEvent::Converged { slot }
            | TraceEvent::RunEnd { slot, .. } => slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trips() {
        for c in [Codec::Rach1, Codec::Rach2] {
            assert_eq!(Codec::from_name(c.name()), Some(c));
        }
        for f in [
            FrameLabel::Fire,
            FrameLabel::DiscoveryReply,
            FrameLabel::Report,
            FrameLabel::MergeCmd,
            FrameLabel::HConnect,
            FrameLabel::HAccept,
            FrameLabel::NewFragment,
        ] {
            assert_eq!(FrameLabel::from_name(f.name()), Some(f));
        }
        for p in [ProtoPhase::Discovery, ProtoPhase::Merge, ProtoPhase::Sync] {
            assert_eq!(ProtoPhase::from_name(p.name()), Some(p));
        }
        for r in [RejectReason::GrantDenied, RejectReason::VoidSameFragment] {
            assert_eq!(RejectReason::from_name(r.name()), Some(r));
        }
        for k in [FaultKind::FrameDrop, FaultKind::FrameDup] {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("bogus"), None);
        assert_eq!(Codec::from_name("bogus"), None);
        assert_eq!(FrameLabel::from_name("bogus"), None);
    }

    #[test]
    fn slot_accessor_covers_every_kind() {
        let evs = [
            TraceEvent::Converged { slot: 7 },
            TraceEvent::RxBelowThreshold { slot: 7, count: 3 },
            TraceEvent::FaultInjected {
                slot: 7,
                device: 1,
                sender: 2,
                kind: FaultKind::FrameDrop,
            },
            TraceEvent::DeviceJoined { slot: 7, device: 3 },
            TraceEvent::DeviceLeft {
                slot: 7,
                device: 4,
                orphaned: 1,
            },
            TraceEvent::RunEnd {
                slot: 7,
                converged: true,
            },
        ];
        for e in evs {
            assert_eq!(e.slot(), 7, "{}", e.tag());
        }
    }
}
