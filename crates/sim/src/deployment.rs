//! Device placement on the plane.
//!
//! The paper deploys UEs uniformly at random in a 100 m × 100 m outdoor
//! area (Table I). [`Deployment`] owns the positions of all devices in a
//! trial and answers geometric queries (pairwise distance, neighbours
//! within range). Grid and clustered placements are provided for tests
//! and ablations: a grid gives exactly known distances, and clusters
//! exercise the multi-fragment merge phase of the spanning-tree protocol.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A length in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Meters(pub f64);

impl Meters {
    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl core::fmt::Display for Meters {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} m", self.0)
    }
}

impl core::ops::Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}

/// A 2-D position in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East coordinate.
    pub x: f64,
    /// North coordinate.
    pub y: f64,
}

impl Position {
    /// Construct a position from meter coordinates.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Position) -> Meters {
        Meters(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }

    /// Squared distance (avoids the square root on hot paths).
    #[inline]
    pub fn distance_sq(&self, other: &Position) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }
}

/// Identifier of a device within a deployment (dense `0..n`).
pub type DeviceId = u32;

/// Positions of every device in a trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    positions: Vec<Position>,
    width: Meters,
    height: Meters,
}

impl Deployment {
    /// Uniform random placement of `n` devices in a `width × height` area.
    pub fn uniform<R: Rng + ?Sized>(n: usize, width: Meters, height: Meters, rng: &mut R) -> Self {
        assert!(width.0 > 0.0 && height.0 > 0.0, "area must be non-empty");
        let positions = (0..n)
            .map(|_| Position::new(rng.gen_range(0.0..width.0), rng.gen_range(0.0..height.0)))
            .collect();
        Deployment {
            positions,
            width,
            height,
        }
    }

    /// Regular grid placement: devices at cell centres of the smallest
    /// square grid with at least `n` cells, truncated to `n` devices.
    pub fn grid(n: usize, width: Meters, height: Meters) -> Self {
        assert!(width.0 > 0.0 && height.0 > 0.0, "area must be non-empty");
        let side = (n as f64).sqrt().ceil() as usize;
        let mut positions = Vec::with_capacity(n);
        'outer: for row in 0..side {
            for col in 0..side {
                if positions.len() == n {
                    break 'outer;
                }
                positions.push(Position::new(
                    (col as f64 + 0.5) * width.0 / side as f64,
                    (row as f64 + 0.5) * height.0 / side as f64,
                ));
            }
        }
        Deployment {
            positions,
            width,
            height,
        }
    }

    /// Clustered placement: `clusters` Gaussian blobs with standard
    /// deviation `spread`, centres uniform in the area. Devices are
    /// assigned to clusters round-robin; draws outside the area are
    /// clamped to the boundary.
    pub fn clustered<R: Rng + ?Sized>(
        n: usize,
        clusters: usize,
        spread: Meters,
        width: Meters,
        height: Meters,
        rng: &mut R,
    ) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let centres: Vec<Position> = (0..clusters)
            .map(|_| Position::new(rng.gen_range(0.0..width.0), rng.gen_range(0.0..height.0)))
            .collect();
        let positions = (0..n)
            .map(|i| {
                let c = centres[i % clusters];
                // Box-Muller Gaussian offsets.
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let mag = spread.0 * (-2.0 * u1.ln()).sqrt();
                let dx = mag * (2.0 * core::f64::consts::PI * u2).cos();
                let dy = mag * (2.0 * core::f64::consts::PI * u2).sin();
                Position::new(
                    (c.x + dx).clamp(0.0, width.0),
                    (c.y + dy).clamp(0.0, height.0),
                )
            })
            .collect();
        Deployment {
            positions,
            width,
            height,
        }
    }

    /// Build from explicit positions (testing / Fig. 2 style examples).
    pub fn from_positions(positions: Vec<Position>, width: Meters, height: Meters) -> Self {
        Deployment {
            positions,
            width,
            height,
        }
    }

    /// Number of devices.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the deployment holds no devices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Area width.
    #[inline]
    pub fn width(&self) -> Meters {
        self.width
    }

    /// Area height.
    #[inline]
    pub fn height(&self) -> Meters {
        self.height
    }

    /// Device density in devices per square meter.
    pub fn density(&self) -> f64 {
        self.len() as f64 / (self.width.0 * self.height.0)
    }

    /// The position of device `id`.
    #[inline]
    pub fn position(&self, id: DeviceId) -> Position {
        self.positions[id as usize]
    }

    /// All positions, indexed by device id.
    #[inline]
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// `(x, y)` tuples of every position — the form consumed by spatial
    /// indexes (`ffd2d_graph::spatial::SpatialGrid`).
    pub fn coords(&self) -> Vec<(f64, f64)> {
        self.positions.iter().map(|p| (p.x, p.y)).collect()
    }

    /// Overwrite every position in place (e.g. with a mobility-field
    /// snapshot), clamping into the arena. The population size must not
    /// change — device ids are stable across moves.
    ///
    /// # Panics
    ///
    /// If `positions.len()` differs from the current population.
    pub fn set_positions(&mut self, positions: &[Position]) {
        assert_eq!(
            positions.len(),
            self.positions.len(),
            "mobility must preserve the population"
        );
        for (slot, p) in self.positions.iter_mut().zip(positions) {
            *slot = Position::new(p.x.clamp(0.0, self.width.0), p.y.clamp(0.0, self.height.0));
        }
    }

    /// Pairwise distance between devices `a` and `b`.
    #[inline]
    pub fn distance(&self, a: DeviceId, b: DeviceId) -> Meters {
        self.positions[a as usize].distance(&self.positions[b as usize])
    }

    /// Ids of every device strictly within `range` of `of` (excluding
    /// `of` itself).
    pub fn neighbors_within(&self, of: DeviceId, range: Meters) -> Vec<DeviceId> {
        let p = self.positions[of as usize];
        let r2 = range.0 * range.0;
        self.positions
            .iter()
            .enumerate()
            .filter(|&(i, q)| i as DeviceId != of && p.distance_sq(q) < r2)
            .map(|(i, _)| i as DeviceId)
            .collect()
    }

    /// Iterate over all unordered device pairs `(a, b)` with `a < b`.
    pub fn pairs(&self) -> impl Iterator<Item = (DeviceId, DeviceId)> + '_ {
        let n = self.len() as DeviceId;
        (0..n).flat_map(move |a| ((a + 1)..n).map(move |b| (a, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> crate::rng::Xoshiro256StarStar {
        crate::rng::Xoshiro256StarStar::seed_from_u64(1)
    }

    #[test]
    fn uniform_stays_in_area() {
        let d = Deployment::uniform(500, Meters(100.0), Meters(50.0), &mut rng());
        assert_eq!(d.len(), 500);
        for p in d.positions() {
            assert!((0.0..100.0).contains(&p.x));
            assert!((0.0..50.0).contains(&p.y));
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = Deployment::uniform(10, Meters(100.0), Meters(100.0), &mut rng());
        let b = Deployment::uniform(10, Meters(100.0), Meters(100.0), &mut rng());
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn grid_has_known_geometry() {
        let d = Deployment::grid(4, Meters(100.0), Meters(100.0));
        // 2x2 grid at cell centres: (25,25), (75,25), (25,75), (75,75).
        assert_eq!(d.len(), 4);
        assert!((d.distance(0, 1).0 - 50.0).abs() < 1e-9);
        assert!((d.distance(0, 3).0 - 50.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn grid_truncates_to_n() {
        let d = Deployment::grid(5, Meters(90.0), Meters(90.0));
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn clustered_stays_in_area() {
        let d = Deployment::clustered(
            200,
            4,
            Meters(5.0),
            Meters(100.0),
            Meters(100.0),
            &mut rng(),
        );
        for p in d.positions() {
            assert!((0.0..=100.0).contains(&p.x));
            assert!((0.0..=100.0).contains(&p.y));
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let d = Deployment::uniform(20, Meters(100.0), Meters(100.0), &mut rng());
        for (a, b) in d.pairs() {
            assert!((d.distance(a, b).0 - d.distance(b, a).0).abs() < 1e-12);
        }
        let p = d.position(3);
        assert_eq!(p.distance(&p).0, 0.0);
    }

    #[test]
    fn neighbors_within_excludes_self_and_respects_range() {
        let d = Deployment::grid(9, Meters(90.0), Meters(90.0)); // 3x3, 30 m pitch
        let nbrs = d.neighbors_within(4, Meters(31.0)); // centre cell
        assert_eq!(nbrs.len(), 4); // von Neumann neighbours only
        assert!(!nbrs.contains(&4));
    }

    #[test]
    fn coords_mirror_positions() {
        let d = Deployment::grid(5, Meters(50.0), Meters(50.0));
        let xy = d.coords();
        assert_eq!(xy.len(), 5);
        for (i, &(x, y)) in xy.iter().enumerate() {
            let p = d.position(i as u32);
            assert_eq!((x, y), (p.x, p.y));
        }
    }

    #[test]
    fn set_positions_clamps_and_preserves_ids() {
        let mut d = Deployment::grid(3, Meters(10.0), Meters(10.0));
        d.set_positions(&[
            Position::new(-5.0, 5.0),
            Position::new(4.0, 20.0),
            Position::new(1.0, 1.0),
        ]);
        assert_eq!(d.position(0), Position::new(0.0, 5.0));
        assert_eq!(d.position(1), Position::new(4.0, 10.0));
        assert_eq!(d.position(2), Position::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "population")]
    fn set_positions_rejects_resize() {
        let mut d = Deployment::grid(3, Meters(10.0), Meters(10.0));
        d.set_positions(&[Position::new(1.0, 1.0)]);
    }

    #[test]
    fn pairs_enumerates_n_choose_2() {
        let d = Deployment::grid(7, Meters(10.0), Meters(10.0));
        assert_eq!(d.pairs().count(), 21);
    }

    #[test]
    fn density_matches_definition() {
        let d = Deployment::grid(50, Meters(100.0), Meters(100.0));
        assert!((d.density() - 0.005).abs() < 1e-12);
    }
}
