//! Message and event counters.
//!
//! The paper's Fig. 4 reports the *average number of message exchanges*
//! until convergence. [`Counters`] is the single tally point every
//! protocol engine increments; it distinguishes the two RACH codecs so
//! the experiment harness can attribute overhead to regular firefly
//! operation (RACH1) versus inter-fragment merge handshakes (RACH2), and
//! it tracks collision/drop counts for the ablation studies.

use serde::{Deserialize, Serialize};

/// Tally of protocol activity during one trial.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Proximity signals broadcast on RACH codec 1 (regular firefly
    /// operation: firing pulses, discovery beacons).
    pub rach1_tx: u64,
    /// Proximity signals broadcast on RACH codec 2 (inter-fragment
    /// synchronization / merge handshakes).
    pub rach2_tx: u64,
    /// Unicast control messages (tree-internal reports, merge requests).
    pub unicast_tx: u64,
    /// Individual receptions that decoded successfully.
    pub rx_ok: u64,
    /// Receptions lost to preamble collision.
    pub rx_collision: u64,
    /// Receptions lost to fading below the detection threshold.
    pub rx_below_threshold: u64,
    /// Successfully decoded frames discarded by injected frame-drop
    /// faults (`ffd2d-chaos`); zero unless a fault plan is active.
    pub fault_dropped_frames: u64,
    /// Decoded frames delivered twice by injected duplication faults;
    /// zero unless a fault plan is active.
    pub fault_dup_frames: u64,
}

impl Counters {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total transmitted control messages — the quantity plotted in the
    /// paper's Fig. 4.
    pub fn total_tx(&self) -> u64 {
        self.rach1_tx + self.rach2_tx + self.unicast_tx
    }

    /// Total reception attempts.
    pub fn total_rx_attempts(&self) -> u64 {
        self.rx_ok + self.rx_collision + self.rx_below_threshold
    }

    /// Fraction of reception attempts lost to collisions (0 when no
    /// attempts were made).
    pub fn collision_rate(&self) -> f64 {
        let attempts = self.total_rx_attempts();
        if attempts == 0 {
            0.0
        } else {
            self.rx_collision as f64 / attempts as f64
        }
    }

    /// Fraction of reception attempts lost below the detection
    /// threshold — the channel's share of the loss, as opposed to
    /// [`Counters::collision_rate`]'s contention share (0 when no
    /// attempts were made).
    pub fn rx_loss_rate(&self) -> f64 {
        let attempts = self.total_rx_attempts();
        if attempts == 0 {
            0.0
        } else {
            self.rx_below_threshold as f64 / attempts as f64
        }
    }

    /// Record `n` RACH1 broadcasts. Saturating, like every tally bump:
    /// a wrapped counter would silently corrupt Fig. 4 aggregates, so
    /// raw `+=` on tally fields is banned (enforced by `ffd2d-lint`'s
    /// `counter-discipline` rule) in favour of these helpers.
    #[inline]
    pub fn add_rach1_tx(&mut self, n: u64) {
        self.rach1_tx = self.rach1_tx.saturating_add(n);
    }

    /// Record `n` RACH2 broadcasts (saturating).
    #[inline]
    pub fn add_rach2_tx(&mut self, n: u64) {
        self.rach2_tx = self.rach2_tx.saturating_add(n);
    }

    /// Record `n` unicast control messages (saturating).
    #[inline]
    pub fn add_unicast_tx(&mut self, n: u64) {
        self.unicast_tx = self.unicast_tx.saturating_add(n);
    }

    /// Record `n` successful decodes (saturating).
    #[inline]
    pub fn add_rx_ok(&mut self, n: u64) {
        self.rx_ok = self.rx_ok.saturating_add(n);
    }

    /// Record `n` receptions lost to preamble collision (saturating).
    #[inline]
    pub fn add_rx_collision(&mut self, n: u64) {
        self.rx_collision = self.rx_collision.saturating_add(n);
    }

    /// Record `n` receptions below the detection threshold (saturating).
    #[inline]
    pub fn add_rx_below_threshold(&mut self, n: u64) {
        self.rx_below_threshold = self.rx_below_threshold.saturating_add(n);
    }

    /// Record `n` frames discarded by injected drop faults (saturating).
    #[inline]
    pub fn add_fault_dropped_frames(&mut self, n: u64) {
        self.fault_dropped_frames = self.fault_dropped_frames.saturating_add(n);
    }

    /// Record `n` frames duplicated by injected faults (saturating).
    #[inline]
    pub fn add_fault_dup_frames(&mut self, n: u64) {
        self.fault_dup_frames = self.fault_dup_frames.saturating_add(n);
    }

    /// Merge another tally into this one (used when aggregating trials).
    /// Saturating: fleet-level aggregation across millions of trials
    /// must clamp rather than wrap at the `u64` ceiling.
    pub fn merge(&mut self, other: &Counters) {
        self.rach1_tx = self.rach1_tx.saturating_add(other.rach1_tx);
        self.rach2_tx = self.rach2_tx.saturating_add(other.rach2_tx);
        self.unicast_tx = self.unicast_tx.saturating_add(other.unicast_tx);
        self.rx_ok = self.rx_ok.saturating_add(other.rx_ok);
        self.rx_collision = self.rx_collision.saturating_add(other.rx_collision);
        self.rx_below_threshold = self
            .rx_below_threshold
            .saturating_add(other.rx_below_threshold);
        self.fault_dropped_frames = self
            .fault_dropped_frames
            .saturating_add(other.fault_dropped_frames);
        self.fault_dup_frames = self.fault_dup_frames.saturating_add(other.fault_dup_frames);
    }
}

impl core::ops::AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let c = Counters {
            rach1_tx: 10,
            rach2_tx: 5,
            unicast_tx: 2,
            rx_ok: 30,
            rx_collision: 10,
            rx_below_threshold: 60,
            ..Counters::new()
        };
        assert_eq!(c.total_tx(), 17);
        assert_eq!(c.total_rx_attempts(), 100);
        assert!((c.collision_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn collision_rate_handles_zero_attempts() {
        assert_eq!(Counters::new().collision_rate(), 0.0);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = Counters {
            rach1_tx: u64::MAX - 1,
            ..Counters::new()
        };
        a += Counters {
            rach1_tx: 10,
            rx_ok: 3,
            ..Counters::new()
        };
        assert_eq!(a.rach1_tx, u64::MAX);
        assert_eq!(a.rx_ok, 3);
    }

    #[test]
    fn loss_rates_partition_attempts() {
        let c = Counters {
            rx_ok: 30,
            rx_collision: 10,
            rx_below_threshold: 60,
            ..Counters::new()
        };
        assert!((c.collision_rate() + c.rx_loss_rate() + 0.3 - 1.0).abs() < 1e-12);
        assert_eq!(Counters::new().rx_loss_rate(), 0.0);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = Counters {
            rach1_tx: 1,
            rach2_tx: 2,
            unicast_tx: 3,
            rx_ok: 4,
            rx_collision: 5,
            rx_below_threshold: 6,
            fault_dropped_frames: 7,
            fault_dup_frames: 8,
        };
        let b = a;
        a += b;
        assert_eq!(a.rach1_tx, 2);
        assert_eq!(a.rx_below_threshold, 12);
        assert_eq!(a.fault_dropped_frames, 14);
        assert_eq!(a.fault_dup_frames, 16);
        assert_eq!(a.total_tx(), 12);
    }
}
