//! Message and event counters.
//!
//! The paper's Fig. 4 reports the *average number of message exchanges*
//! until convergence. [`Counters`] is the single tally point every
//! protocol engine increments; it distinguishes the two RACH codecs so
//! the experiment harness can attribute overhead to regular firefly
//! operation (RACH1) versus inter-fragment merge handshakes (RACH2), and
//! it tracks collision/drop counts for the ablation studies.

use serde::{Deserialize, Serialize};

/// Tally of protocol activity during one trial.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Proximity signals broadcast on RACH codec 1 (regular firefly
    /// operation: firing pulses, discovery beacons).
    pub rach1_tx: u64,
    /// Proximity signals broadcast on RACH codec 2 (inter-fragment
    /// synchronization / merge handshakes).
    pub rach2_tx: u64,
    /// Unicast control messages (tree-internal reports, merge requests).
    pub unicast_tx: u64,
    /// Individual receptions that decoded successfully.
    pub rx_ok: u64,
    /// Receptions lost to preamble collision.
    pub rx_collision: u64,
    /// Receptions lost to fading below the detection threshold.
    pub rx_below_threshold: u64,
}

impl Counters {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total transmitted control messages — the quantity plotted in the
    /// paper's Fig. 4.
    pub fn total_tx(&self) -> u64 {
        self.rach1_tx + self.rach2_tx + self.unicast_tx
    }

    /// Total reception attempts.
    pub fn total_rx_attempts(&self) -> u64 {
        self.rx_ok + self.rx_collision + self.rx_below_threshold
    }

    /// Fraction of reception attempts lost to collisions (0 when no
    /// attempts were made).
    pub fn collision_rate(&self) -> f64 {
        let attempts = self.total_rx_attempts();
        if attempts == 0 {
            0.0
        } else {
            self.rx_collision as f64 / attempts as f64
        }
    }

    /// Merge another tally into this one (used when aggregating trials).
    pub fn merge(&mut self, other: &Counters) {
        self.rach1_tx += other.rach1_tx;
        self.rach2_tx += other.rach2_tx;
        self.unicast_tx += other.unicast_tx;
        self.rx_ok += other.rx_ok;
        self.rx_collision += other.rx_collision;
        self.rx_below_threshold += other.rx_below_threshold;
    }
}

impl core::ops::AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let c = Counters {
            rach1_tx: 10,
            rach2_tx: 5,
            unicast_tx: 2,
            rx_ok: 30,
            rx_collision: 10,
            rx_below_threshold: 60,
        };
        assert_eq!(c.total_tx(), 17);
        assert_eq!(c.total_rx_attempts(), 100);
        assert!((c.collision_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn collision_rate_handles_zero_attempts() {
        assert_eq!(Counters::new().collision_rate(), 0.0);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = Counters {
            rach1_tx: 1,
            rach2_tx: 2,
            unicast_tx: 3,
            rx_ok: 4,
            rx_collision: 5,
            rx_below_threshold: 6,
        };
        let b = a;
        a += b;
        assert_eq!(a.rach1_tx, 2);
        assert_eq!(a.rx_below_threshold, 12);
        assert_eq!(a.total_tx(), 12);
    }
}
