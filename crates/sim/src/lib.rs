//! # ffd2d-sim — discrete-event simulation kernel for D2D protocol studies
//!
//! This crate is the substrate on which every protocol in the `ffd2d`
//! workspace runs. The paper this workspace reproduces (Pratap & Misra,
//! *"Firefly inspired Improved Distributed Proximity Algorithm for D2D
//! Communication"*, IPDPSW 2015) evaluates its algorithms on a slotted
//! LTE-A simulation with a 1 ms time slot; this crate provides exactly
//! that substrate:
//!
//! * [`time`] — slot-based virtual time ([`Slot`], [`SlotDuration`]) with
//!   the LTE 1 ms slot as the base unit.
//! * [`rng`] — deterministic, splittable random-number generation
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`], stream derivation)
//!   so that every Monte-Carlo trial is exactly reproducible from a
//!   `(seed, trial)` pair and independent streams can be handed to the
//!   channel, the deployment and each device without correlation.
//! * [`event`] — a monotone event queue ([`event::EventQueue`]) with
//!   deterministic FIFO tie-breaking for simultaneous events, plus the
//!   coalescing two-tier wake-up scheduler ([`event::SlotWheel`]) and
//!   the adaptive-engine cutover policy ([`event::DensityWindow`]).
//! * [`deployment`] — placement of devices on the plane (uniform random,
//!   grid, clustered) in a configurable area.
//! * [`mobility`] — random-waypoint motion on the slot grid (the
//!   paper's "more realistic scenarios" future work).
//! * [`config`] — the base simulation configuration shared by every
//!   experiment (area, device count, slot length, seed).
//! * [`counters`] — cheap event/message counters used by the experiment
//!   harness to reproduce the paper's Fig. 4 (message-exchange counts).
//!
//! The kernel is deliberately protocol-agnostic: protocol crates
//! (`ffd2d-core`, `ffd2d-baseline`) drive a slot loop and use the event
//! queue for timers, while the PHY crate (`ffd2d-phy`) models the shared
//! medium.
//!
//! ## Example
//!
//! ```
//! use ffd2d_sim::prelude::*;
//!
//! // Deterministic RNG stream for trial 7 of master seed 42.
//! let mut rng = StreamRng::for_trial(42, 7);
//! let deployment = Deployment::uniform(50, Meters(100.0), Meters(100.0), &mut rng);
//! assert_eq!(deployment.len(), 50);
//!
//! // Slot-based virtual time.
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(Slot(3), "fire");
//! queue.schedule(Slot(1), "tick");
//! assert_eq!(queue.pop().map(|e| (e.at, e.payload)), Some((Slot(1), "tick")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod deployment;
pub mod event;
pub mod mobility;
pub mod rng;
pub mod time;

pub use config::SimConfig;
pub use counters::Counters;
pub use deployment::{Deployment, Meters, Position};
pub use event::{DensityWindow, EventQueue, ScheduledEvent, SlotWheel};
pub use mobility::{MobilityField, WaypointConfig};
pub use rng::StreamRng;
pub use time::{Slot, SlotDuration, SLOT_MILLIS};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::config::SimConfig;
    pub use crate::counters::Counters;
    pub use crate::deployment::{Deployment, Meters, Position};
    pub use crate::event::{DensityWindow, EventQueue, ScheduledEvent, SlotWheel};
    pub use crate::rng::{SplitMix64, StreamRng, Xoshiro256StarStar};
    pub use crate::time::{Slot, SlotDuration, SLOT_MILLIS};
}
