//! Slot-based virtual time.
//!
//! LTE-A organises the air interface into 1 ms subframes; the paper's
//! Table I fixes the simulation time slot to 1 ms. All protocol logic in
//! this workspace therefore advances in integer [`Slot`] steps, and wall
//! time in milliseconds is simply `slot.0 * SLOT_MILLIS`.
//!
//! `Slot` is an *instant*; [`SlotDuration`] is a *span*. The arithmetic
//! between the two mirrors `std::time::{Instant, Duration}`: instants can
//! be shifted by durations and subtracted from each other, but two
//! instants cannot be added.

use serde::{Deserialize, Serialize};

/// Length of one simulation slot in milliseconds (LTE subframe, Table I).
pub const SLOT_MILLIS: u64 = 1;

/// A discrete simulation instant, measured in slots since the start of
/// the trial.
///
/// ```
/// use ffd2d_sim::time::{Slot, SlotDuration};
/// let t = Slot(10) + SlotDuration(5);
/// assert_eq!(t, Slot(15));
/// assert_eq!(t - Slot(10), SlotDuration(5));
/// assert_eq!(t.as_millis(), 15);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Slot(pub u64);

/// A span of simulation time, measured in whole slots.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SlotDuration(pub u64);

impl Slot {
    /// The first slot of a trial.
    pub const ZERO: Slot = Slot(0);

    /// Wall-clock milliseconds corresponding to this instant.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 * SLOT_MILLIS
    }

    /// Wall-clock seconds corresponding to this instant.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.as_millis() as f64 / 1000.0
    }

    /// The next slot.
    #[inline]
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: Slot) -> SlotDuration {
        SlotDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SlotDuration {
    /// The empty duration.
    pub const ZERO: SlotDuration = SlotDuration(0);

    /// Duration from a millisecond count (1 slot = 1 ms).
    #[inline]
    pub fn from_millis(ms: u64) -> SlotDuration {
        SlotDuration(ms / SLOT_MILLIS)
    }

    /// Wall-clock milliseconds spanned.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 * SLOT_MILLIS
    }

    /// True if the span is empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl core::ops::Add<SlotDuration> for Slot {
    type Output = Slot;
    #[inline]
    fn add(self, rhs: SlotDuration) -> Slot {
        Slot(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<SlotDuration> for Slot {
    #[inline]
    fn add_assign(&mut self, rhs: SlotDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub<Slot> for Slot {
    type Output = SlotDuration;
    #[inline]
    fn sub(self, rhs: Slot) -> SlotDuration {
        SlotDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later slot from an earlier one"),
        )
    }
}

impl core::ops::Sub<SlotDuration> for Slot {
    type Output = Slot;
    #[inline]
    fn sub(self, rhs: SlotDuration) -> Slot {
        Slot(
            self.0
                .checked_sub(rhs.0)
                .expect("slot arithmetic underflow"),
        )
    }
}

impl core::ops::Add for SlotDuration {
    type Output = SlotDuration;
    #[inline]
    fn add(self, rhs: SlotDuration) -> SlotDuration {
        SlotDuration(self.0 + rhs.0)
    }
}

impl core::ops::Mul<u64> for SlotDuration {
    type Output = SlotDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SlotDuration {
        SlotDuration(self.0 * rhs)
    }
}

impl core::fmt::Display for Slot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

impl core::fmt::Display for SlotDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} ms", self.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration() {
        assert_eq!(Slot(3) + SlotDuration(4), Slot(7));
        let mut t = Slot(1);
        t += SlotDuration(2);
        assert_eq!(t, Slot(3));
    }

    #[test]
    fn instant_difference() {
        assert_eq!(Slot(9) - Slot(4), SlotDuration(5));
        assert_eq!(Slot(9) - SlotDuration(4), Slot(5));
    }

    #[test]
    #[should_panic(expected = "subtracting a later slot")]
    fn negative_difference_panics() {
        let _ = Slot(1) - Slot(2);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Slot(1).saturating_since(Slot(5)), SlotDuration::ZERO);
        assert_eq!(Slot(5).saturating_since(Slot(1)), SlotDuration(4));
    }

    #[test]
    fn millis_round_trip() {
        assert_eq!(Slot(250).as_millis(), 250);
        assert_eq!(SlotDuration::from_millis(250).as_millis(), 250);
        assert!((Slot(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        assert_eq!(SlotDuration(2) + SlotDuration(3), SlotDuration(5));
        assert_eq!(SlotDuration(2) * 4, SlotDuration(8));
        assert!(SlotDuration::ZERO.is_zero());
        assert!(!SlotDuration(1).is_zero());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Slot(1) < Slot(2));
        assert!(SlotDuration(1) < SlotDuration(2));
        assert_eq!(Slot::ZERO.next(), Slot(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Slot(7).to_string(), "slot 7");
        assert_eq!(SlotDuration(7).to_string(), "7 ms");
    }
}
