//! Base simulation configuration.
//!
//! `SimConfig` captures the scenario-independent knobs of a trial: how
//! many devices, in what area, for how long, and under which master
//! seed. Radio parameters (transmit power, thresholds, fading) live in
//! `ffd2d-radio`, protocol parameters in `ffd2d-core`; this split keeps
//! the kernel free of protocol knowledge while letting the experiment
//! harness assemble a full Table-I scenario from the three layers.

use serde::{Deserialize, Serialize};

use crate::deployment::Meters;
use crate::time::SlotDuration;

/// Scenario-independent simulation parameters.
///
/// Defaults reproduce the deployment row of the paper's Table I:
/// 50 devices in a 100 m × 100 m area, 1 ms slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of devices (UEs) deployed.
    pub n_devices: usize,
    /// Area width in meters.
    pub area_width: Meters,
    /// Area height in meters.
    pub area_height: Meters,
    /// Hard cap on simulated time; a trial that has not converged by
    /// this horizon is reported as non-converged.
    pub max_slots: SlotDuration,
    /// Master seed; every stream in the trial derives from it.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_devices: 50,
            area_width: Meters(100.0),
            area_height: Meters(100.0),
            max_slots: SlotDuration(200_000),
            seed: 0xF1EE_F1EE,
        }
    }
}

impl SimConfig {
    /// Table-I deployment (50 devices / 100 m × 100 m) with a caller
    /// supplied seed.
    pub fn table1(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Self::default()
        }
    }

    /// Same area as Table I but `n` devices — the sweep used by the
    /// paper's Figs. 3 and 4 (node counts up to 1000 in the same area).
    pub fn with_devices(n: usize) -> Self {
        SimConfig {
            n_devices: n,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style horizon override.
    pub fn with_max_slots(mut self, max: SlotDuration) -> Self {
        self.max_slots = max;
        self
    }

    /// Device density in devices per square meter.
    pub fn density(&self) -> f64 {
        self.n_devices as f64 / (self.area_width.0 * self.area_height.0)
    }

    /// Validate invariants, returning a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_devices < 2 {
            return Err(format!(
                "need at least 2 devices for D2D, got {}",
                self.n_devices
            ));
        }
        if self.area_width.0 <= 0.0 || self.area_height.0 <= 0.0 {
            return Err("deployment area must have positive dimensions".into());
        }
        if self.max_slots.is_zero() {
            return Err("max_slots must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.n_devices, 50);
        assert_eq!(c.area_width.0, 100.0);
        assert_eq!(c.area_height.0, 100.0);
        assert!((c.density() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::with_devices(400)
            .seeded(9)
            .with_max_slots(SlotDuration(10));
        assert_eq!(c.n_devices, 400);
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_slots, SlotDuration(10));
    }

    #[test]
    fn validate_catches_bad_configs() {
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::with_devices(1).validate().is_err());
        let c = SimConfig {
            area_width: Meters(0.0),
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            max_slots: SlotDuration::ZERO,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn clone_preserves_fields() {
        let c = SimConfig::with_devices(123).seeded(77);
        let d = c.clone();
        assert_eq!(d.n_devices, 123);
        assert_eq!(d.seed, 77);
    }
}
