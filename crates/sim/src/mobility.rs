//! Device mobility — the paper's stated future work.
//!
//! The paper evaluates static deployments and closes with: *"In future,
//! this proximity discovery concept can be extent to more realistic
//! scenarios of D2D LTE-A networks"*. This module provides the standard
//! mobility substrate for that extension: the **random waypoint** model
//! (pick a uniform destination, walk there at a uniform speed, pause,
//! repeat), discretised to the 1 ms slot grid, plus a simple constant-
//! velocity model for controlled tests.
//!
//! The protocol engines remain static-deployment (as evaluated in the
//! paper); `MobilityField` lets experiments re-sample positions over
//! time and measure how stale a discovered tree becomes — see the
//! `mobility_staleness` test here for the micro version of that
//! experiment.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::deployment::{Deployment, DeviceId, Meters, Position};
use crate::time::{Slot, SlotDuration};

/// Walking state of one device under random waypoint.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Walker {
    pos: Position,
    dest: Position,
    /// Meters moved per slot toward `dest` (0 while pausing).
    speed: f64,
    /// Slots of pause remaining at the current waypoint.
    pause_left: u64,
}

/// Random-waypoint mobility parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WaypointConfig {
    /// Minimum walking speed in m/s (> 0 to avoid the well-known RWP
    /// speed-decay pathology).
    pub min_speed_mps: f64,
    /// Maximum walking speed in m/s.
    pub max_speed_mps: f64,
    /// Maximum pause at each waypoint, in slots.
    pub max_pause: SlotDuration,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        WaypointConfig {
            min_speed_mps: 0.5,
            max_speed_mps: 1.5, // pedestrian
            max_pause: SlotDuration(5_000),
        }
    }
}

/// Time-evolving positions for a population of devices.
#[derive(Debug, Clone)]
pub struct MobilityField {
    walkers: Vec<Walker>,
    width: Meters,
    height: Meters,
    cfg: WaypointConfig,
    now: Slot,
}

impl MobilityField {
    /// Start from an existing (slot-0) deployment.
    pub fn random_waypoint<R: Rng + ?Sized>(
        deployment: &Deployment,
        cfg: WaypointConfig,
        rng: &mut R,
    ) -> MobilityField {
        assert!(
            cfg.min_speed_mps > 0.0 && cfg.max_speed_mps >= cfg.min_speed_mps,
            "speeds must satisfy 0 < min <= max"
        );
        let (width, height) = (deployment.width(), deployment.height());
        let walkers = deployment
            .positions()
            .iter()
            .map(|&pos| {
                let mut w = Walker {
                    pos,
                    dest: pos,
                    speed: 0.0,
                    pause_left: 0,
                };
                Self::pick_waypoint(&mut w, width, height, &cfg, rng);
                w
            })
            .collect();
        MobilityField {
            walkers,
            width,
            height,
            cfg,
            now: Slot::ZERO,
        }
    }

    fn pick_waypoint<R: Rng + ?Sized>(
        w: &mut Walker,
        width: Meters,
        height: Meters,
        cfg: &WaypointConfig,
        rng: &mut R,
    ) {
        w.dest = Position::new(rng.gen_range(0.0..width.0), rng.gen_range(0.0..height.0));
        let speed_mps = rng.gen_range(cfg.min_speed_mps..=cfg.max_speed_mps);
        // Meters per slot (slot = 1 ms).
        w.speed = speed_mps / 1000.0;
        w.pause_left = if cfg.max_pause.is_zero() {
            0
        } else {
            rng.gen_range(0..=cfg.max_pause.0)
        };
    }

    /// Current simulation time of the field.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// True if the field tracks no devices.
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// Current position of a device.
    pub fn position(&self, id: DeviceId) -> Position {
        self.walkers[id as usize].pos
    }

    /// Advance every walker by `dt` slots.
    pub fn advance<R: Rng + ?Sized>(&mut self, dt: SlotDuration, rng: &mut R) {
        for _ in 0..dt.0 {
            for i in 0..self.walkers.len() {
                let mut w = self.walkers[i];
                if w.pause_left > 0 {
                    w.pause_left -= 1;
                } else {
                    let dx = w.dest.x - w.pos.x;
                    let dy = w.dest.y - w.pos.y;
                    let dist = (dx * dx + dy * dy).sqrt();
                    if dist <= w.speed {
                        w.pos = w.dest;
                        Self::pick_waypoint(&mut w, self.width, self.height, &self.cfg, rng);
                    } else {
                        w.pos.x += w.speed * dx / dist;
                        w.pos.y += w.speed * dy / dist;
                    }
                }
                self.walkers[i] = w;
            }
        }
        self.now += dt;
    }

    /// Snapshot the current positions as a static [`Deployment`]
    /// (what a protocol run at this instant would see).
    pub fn snapshot(&self) -> Deployment {
        Deployment::from_positions(
            self.walkers.iter().map(|w| w.pos).collect(),
            self.width,
            self.height,
        )
    }

    /// Mean displacement (m) of all devices from a reference snapshot —
    /// the staleness measure for a tree built at that reference time.
    pub fn mean_displacement(&self, reference: &Deployment) -> f64 {
        assert_eq!(reference.len(), self.len());
        let total: f64 = self
            .walkers
            .iter()
            .enumerate()
            .map(|(i, w)| reference.position(i as u32).distance(&w.pos).0)
            .sum();
        total / self.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use rand::SeedableRng;

    fn field(seed: u64) -> (Deployment, MobilityField, Xoshiro256StarStar) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let dep = Deployment::uniform(30, Meters(100.0), Meters(100.0), &mut rng);
        let f = MobilityField::random_waypoint(&dep, WaypointConfig::default(), &mut rng);
        (dep, f, rng)
    }

    #[test]
    fn starts_at_the_deployment() {
        let (dep, f, _) = field(1);
        for i in 0..dep.len() as u32 {
            let p = f.position(i);
            let q = dep.position(i);
            assert_eq!((p.x, p.y), (q.x, q.y));
        }
    }

    #[test]
    fn walkers_stay_in_the_arena() {
        let (_, mut f, mut rng) = field(2);
        f.advance(SlotDuration(50_000), &mut rng);
        for i in 0..f.len() as u32 {
            let p = f.position(i);
            assert!((0.0..=100.0).contains(&p.x), "{p:?}");
            assert!((0.0..=100.0).contains(&p.y), "{p:?}");
        }
        assert_eq!(f.now(), Slot(50_000));
    }

    #[test]
    fn speed_respects_bounds() {
        // Over 1 s (1000 slots) nobody may move farther than
        // max_speed × 1 s.
        let (dep, mut f, mut rng) = field(3);
        f.advance(SlotDuration(1000), &mut rng);
        for i in 0..f.len() as u32 {
            let moved = dep.position(i).distance(&f.position(i)).0;
            assert!(moved <= 1.5 + 1e-6, "device {i} moved {moved} m in 1 s");
        }
    }

    #[test]
    fn displacement_grows_with_time() {
        let (dep, mut f, mut rng) = field(4);
        f.advance(SlotDuration(5_000), &mut rng);
        let d1 = f.mean_displacement(&dep);
        f.advance(SlotDuration(60_000), &mut rng);
        let d2 = f.mean_displacement(&dep);
        assert!(d2 > d1, "{d2} should exceed {d1}");
        assert!(d1 >= 0.0);
    }

    #[test]
    fn mobility_staleness() {
        // Micro-version of the future-work experiment: a tree built at
        // t=0 refers to links whose endpoints drift; after a minute of
        // pedestrian motion the mean displacement is several meters —
        // enough to reorder PS-strength edge weights, so periodic
        // re-discovery is required.
        let (dep, mut f, mut rng) = field(5);
        f.advance(SlotDuration(60_000), &mut rng); // one minute
        let drift = f.mean_displacement(&dep);
        assert!(
            drift > 2.0,
            "pedestrians should drift meters per minute, got {drift}"
        );
        let snap = f.snapshot();
        assert_eq!(snap.len(), dep.len());
        assert!((snap.density() - dep.density()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "speeds")]
    fn zero_min_speed_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let dep = Deployment::uniform(3, Meters(10.0), Meters(10.0), &mut rng);
        let cfg = WaypointConfig {
            min_speed_mps: 0.0,
            ..WaypointConfig::default()
        };
        let _ = MobilityField::random_waypoint(&dep, cfg, &mut rng);
    }
}
