//! Monotone discrete-event queue.
//!
//! Protocol engines in this workspace are primarily *slot-stepped* (an
//! LTE device wakes every subframe), but timers — oscillator firing
//! deadlines, merge-handshake timeouts, convergence probes — are
//! naturally expressed as scheduled events. [`EventQueue`] provides a
//! classic calendar min-heap with two guarantees that matter for
//! reproducibility:
//!
//! 1. **Monotonicity** — events cannot be scheduled before the time of
//!    the last popped event (enforced with a debug assertion; simulation
//!    causality bugs fail loudly in tests).
//! 2. **Deterministic tie-breaking** — events scheduled for the same slot
//!    pop in FIFO insertion order, independent of payload or allocation
//!    addresses, so a trial replays identically.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Slot;

/// An event scheduled on an [`EventQueue`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: Slot,
    /// Monotone insertion sequence number (FIFO tie-break).
    pub seq: u64,
    /// User payload.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use ffd2d_sim::{EventQueue, Slot};
/// let mut q = EventQueue::new();
/// q.schedule(Slot(5), 'b');
/// q.schedule(Slot(2), 'a');
/// q.schedule(Slot(5), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']); // FIFO within slot 5
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
    now: Slot,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue positioned at [`Slot::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Slot::ZERO,
        }
    }

    /// An empty queue with pre-reserved capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: Slot::ZERO,
        }
    }

    /// The virtual time of the most recently popped event (the current
    /// simulation time from the queue's point of view).
    #[inline]
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at slot `at`.
    ///
    /// # Panics (debug builds)
    ///
    /// Panics if `at` is earlier than the time of the last popped event —
    /// scheduling into the past is always a protocol bug.
    pub fn schedule(&mut self, at: Slot, payload: T) {
        debug_assert!(
            at >= self.now,
            "event scheduled into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Slot> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event and advance the queue's clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Pop the earliest event only if it fires at or before `t`.
    pub fn pop_until(&mut self, t: Slot) -> Option<ScheduledEvent<T>> {
        if self.peek_time()? <= t {
            self.pop()
        } else {
            None
        }
    }

    /// Drop every pending event, keeping the clock position.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Slot(30), 3);
        q.schedule(Slot(10), 1);
        q.schedule(Slot(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_a_slot() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Slot(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Slot(4), ());
        assert_eq!(q.now(), Slot::ZERO);
        q.pop();
        assert_eq!(q.now(), Slot(4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Slot(10), ());
        q.pop();
        q.schedule(Slot(5), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Slot(5), 'x');
        assert!(q.pop_until(Slot(4)).is_none());
        assert_eq!(q.pop_until(Slot(5)).map(|e| e.payload), Some('x'));
        assert!(q.pop_until(Slot(100)).is_none()); // empty now
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.schedule(Slot(1), ());
        q.schedule(Slot(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Slot(9), ());
        q.schedule(Slot(3), ());
        assert_eq!(q.peek_time(), Some(Slot(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Slot(1), "a");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "a");
        // Scheduling at the current time is allowed (same-slot cascades).
        q.schedule(Slot(1), "b");
        q.schedule(Slot(2), "c");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
    }
}
