//! Monotone discrete-event queues and wake-up scheduling.
//!
//! Protocol engines in this workspace are primarily *slot-stepped* (an
//! LTE device wakes every subframe), but timers — oscillator firing
//! deadlines, merge-handshake timeouts, convergence probes — are
//! naturally expressed as scheduled events. [`EventQueue`] provides a
//! classic calendar min-heap with two guarantees that matter for
//! reproducibility:
//!
//! 1. **Monotonicity** — events cannot be scheduled before the time of
//!    the last popped event (enforced with a debug assertion; simulation
//!    causality bugs fail loudly in tests).
//! 2. **Deterministic tie-breaking** — events scheduled for the same slot
//!    pop in FIFO insertion order, independent of payload or allocation
//!    addresses, so a trial replays identically.
//!
//! The event-driven protocol engines schedule *bare slot numbers* (no
//! payloads — a wake just materializes a slot), where a plain heap is
//! wasteful: in dense cells thousands of deadlines land on the same
//! handful of slots, and every duplicate costs a push, a pop and a
//! stale check. [`SlotWheel`] is the two-tier replacement: a
//! near-horizon bitmap ring that *coalesces* all wake-ups targeting the
//! same slot into one bit, backed by a far-horizon overflow heap, so a
//! slot pops exactly once no matter how many deadlines target it.
//! [`DensityWindow`] is the companion cutover policy for the adaptive
//! engine mode: a sliding-window materialized-slot density estimate
//! with hysteresis, a pure function of already-counted scheduler state.

use core::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::Slot;

/// An event scheduled on an [`EventQueue`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub at: Slot,
    /// Monotone insertion sequence number (FIFO tie-break).
    pub seq: u64,
    /// User payload.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use ffd2d_sim::{EventQueue, Slot};
/// let mut q = EventQueue::new();
/// q.schedule(Slot(5), 'b');
/// q.schedule(Slot(2), 'a');
/// q.schedule(Slot(5), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']); // FIFO within slot 5
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
    now: Slot,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue positioned at [`Slot::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Slot::ZERO,
        }
    }

    /// An empty queue with pre-reserved capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: Slot::ZERO,
        }
    }

    /// The virtual time of the most recently popped event (the current
    /// simulation time from the queue's point of view).
    #[inline]
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at slot `at`.
    ///
    /// # Panics (debug builds)
    ///
    /// Panics if `at` is earlier than the time of the last popped event —
    /// scheduling into the past is always a protocol bug.
    pub fn schedule(&mut self, at: Slot, payload: T) {
        debug_assert!(
            at >= self.now,
            "event scheduled into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Slot> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event and advance the queue's clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Pop the earliest event only if it fires at or before `t`.
    pub fn pop_until(&mut self, t: Slot) -> Option<ScheduledEvent<T>> {
        if self.peek_time()? <= t {
            self.pop()
        } else {
            None
        }
    }

    /// Drop every pending event, keeping the clock position.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A two-tier wake-up scheduler for bare slot numbers.
///
/// Tier one is a power-of-two ring of slot bits covering the *near
/// horizon* `[next, next + capacity)`: scheduling a slot sets its bit,
/// so any number of wake-ups targeting the same slot **coalesce** into
/// a single entry and the slot pops exactly once. Tier two is an
/// ordered set holding the *far horizon* (slots at or beyond
/// `next + capacity`); entries migrate into the ring as the clock
/// advances, deduplicated on insert. Pops deliver strictly increasing
/// distinct slots — exactly the order a deduplicating min-heap would —
/// so swapping a calendar heap for a wheel cannot change which slots an
/// engine materializes (`tests/slot_wheel.rs` locks the equivalence by
/// property).
///
/// Scheduling a slot behind the clock (`s < next`) is *stale on
/// arrival*: the entry is dropped and tallied, mirroring the stale-pop
/// accounting of the heap it replaces. [`SlotWheel::take_stats`] hands
/// the coalesced/stale tallies to the caller (engines flush them into
/// telemetry counters).
///
/// ```
/// use ffd2d_sim::SlotWheel;
/// let mut w = SlotWheel::new();
/// w.push(7);
/// w.push(3);
/// w.push(7); // coalesces: slot 7 will pop once
/// w.push(100_000); // far horizon → overflow tier
/// let popped: Vec<u64> = std::iter::from_fn(|| w.pop()).collect();
/// assert_eq!(popped, vec![3, 7, 100_000]);
/// assert_eq!(w.take_stats(), (1, 0)); // one coalesced, none stale
/// ```
#[derive(Debug, Clone)]
pub struct SlotWheel {
    /// Ring bitmap; bit `s & (capacity - 1)` covers slot `s` while
    /// `next <= s < next + capacity`.
    words: Vec<u64>,
    /// Clock: every slot `< next` has been popped (or was never
    /// scheduled); pushes below it are stale.
    next: u64,
    /// Number of set bits in the ring.
    in_wheel: usize,
    /// Far-horizon tier: slots `>= next + capacity`, min-ordered and
    /// deduplicated on insert (duplicate far pushes coalesce exactly
    /// like duplicate ring pushes).
    overflow: BTreeSet<u64>,
    /// Pushes (or migrations) that landed on an already-set bit.
    coalesced: u64,
    /// Pushes that arrived behind the clock and were dropped.
    stale: u64,
}

impl SlotWheel {
    /// Default near-horizon span, in slots. Covers several oscillator
    /// periods of the Table-I configuration, so in practice only
    /// merge-round deadlines and far churn slots overflow.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An empty wheel with the default near-horizon span.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty wheel whose ring spans `capacity` slots (rounded up to
    /// a power of two, floored at 64).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two();
        SlotWheel {
            words: vec![0u64; cap / 64],
            next: 0,
            in_wheel: 0,
            overflow: BTreeSet::new(),
            coalesced: 0,
            stale: 0,
        }
    }

    /// Ring span in slots.
    #[inline]
    fn capacity(&self) -> u64 {
        (self.words.len() * 64) as u64
    }

    /// The wheel's clock: the earliest slot a future pop can deliver.
    #[inline]
    pub fn next_slot(&self) -> u64 {
        self.next
    }

    /// Distinct slots currently materialized in the near-horizon ring
    /// (the `engine.wheel_occupancy` gauge).
    #[inline]
    pub fn in_window(&self) -> usize {
        self.in_wheel
    }

    /// Distinct pending slots across both tiers.
    #[inline]
    pub fn pending(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    /// True when nothing is scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.in_wheel == 0 && self.overflow.is_empty()
    }

    /// Take (and reset) the `(coalesced, stale)` tallies accumulated
    /// since the last call.
    #[inline]
    pub fn take_stats(&mut self) -> (u64, u64) {
        (
            core::mem::take(&mut self.coalesced),
            core::mem::take(&mut self.stale),
        )
    }

    /// Set the ring bit for in-window slot `s`, tallying a coalesce if
    /// it was already set.
    #[inline]
    fn set_bit(&mut self, s: u64) {
        let bit = (s & (self.capacity() - 1)) as usize;
        let (w, b) = (bit / 64, bit % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.coalesced += 1;
        } else {
            self.words[w] |= mask;
            self.in_wheel += 1;
        }
    }

    /// Schedule slot `s`. Coalesces with any existing wake on the same
    /// slot; drops (and tallies) slots behind the clock.
    #[inline]
    pub fn push(&mut self, s: u64) {
        if s < self.next {
            self.stale += 1;
        } else if s < self.next + self.capacity() {
            self.set_bit(s);
        } else if !self.overflow.insert(s) {
            self.coalesced += 1;
        }
    }

    /// Migrate every overflow entry that now fits the ring window.
    fn drain_overflow(&mut self) {
        let horizon = self.next + self.capacity();
        while let Some(&s) = self.overflow.first() {
            if s >= horizon {
                break;
            }
            self.overflow.pop_first();
            debug_assert!(s >= self.next, "overflow entry behind the clock");
            self.set_bit(s);
        }
    }

    /// Pop the earliest scheduled slot, advancing the clock past it.
    /// Distinct slots come out in strictly increasing order.
    pub fn pop(&mut self) -> Option<u64> {
        if self.in_wheel == 0 {
            // Ring empty: jump the clock to the far tier's minimum and
            // migrate everything the new window reaches.
            let &min = self.overflow.first()?;
            self.next = min;
            self.drain_overflow();
            debug_assert!(self.in_wheel > 0);
        }
        let cap = self.capacity();
        let mask = cap - 1;
        let nwords = self.words.len();
        let start_bit = (self.next & mask) as usize;
        let start_word = start_bit / 64;
        let start_off = (start_bit % 64) as u32;
        // Ring scan from the clock position; `in_wheel > 0` guarantees
        // a set bit within one full rotation (`k == nwords` revisits
        // the first word's low bits after the wrap).
        for k in 0..=nwords {
            let wi = (start_word + k) % nwords;
            let mut w = self.words[wi];
            if k == 0 {
                w &= !0u64 << start_off;
            } else if k == nwords {
                w &= !(!0u64 << start_off);
            }
            if w != 0 {
                let b = w.trailing_zeros();
                let bitpos = (wi * 64) as u64 + u64::from(b);
                let delta = bitpos.wrapping_sub(start_bit as u64) & mask;
                let s = self.next + delta;
                self.words[wi] &= !(1u64 << b);
                self.in_wheel -= 1;
                self.next = s + 1;
                self.drain_overflow();
                return Some(s);
            }
        }
        unreachable!("in_wheel > 0 but no bit set");
    }

    /// Consume the wake (if any) at exactly slot `s` — which must be
    /// the wheel's clock position — and advance the clock by one.
    /// Returns whether a wake was pending there.
    ///
    /// This is the stepped-execution entry point: an adaptive engine
    /// materializing every slot still keeps the wheel in lockstep, so
    /// the pending set stays exact across cutovers and the claim result
    /// doubles as the "would the event engine have woken here?" density
    /// signal.
    pub fn claim(&mut self, s: u64) -> bool {
        debug_assert_eq!(s, self.next, "claim must consume slots in order");
        let bit = (s & (self.capacity() - 1)) as usize;
        let (w, b) = (bit / 64, bit % 64);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        if had {
            self.words[w] &= !mask;
            self.in_wheel -= 1;
        }
        self.next = s + 1;
        self.drain_overflow();
        had
    }
}

impl Default for SlotWheel {
    fn default() -> Self {
        Self::new()
    }
}

/// Sliding-window slot-density tracker with hysteresis — the cutover
/// policy of the adaptive engine mode.
///
/// Each simulated slot that an engine processes reports whether it was
/// *busy* (a scheduled wake landed on it, or an oscillator fired in
/// it). The tracker buckets reports into fixed windows of `window`
/// slots aligned to absolute slot numbers and, at each window
/// boundary, re-decides the execution strategy:
///
/// * event-driven, and the ended window was ≥ 1/2 busy → switch to
///   stepped execution (the calendar queue is pure bookkeeping);
/// * stepped, and the ended window was ≤ 1/8 busy → switch back to
///   event-driven (skip-ahead pays again).
///
/// The wide gap between the two thresholds is the hysteresis: any
/// constant density lands in at most one of the trigger regions, so a
/// steady workload can cause at most one transition ever (unit-locked
/// below). Decisions are a pure function of the busy tallies — never
/// of wall clock or RNG — so adaptive runs stay bit-reproducible.
#[derive(Debug, Clone)]
pub struct DensityWindow {
    window: u64,
    start: u64,
    busy: u64,
    stepped: bool,
    transitions: u64,
}

impl DensityWindow {
    /// Default window span, in slots.
    pub const DEFAULT_WINDOW: u64 = 256;

    /// A tracker starting in event-driven mode at slot 0.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "density window must be positive");
        DensityWindow {
            window,
            start: 0,
            busy: 0,
            stepped: false,
            transitions: 0,
        }
    }

    /// Current strategy: `true` ⇒ stepped execution.
    #[inline]
    pub fn exec_stepped(&self) -> bool {
        self.stepped
    }

    /// Number of strategy switches so far.
    #[inline]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Report one processed slot (slots must be non-decreasing; the
    /// event engine skips ahead, the stepped engine reports each slot
    /// once). Returns the strategy to use *from the next slot on*.
    pub fn observe(&mut self, slot: u64, busy: bool) -> bool {
        if slot >= self.start + self.window {
            // The ended window is complete; slots the event engine
            // skipped over were idle, so the tally is exact for both
            // strategies. (A jump across several windows can only
            // happen in event mode — stepped visits every slot — and
            // the skipped windows were empty, which keeps event mode.)
            let was = self.stepped;
            if self.stepped {
                if self.busy * 8 <= self.window {
                    self.stepped = false;
                }
            } else if self.busy * 2 >= self.window {
                self.stepped = true;
            }
            if was != self.stepped {
                self.transitions += 1;
            }
            self.start = slot - slot % self.window;
            self.busy = 0;
        }
        self.busy += u64::from(busy);
        self.stepped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Slot(30), 3);
        q.schedule(Slot(10), 1);
        q.schedule(Slot(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_a_slot() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Slot(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Slot(4), ());
        assert_eq!(q.now(), Slot::ZERO);
        q.pop();
        assert_eq!(q.now(), Slot(4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Slot(10), ());
        q.pop();
        q.schedule(Slot(5), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Slot(5), 'x');
        assert!(q.pop_until(Slot(4)).is_none());
        assert_eq!(q.pop_until(Slot(5)).map(|e| e.payload), Some('x'));
        assert!(q.pop_until(Slot(100)).is_none()); // empty now
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.schedule(Slot(1), ());
        q.schedule(Slot(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Slot(9), ());
        q.schedule(Slot(3), ());
        assert_eq!(q.peek_time(), Some(Slot(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Slot(1), "a");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "a");
        // Scheduling at the current time is allowed (same-slot cascades).
        q.schedule(Slot(1), "b");
        q.schedule(Slot(2), "c");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
    }

    #[test]
    fn wheel_coalesces_same_slot_wakes() {
        let mut w = SlotWheel::new();
        for _ in 0..1000 {
            w.push(42);
        }
        assert_eq!(w.in_window(), 1);
        assert_eq!(w.pop(), Some(42));
        assert_eq!(w.pop(), None);
        assert_eq!(w.take_stats(), (999, 0));
    }

    #[test]
    fn wheel_pops_distinct_slots_in_order() {
        let mut w = SlotWheel::with_capacity(64);
        // Mix of in-window, duplicate, far-overflow and interleaved
        // pushes; expect the sorted distinct sequence.
        for &s in &[5u64, 900, 5, 63, 0, 64, 900, 10_000, 65] {
            w.push(s);
        }
        assert_eq!(w.pop(), Some(0));
        assert_eq!(w.pop(), Some(5));
        w.push(7); // push between pops, still in window
        assert_eq!(w.pop(), Some(7));
        assert_eq!(w.pop(), Some(63));
        assert_eq!(w.pop(), Some(64));
        assert_eq!(w.pop(), Some(65));
        assert_eq!(w.pop(), Some(900));
        assert_eq!(w.pop(), Some(10_000));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn wheel_counts_stale_pushes() {
        let mut w = SlotWheel::new();
        w.push(10);
        assert_eq!(w.pop(), Some(10));
        w.push(3); // behind the clock: dropped, tallied
        assert_eq!(w.pop(), None);
        assert_eq!(w.take_stats(), (0, 1));
    }

    #[test]
    fn wheel_claim_walks_every_slot() {
        let mut w = SlotWheel::with_capacity(64);
        w.push(2);
        w.push(2);
        w.push(70); // overflow for this tiny ring
        let claims: Vec<bool> = (0..80).map(|s| w.claim(s)).collect();
        let hits: Vec<usize> = claims
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(hits, vec![2, 70]);
        assert_eq!(w.take_stats(), (1, 0));
        assert_eq!(w.next_slot(), 80);
    }

    #[test]
    fn wheel_mixes_claim_and_pop_across_cutovers() {
        let mut w = SlotWheel::with_capacity(64);
        for &s in &[1u64, 4, 4, 200] {
            w.push(s);
        }
        assert_eq!(w.pop(), Some(1)); // event-style
        assert!(!w.claim(2)); // stepped-style from the clock position
        assert!(!w.claim(3));
        assert!(w.claim(4));
        assert_eq!(w.pop(), Some(200)); // back to event-style: jumps
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_occupancy_tracks_both_tiers() {
        let mut w = SlotWheel::with_capacity(64);
        w.push(1);
        w.push(2);
        w.push(1000);
        assert_eq!(w.in_window(), 2);
        assert_eq!(w.pending(), 3);
        w.pop();
        assert_eq!(w.pending(), 2);
    }

    #[test]
    fn density_hysteresis_never_oscillates_on_constant_density() {
        // Any constant per-window busy count causes at most one
        // transition over an arbitrarily long run — the hysteresis gap
        // means no single density sits in both trigger regions.
        let window = DensityWindow::DEFAULT_WINDOW;
        for busy_per_window in 0..=window {
            let mut d = DensityWindow::new(window);
            for s in 0..window * 50 {
                let busy = s % window < busy_per_window;
                d.observe(s, busy);
            }
            assert!(
                d.transitions() <= 1,
                "busy={busy_per_window}/{window} oscillated: {} transitions",
                d.transitions()
            );
        }
    }

    #[test]
    fn density_cuts_over_to_stepped_and_back() {
        let mut d = DensityWindow::new(64);
        assert!(!d.exec_stepped());
        // A fully busy window flips to stepped at the boundary.
        for s in 0..64 {
            assert!(!d.observe(s, true), "flip before the window closed");
        }
        assert!(d.observe(64, true), "dense window did not flip");
        // Idle windows flip back to event-driven.
        for s in 65..128 {
            d.observe(s, false);
        }
        assert!(!d.observe(128, false), "idle window did not flip back");
        assert_eq!(d.transitions(), 2);
    }

    #[test]
    fn density_event_mode_survives_window_jumps() {
        let mut d = DensityWindow::new(64);
        // Sparse event-driven run: isolated wakes hundreds of windows
        // apart must never trigger stepped execution.
        let mut s = 0;
        for _ in 0..100 {
            assert!(!d.observe(s, true));
            s += 10_000;
        }
        assert_eq!(d.transitions(), 0);
    }
}
