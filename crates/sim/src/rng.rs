//! Deterministic, splittable random number generation.
//!
//! Monte-Carlo experiments in this workspace must be exactly reproducible
//! from a single master seed, across platforms and across thread counts.
//! That rules out `thread_rng` and any scheme where RNG state is shared
//! between trials running on different workers. Instead:
//!
//! * [`SplitMix64`] — a tiny, high-quality 64-bit mixer used purely for
//!   *seed derivation* (it is the standard splitter recommended by the
//!   xoshiro authors).
//! * [`Xoshiro256StarStar`] — the workhorse generator, implemented here
//!   from the public-domain reference so the workspace does not depend on
//!   any non-sanctioned crate. It implements [`rand::RngCore`] and
//!   [`rand::SeedableRng`], so the whole `rand` distribution toolbox
//!   works on top of it.
//! * [`StreamRng`] — a named-stream convenience wrapper: every consumer
//!   (deployment, shadowing, fading, each device) gets its own
//!   decorrelated stream derived from `(master_seed, trial, stream_id)`.
//!
//! ## Stream hygiene
//!
//! Two streams derived from different `(trial, stream)` pairs are
//! statistically independent because the derivation feeds the pair
//! through two rounds of SplitMix64, which is a bijective avalanche mix.
//! This is the same discipline used by JAX's `PRNGKey` splitting and by
//! rayon-style deterministic parallel RNG schemes: the *structure* of the
//! computation (not execution order) determines every random draw.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 seed-derivation generator.
///
/// Passes BigCrush when used as a generator, but in this workspace it is
/// only used to expand and decorrelate seeds for [`Xoshiro256StarStar`].
///
/// ```
/// use ffd2d_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Mix an arbitrary 64-bit value through one SplitMix64 round without
    /// touching generator state. Used for stateless key derivation.
    #[inline]
    pub fn mix(value: u64) -> u64 {
        let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stateless uniform draw in `[0, 1)` keyed by `(key, domain, salt)`.
    ///
    /// Each argument is avalanche-mixed independently before the final
    /// combining round, so structured inputs (slot numbers, packed device
    /// pairs) cannot correlate across draws. The top 53 bits of the mixed
    /// word become the mantissa, giving every representable multiple of
    /// 2⁻⁵³ in `[0, 1)`.
    ///
    /// This is the workspace's canonical *order-free* draw: subsystems
    /// that must produce the same verdict for the same logical event
    /// regardless of evaluation order (e.g. fault injection deciding a
    /// frame's fate) use this instead of consuming from a stream.
    #[inline]
    pub fn keyed_unit(key: u64, domain: u64, salt: u64) -> f64 {
        let z = Self::mix(key ^ Self::mix(domain) ^ Self::mix(salt));
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Derive the root seed for sweep cell `(param_index, trial)` from a
/// master seed.
///
/// Two mixing rounds with distinct odd multipliers per key, mirroring the
/// [`StreamRng`] derivation discipline: the resulting seed depends only on
/// the cell's *identity*, never on the order cells are executed in, so a
/// sweep is bit-identical across worker counts and an individual cell can
/// be replayed standalone.
#[inline]
pub fn sweep_cell_seed(master_seed: u64, param_index: u64, trial: u64) -> u64 {
    let k0 = SplitMix64::mix(master_seed ^ param_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    SplitMix64::mix(k0 ^ trial.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
}

/// The xoshiro256** generator (Blackman & Vigna, public domain reference
/// implementation ported to safe Rust).
///
/// State is 256 bits; period is 2^256 − 1; output passes BigCrush. It is
/// the recommended general-purpose generator of its family and is not
/// cryptographically secure (which is fine for simulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Construct directly from four state words. At least one word must
    /// be non-zero; an all-zero state is escaped to a fixed non-zero one.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the transition
            // function; remap it deterministically.
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Xoshiro256StarStar { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        Xoshiro256StarStar::from_state(s)
    }
}

/// Well-known stream identifiers used across the workspace.
///
/// Keeping them in one place prevents two subsystems from accidentally
/// consuming the same stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum StreamId {
    /// Device placement.
    Deployment = 1,
    /// Log-normal shadowing (one draw per link).
    Shadowing = 2,
    /// Fast fading (one draw per link per coherence block).
    Fading = 3,
    /// Initial oscillator phases.
    Phases = 4,
    /// Protocol-internal randomness (backoff, random ordering).
    Protocol = 5,
    /// Service-interest assignment.
    Services = 6,
    /// Free for experiment-specific use.
    Experiment = 7,
    /// Fault injection (frame drop/duplication keys, churn jitter).
    Chaos = 8,
    /// Per-device merge-phase beacon offsets (ST protocol).
    ///
    /// Historically derived with the raw stream id `0xBEAC`; the
    /// discriminant is pinned to that value so the named stream is
    /// bit-identical to every recorded run.
    MergeBeacons = 0xBEAC,
}

/// A deterministic per-`(seed, trial, stream)` RNG.
///
/// `StreamRng` is a thin newtype over [`Xoshiro256StarStar`] whose
/// constructor performs the decorrelating key derivation. The type
/// implements [`RngCore`] so it can be passed anywhere `rand` expects a
/// generator.
///
/// ```
/// use ffd2d_sim::rng::{StreamId, StreamRng};
/// use rand::Rng;
/// let mut dep = StreamRng::new(42, 0, StreamId::Deployment);
/// let mut fad = StreamRng::new(42, 0, StreamId::Fading);
/// // Distinct streams from the same (seed, trial):
/// assert_ne!(dep.gen::<u64>(), fad.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct StreamRng {
    inner: Xoshiro256StarStar,
}

impl StreamRng {
    /// Derive the stream for `(master_seed, trial, stream)`.
    pub fn new(master_seed: u64, trial: u64, stream: StreamId) -> Self {
        Self::with_raw_stream(master_seed, trial, stream as u64)
    }

    /// Derive a stream with an arbitrary numeric stream id. Prefer
    /// [`StreamRng::new`] with a [`StreamId`] when one fits.
    pub fn with_raw_stream(master_seed: u64, trial: u64, stream: u64) -> Self {
        // Two mixing rounds over a combination of all three keys, with
        // distinct odd constants separating each key's contribution.
        let k0 = SplitMix64::mix(master_seed ^ 0xA076_1D64_78BD_642F);
        let k1 = SplitMix64::mix(k0 ^ trial.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let k2 = SplitMix64::mix(k1 ^ stream.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        let mut sm = SplitMix64::new(k2);
        let state = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        StreamRng {
            inner: Xoshiro256StarStar::from_state(state),
        }
    }

    /// Derive the conventional per-trial "root" stream used when a
    /// consumer only needs one stream per trial.
    pub fn for_trial(master_seed: u64, trial: u64) -> Self {
        Self::new(master_seed, trial, StreamId::Experiment)
    }

    /// Derive a per-device sub-stream from this stream's identity.
    ///
    /// Device sub-streams are used for per-device protocol randomness
    /// (initial phase jitter, backoff) without letting device count
    /// perturb the draws of other subsystems.
    pub fn device_stream(master_seed: u64, trial: u64, device: u32) -> Self {
        Self::with_raw_stream(master_seed, trial, 0x1000_0000 + device as u64)
    }
}

impl RngCore for StreamRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_eq!(first, 6457827717110365317);
        assert_eq!(second, 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_zero_state_is_escaped() {
        let mut z = Xoshiro256StarStar::from_state([0; 4]);
        // Must not be stuck emitting a constant.
        let x = z.next_u64();
        let y = z.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn xoshiro_fill_bytes_matches_words() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1);
    }

    #[test]
    fn xoshiro_fill_bytes_partial_tail() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut buf = [0u8; 11];
        a.fill_bytes(&mut buf); // must not panic, must fill all 11 bytes
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        let w0 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for trial in 0..10u64 {
            for stream in [StreamId::Deployment, StreamId::Fading, StreamId::Phases] {
                let mut rng = StreamRng::new(42, trial, stream);
                assert!(seen.insert(rng.next_u64()), "stream collision");
            }
        }
    }

    #[test]
    fn same_key_same_stream() {
        let mut a = StreamRng::new(1, 2, StreamId::Protocol);
        let mut b = StreamRng::new(1, 2, StreamId::Protocol);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn device_streams_differ() {
        let mut d0 = StreamRng::device_stream(5, 0, 0);
        let mut d1 = StreamRng::device_stream(5, 0, 1);
        assert_ne!(d0.next_u64(), d1.next_u64());
    }

    #[test]
    fn gen_range_works_through_rand() {
        let mut rng = StreamRng::for_trial(3, 3);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        // 10k draws into 10 buckets should be within ±30% of uniform.
        let mut rng = StreamRng::for_trial(11, 0);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            buckets[(v * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }
}
