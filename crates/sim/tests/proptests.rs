//! Property-based tests for the simulation kernel.

use proptest::prelude::*;

use ffd2d_sim::deployment::{Deployment, Meters, Position};
use ffd2d_sim::event::EventQueue;
use ffd2d_sim::rng::{SplitMix64, StreamRng, Xoshiro256StarStar};
use ffd2d_sim::time::{Slot, SlotDuration};
use rand::{RngCore, SeedableRng};

proptest! {
    /// Instant/duration arithmetic is consistent: (a + d) − a == d.
    #[test]
    fn slot_arithmetic_round_trips(a in 0u64..1 << 40, d in 0u64..1 << 20) {
        let t = Slot(a) + SlotDuration(d);
        prop_assert_eq!(t - Slot(a), SlotDuration(d));
        prop_assert_eq!(t - SlotDuration(d), Slot(a));
        prop_assert_eq!(t.saturating_since(Slot(a)), SlotDuration(d));
    }

    /// The event queue pops in (time, insertion) order for arbitrary
    /// schedules.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Slot(t), i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.at.0, e.payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated within a slot");
            }
        }
    }

    /// SplitMix64's stateless mix is a bijection-quality avalanche:
    /// distinct inputs give distinct outputs (no collisions over any
    /// sampled set — it is in fact bijective).
    #[test]
    fn splitmix_mix_is_injective_on_samples(xs in proptest::collection::hash_set(any::<u64>(), 2..100)) {
        let mut outs: Vec<u64> = xs.iter().map(|&x| SplitMix64::mix(x)).collect();
        outs.sort_unstable();
        outs.dedup();
        prop_assert_eq!(outs.len(), xs.len());
    }

    /// Stream derivation: distinct (seed, trial, stream) triples give
    /// distinct first outputs.
    #[test]
    fn stream_first_draws_distinct(
        seed in any::<u64>(),
        t1 in 0u64..1000, t2 in 0u64..1000,
        s1 in 0u64..64, s2 in 0u64..64,
    ) {
        prop_assume!((t1, s1) != (t2, s2));
        let a = StreamRng::with_raw_stream(seed, t1, s1).next_u64();
        let b = StreamRng::with_raw_stream(seed, t2, s2).next_u64();
        prop_assert_ne!(a, b);
    }

    /// Xoshiro fill_bytes agrees with word output for arbitrary buffer
    /// lengths.
    #[test]
    fn fill_bytes_prefix_matches_words(seed in any::<u64>(), len in 0usize..64) {
        let mut a = Xoshiro256StarStar::seed_from_u64(seed);
        let mut buf = vec![0u8; len];
        a.fill_bytes(&mut buf);
        let mut b = Xoshiro256StarStar::seed_from_u64(seed);
        let mut expect = Vec::with_capacity(len + 8);
        while expect.len() < len {
            expect.extend_from_slice(&b.next_u64().to_le_bytes());
        }
        prop_assert_eq!(&buf[..], &expect[..len]);
    }

    /// Uniform deployments always stay inside the arena, and pairwise
    /// distances obey the triangle inequality through a third point.
    #[test]
    fn deployment_geometry(seed in any::<u64>(), n in 3usize..40) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let d = Deployment::uniform(n, Meters(100.0), Meters(50.0), &mut rng);
        for p in d.positions() {
            prop_assert!((0.0..100.0).contains(&p.x));
            prop_assert!((0.0..50.0).contains(&p.y));
        }
        let (a, b, c) = (0u32, 1u32, 2u32);
        let ab = d.distance(a, b).0;
        let bc = d.distance(b, c).0;
        let ac = d.distance(a, c).0;
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    /// Position distance is symmetric and zero iff identical.
    #[test]
    fn distance_metric_axioms(x1 in -1e3f64..1e3, y1 in -1e3f64..1e3, x2 in -1e3f64..1e3, y2 in -1e3f64..1e3) {
        let p = Position::new(x1, y1);
        let q = Position::new(x2, y2);
        prop_assert!((p.distance(&q).0 - q.distance(&p).0).abs() < 1e-12);
        prop_assert!(p.distance(&q).0 >= 0.0);
        prop_assert!((p.distance(&p).0).abs() < 1e-12);
        prop_assert!((p.distance(&q).0.powi(2) - p.distance_sq(&q)).abs() < 1e-6);
    }
}
