//! Property-based tests for the oscillator substrate.

use proptest::prelude::*;

use ffd2d_osc::oscillator::PhaseOscillator;
use ffd2d_osc::prc::Prc;
use ffd2d_osc::sync::{firing_groups, is_synchronized, kuramoto_order, phase_spread};

proptest! {
    /// Eq. (5): for any a > 0, ε > 0 the PRC satisfies the
    /// Mirollo–Strogatz convergence conditions and only advances phase.
    #[test]
    fn prc_always_converging_and_advancing(a in 0.01f64..10.0, eps in 0.001f64..2.0, theta in 0.0f64..1.0) {
        let prc = Prc::from_dissipation(a, eps);
        prop_assert!(prc.converges());
        prop_assert!(prc.alpha > 1.0);
        prop_assert!(prc.beta > 0.0);
        let out = prc.apply(theta);
        prop_assert!(out >= theta - 1e-15, "PRC moved phase backwards");
        prop_assert!(out <= 1.0);
        // Monotonicity in θ.
        let out2 = prc.apply((theta + 0.01).min(1.0));
        prop_assert!(out2 >= out - 1e-15);
    }

    /// An uncoupled oscillator fires with exactly its natural period,
    /// whatever the initial phase.
    #[test]
    fn natural_period_is_exact(phase in 0.0f64..0.999, period in 2u32..500) {
        let mut osc = PhaseOscillator::new(phase, period, 1);
        let mut fires = Vec::new();
        for t in 0..(period as u64 * 5) {
            if osc.tick() {
                fires.push(t);
            }
        }
        prop_assert!(fires.len() >= 4);
        for w in fires.windows(2) {
            prop_assert_eq!(w[1] - w[0], period as u64);
        }
    }

    /// Delay compensation: a pulse heard with age k has the same effect
    /// as the identical pulse heard instantly k slots earlier, for any
    /// phase where neither crosses the threshold.
    #[test]
    fn delayed_equals_shifted_instant(theta in 0.1f64..0.6, age in 0u32..8) {
        let prc = Prc::standard();
        let period = 100;
        let age_phase = age as f64 / period as f64;
        prop_assume!(theta + age_phase < 0.9);
        let mut now = PhaseOscillator::new(theta + age_phase, period, 0);
        now.on_pulse_delayed(&prc, age);
        let mut then = PhaseOscillator::new(theta, period, 0);
        then.on_pulse(&prc);
        prop_assert!((now.phase() - (then.phase() + age_phase)).abs() < 1e-12);
    }

    /// Kuramoto order and spread are consistent: r = 1 ⟺ spread = 0
    /// (within float tolerance); both are shift-invariant on the circle.
    #[test]
    fn sync_metrics_consistency(phases in proptest::collection::vec(0.0f64..1.0, 1..30), shift in 0.0f64..1.0) {
        let spread = phase_spread(&phases);
        let r = kuramoto_order(&phases);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r));
        prop_assert!((0.0..1.0).contains(&spread) || spread == 0.0);
        if spread < 1e-12 {
            prop_assert!(r > 1.0 - 1e-9);
        }
        // Rotation invariance.
        let shifted: Vec<f64> = phases.iter().map(|p| (p + shift).rem_euclid(1.0)).collect();
        prop_assert!((phase_spread(&shifted) - spread).abs() < 1e-9);
        prop_assert!((kuramoto_order(&shifted) - r).abs() < 1e-9);
    }

    /// Group counting: between 1 and n groups; tolerance monotone
    /// (larger tolerance → no more groups).
    #[test]
    fn group_count_bounds(phases in proptest::collection::vec(0.0f64..1.0, 1..25), t1 in 0.0f64..0.2, t2 in 0.2f64..0.45) {
        let g_tight = firing_groups(&phases, t1);
        let g_loose = firing_groups(&phases, t2);
        prop_assert!(g_tight >= 1 && g_tight <= phases.len());
        prop_assert!(g_loose <= g_tight);
        // is_synchronized agrees with spread.
        prop_assert_eq!(is_synchronized(&phases, t2), phase_spread(&phases) <= t2);
    }

    /// Event-engine contract: `next_fire_slot` names exactly the slot
    /// where repeated ticking fires, for arbitrary starting state —
    /// including phases a hair under the `1 - 1e-12` threshold and
    /// refractory windows longer than the remaining ramp (the
    /// countdown must not delay the fire).
    #[test]
    fn next_fire_slot_matches_ticking(
        phase in 0.0f64..0.999,
        period in 2u32..400,
        refractory_frac in 0.0f64..1.0,
        now in 0u64..10_000,
    ) {
        // Keep the refractory legal (shorter than the period).
        let refractory = (refractory_frac * (period - 1) as f64) as u32;
        let osc = PhaseOscillator::new(phase, period, refractory);
        let predicted = osc.next_fire_slot(now);
        prop_assert!(predicted > now, "a fire must be strictly in the future");
        let mut probe = osc;
        let mut slot = now;
        loop {
            slot += 1;
            if probe.tick() {
                break;
            }
            prop_assert!(slot <= now + period as u64 + 1, "never fired");
        }
        prop_assert_eq!(predicted, slot);
    }

    /// `advance_by(k)` is indistinguishable from `k` single ticks for
    /// arbitrary `(phase, period, refractory)` — same fire count, same
    /// phase bits, same refractory state — even when the window
    /// straddles several fires and the post-fire refractory reset.
    #[test]
    fn advance_by_equals_repeated_ticks(
        phase in 0.0f64..0.999,
        period in 2u32..200,
        refractory_frac in 0.0f64..1.0,
        k in 0u64..1_000,
    ) {
        // Keep the refractory legal (shorter than the period).
        let refractory = (refractory_frac * (period - 1) as f64) as u32;
        let mut fast = PhaseOscillator::new(phase, period, refractory);
        let mut slow = fast;
        let fast_fires = fast.advance_by(k);
        let mut slow_fires = 0u32;
        for _ in 0..k {
            if slow.tick() {
                slow_fires += 1;
            }
        }
        prop_assert_eq!(fast_fires, slow_fires);
        prop_assert_eq!(fast, slow, "state diverged after {} ticks", k);
        // And the two futures stay aligned past the window.
        prop_assert_eq!(fast.ticks_to_next_fire(), slow.ticks_to_next_fire());
    }

    /// Threshold-epsilon edge: starting exactly on `(T-1)/T`, one tick
    /// lands on the `1 - 1e-12` threshold and must fire — prediction,
    /// fast-forward, and literal ticking all agree on it.
    #[test]
    fn epsilon_threshold_fire_is_predicted(period in 2u32..500, refractory in 0u32..1) {
        let start = (period - 1) as f64 / period as f64;
        let osc = PhaseOscillator::new(start, period, refractory);
        prop_assert_eq!(osc.ticks_to_next_fire(), 1, "one tick from the brink");
        prop_assert_eq!(osc.next_fire_slot(41), 42);
        let mut fast = osc;
        prop_assert_eq!(fast.advance_by(1), 1);
        let mut slow = osc;
        prop_assert!(slow.tick());
        prop_assert_eq!(fast, slow);
    }
}
