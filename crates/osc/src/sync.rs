//! Synchrony metrics.
//!
//! Convergence detection in the experiments needs a quantitative notion
//! of "all devices are synchronized". Three complementary metrics:
//!
//! * [`kuramoto_order`] — the magnitude of the circular mean
//!   `r = |1/N · Σ e^{2πiθ_k}|`; `r = 1` iff all phases coincide.
//! * [`phase_spread`] — the smallest arc of the unit circle containing
//!   every phase; robust near the wrap-around point where naive
//!   max−min fails.
//! * [`firing_groups`] — the number of distinct clusters of phases under
//!   a tolerance; the protocols declare convergence when one group
//!   remains (every device fires in the same slot).

/// Kuramoto order parameter `r ∈ [0, 1]` of phases in `[0, 1)` turns.
pub fn kuramoto_order(phases: &[f64]) -> f64 {
    if phases.is_empty() {
        return 1.0;
    }
    let (mut re, mut im) = (0.0f64, 0.0f64);
    for &p in phases {
        let ang = 2.0 * core::f64::consts::PI * p;
        re += ang.cos();
        im += ang.sin();
    }
    let n = phases.len() as f64;
    (re * re + im * im).sqrt() / n
}

/// Length (in turns, `[0, 1)`) of the smallest arc containing all
/// phases. 0 when all phases coincide.
pub fn phase_spread(phases: &[f64]) -> f64 {
    if phases.len() < 2 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = phases.iter().map(|p| p.rem_euclid(1.0)).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    // The smallest covering arc is 1 − (largest gap between consecutive
    // phases on the circle).
    let mut max_gap = 1.0 - sorted.last().unwrap() + sorted[0];
    for w in sorted.windows(2) {
        max_gap = max_gap.max(w[1] - w[0]);
    }
    1.0 - max_gap
}

/// Number of phase clusters under circular tolerance `tol` (in turns).
///
/// Two phases belong to the same cluster when their circular distance is
/// at most `tol`; clusters are chains of such links.
pub fn firing_groups(phases: &[f64], tol: f64) -> usize {
    assert!((0.0..0.5).contains(&tol), "tolerance must be in [0, 0.5)");
    if phases.is_empty() {
        return 0;
    }
    let mut sorted: Vec<f64> = phases.iter().map(|p| p.rem_euclid(1.0)).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n == 1 {
        return 1;
    }
    // Count gaps > tol between circularly-consecutive phases.
    let mut breaks = 0;
    for i in 0..n {
        let next = sorted[(i + 1) % n] + if i + 1 == n { 1.0 } else { 0.0 };
        if next - sorted[i] > tol {
            breaks += 1;
        }
    }
    // With no break the whole circle is one chain.
    breaks.max(1)
}

/// True when every phase lies within `tol` turns of every other —
/// the convergence criterion of the protocol engines.
pub fn is_synchronized(phases: &[f64], tol: f64) -> bool {
    phase_spread(phases) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_parameter_extremes() {
        assert!((kuramoto_order(&[0.3, 0.3, 0.3]) - 1.0).abs() < 1e-12);
        // Evenly spread phases: r = 0.
        assert!(kuramoto_order(&[0.0, 0.25, 0.5, 0.75]) < 1e-12);
        assert_eq!(kuramoto_order(&[]), 1.0);
    }

    #[test]
    fn order_parameter_monotone_in_concentration() {
        let tight = kuramoto_order(&[0.1, 0.12, 0.14]);
        let loose = kuramoto_order(&[0.0, 0.2, 0.4]);
        assert!(tight > loose);
    }

    #[test]
    fn spread_basic() {
        assert_eq!(phase_spread(&[0.5]), 0.0);
        assert!((phase_spread(&[0.1, 0.3]) - 0.2).abs() < 1e-12);
        assert!((phase_spread(&[0.1, 0.2, 0.3]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn spread_handles_wraparound() {
        // 0.95 and 0.05 are only 0.1 apart on the circle.
        assert!((phase_spread(&[0.95, 0.05]) - 0.1).abs() < 1e-12);
        assert!((phase_spread(&[0.9, 0.0, 0.1]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn groups_counting() {
        assert_eq!(firing_groups(&[0.1, 0.11, 0.5, 0.51], 0.05), 2);
        assert_eq!(firing_groups(&[0.1, 0.2, 0.3], 0.15), 1);
        assert_eq!(firing_groups(&[0.0, 0.33, 0.66], 0.01), 3);
        assert_eq!(firing_groups(&[], 0.1), 0);
        assert_eq!(firing_groups(&[0.7], 0.1), 1);
    }

    #[test]
    fn groups_handle_wraparound() {
        // 0.98 and 0.02 cluster together across zero.
        assert_eq!(firing_groups(&[0.98, 0.02, 0.5], 0.1), 2);
    }

    #[test]
    fn is_synchronized_thresholds() {
        assert!(is_synchronized(&[0.5, 0.5001], 0.001));
        assert!(!is_synchronized(&[0.1, 0.4], 0.01));
        assert!(is_synchronized(&[0.99, 0.01], 0.05)); // wraparound
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn absurd_tolerance_rejected() {
        let _ = firing_groups(&[0.0], 0.5);
    }
}
