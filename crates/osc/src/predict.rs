//! Memoized phase trajectories for the event-driven engines.
//!
//! Skipping idle slots still has to reproduce every oscillator's phase
//! bit-for-bit, and repeated floating-point accumulation of `1/T` has
//! no closed form — the only way to know the phase after `k` ticks is
//! to perform the `k` additions. A [`TrajectoryCache`] performs them
//! **once per distinct starting phase** and replays the results in
//! O(1) per fast-forward.
//!
//! The trick that makes this effective is that the protocol engines
//! reset phases to a tiny set of *canonical* values: `0.0` after every
//! fire (eq. (4)), and `age/T` after an absorption or a master–slave
//! alignment (`age` is a small frame-stamped integer). After its first
//! firing, every device ramps along one of a handful of shared
//! trajectories; devices on non-canonical phases (initial random
//! phases, PRC-advanced mesh phases) simply fall back to literal
//! ticking until their next reset.

use std::collections::BTreeMap;

#[cfg(test)]
use crate::oscillator::PhaseOscillator;

/// A position on a cached trajectory: `pos` ticks after the
/// trajectory's starting phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Trajectory index inside the cache.
    pub traj: u32,
    /// Ticks elapsed since the trajectory's starting phase.
    pub pos: u32,
}

impl Cursor {
    /// The cursor one (non-firing) tick later. Lazy: the trajectory is
    /// extended on the next lookup, not here.
    #[inline]
    pub fn next(self) -> Cursor {
        Cursor {
            traj: self.traj,
            pos: self.pos + 1,
        }
    }
}

/// One memoized phase ramp: `phases[k]` is the phase `k` ticks after
/// `phases[0]`, computed by the exact `tick()` arithmetic
/// (`phase += 1/T`, fire at `phase >= 1 - 1e-12`).
#[derive(Debug)]
struct Trajectory {
    phases: Vec<f64>,
    /// Tick index (relative to the start) at which the ramp fires;
    /// `phases` never extends past `fire_at - 1`.
    fire_at: Option<u32>,
}

/// Shared, lazily-grown phase trajectories keyed by canonical starting
/// phases. All oscillators served by one cache must share the same
/// period.
#[derive(Debug)]
pub struct TrajectoryCache {
    period_slots: u32,
    trajs: Vec<Trajectory>,
    /// Starting-phase bits → trajectory index. Trajectory 0 is the
    /// post-fire ramp from phase `0.0`. Ordered map: the reset
    /// vocabulary is tiny, and an order-stable container keeps any
    /// future iteration over registered starts deterministic.
    starts: BTreeMap<u64, u32>,
}

impl TrajectoryCache {
    /// A cache for oscillators of the given period. Trajectory 0 (the
    /// post-fire ramp from `0.0`) is pre-registered.
    pub fn new(period_slots: u32) -> TrajectoryCache {
        assert!(period_slots > 0, "period must be positive");
        let mut cache = TrajectoryCache {
            period_slots,
            trajs: Vec::new(),
            starts: BTreeMap::new(),
        };
        cache.register_start(0.0);
        cache
    }

    fn register_start(&mut self, phase: f64) -> Cursor {
        let id = *self.starts.entry(phase.to_bits()).or_insert_with(|| {
            self.trajs.push(Trajectory {
                phases: vec![phase],
                fire_at: None,
            });
            (self.trajs.len() - 1) as u32
        });
        Cursor { traj: id, pos: 0 }
    }

    /// The cursor for a freshly-fired oscillator (phase reset to 0).
    #[inline]
    pub fn post_fire(&self) -> Cursor {
        Cursor { traj: 0, pos: 0 }
    }

    /// A cursor for an oscillator *starting* at `phase`, if `phase` is
    /// canonical: `0.0`, or exactly `k/T` for a small integer `k` (the
    /// values produced by absorption and `align_to_fire`). Returns
    /// `None` for anything else — those oscillators tick literally
    /// until their next reset, which keeps the cache size bounded by
    /// the protocol's reset vocabulary rather than by arbitrary
    /// PRC-advanced phases.
    pub fn cursor_for_start(&mut self, phase: f64) -> Option<Cursor> {
        if phase == 0.0 {
            return Some(self.post_fire());
        }
        if let Some(&id) = self.starts.get(&phase.to_bits()) {
            return Some(Cursor { traj: id, pos: 0 });
        }
        let k = (phase * self.period_slots as f64).round();
        if k > 0.0 && k < f64::from(u16::MAX) && k / self.period_slots as f64 == phase {
            Some(self.register_start(phase))
        } else {
            None
        }
    }

    /// Extend trajectory `t` until it covers `pos` ticks or fires.
    fn extend_to(&mut self, t: u32, pos: u32) {
        let period = self.period_slots;
        let traj = &mut self.trajs[t as usize];
        if traj.fire_at.is_some() {
            return;
        }
        while traj.phases.len() <= pos as usize {
            // Reproduce `PhaseOscillator::tick` exactly (the refractory
            // countdown is independent of the phase ramp).
            let mut probe = *traj.phases.last().expect("trajectories are non-empty");
            probe += 1.0 / period as f64;
            if probe >= 1.0 - 1e-12 {
                traj.fire_at = Some(traj.phases.len() as u32);
                return;
            }
            traj.phases.push(probe);
        }
    }

    /// The exact phase at `c`, or `None` if the ramp fires at or before
    /// `c.pos` (the caller's cursor is stale).
    pub fn phase_at(&mut self, c: Cursor) -> Option<f64> {
        self.extend_to(c.traj, c.pos);
        self.trajs[c.traj as usize]
            .phases
            .get(c.pos as usize)
            .copied()
    }

    /// Fast-forward `ticks` non-firing ticks from `c`: the exact phase
    /// and the moved cursor. `None` if the ramp fires inside the window
    /// (callers schedule fires as events, so this means a stale cursor).
    pub fn advance(&mut self, c: Cursor, ticks: u64) -> Option<(f64, Cursor)> {
        let target = u64::from(c.pos) + ticks;
        if target > u64::from(u32::MAX) {
            return None;
        }
        let target = target as u32;
        self.extend_to(c.traj, target);
        let traj = &self.trajs[c.traj as usize];
        if let Some(f) = traj.fire_at {
            if target >= f {
                return None;
            }
        }
        Some((
            traj.phases[target as usize],
            Cursor {
                traj: c.traj,
                pos: target,
            },
        ))
    }

    /// Ticks from `c` until the ramp fires (≥ 1 for any valid cursor) —
    /// the memoized form of [`PhaseOscillator::ticks_to_next_fire`].
    pub fn ticks_to_fire(&mut self, c: Cursor) -> u32 {
        loop {
            let traj = &self.trajs[c.traj as usize];
            if let Some(f) = traj.fire_at {
                debug_assert!(f > c.pos, "cursor past its trajectory's fire");
                return f - c.pos;
            }
            let grow = traj.phases.len() as u32 + self.period_slots;
            self.extend_to(c.traj, grow);
        }
    }

    /// Sanity helper for tests: a probe oscillator starting on `phase`.
    #[cfg(test)]
    fn probe(&self, phase: f64) -> PhaseOscillator {
        PhaseOscillator::new(phase, self.period_slots, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_fire_trajectory_matches_literal_ticks() {
        let mut cache = TrajectoryCache::new(100);
        let c = cache.post_fire();
        let mut osc = cache.probe(0.0);
        for k in 1..=99u64 {
            let (phase, nc) = cache.advance(c, k).expect("no fire before the period");
            let mut o = osc;
            assert_eq!(o.advance_by(k), 0);
            assert_eq!(phase, o.phase(), "tick {k}");
            assert_eq!(nc.pos, k as u32);
        }
        assert_eq!(cache.ticks_to_fire(c), osc.ticks_to_next_fire());
        assert_eq!(osc.advance_by(100), 1);
        assert!(cache.advance(c, 100).is_none(), "fire inside the window");
    }

    #[test]
    fn canonical_age_starts_are_cached_and_exact() {
        let mut cache = TrajectoryCache::new(100);
        for age in 1..=16u32 {
            let start = age as f64 / 100.0;
            let c = cache.cursor_for_start(start).expect("age/T is canonical");
            let mut osc = cache.probe(start);
            assert_eq!(cache.ticks_to_fire(c), osc.ticks_to_next_fire());
            let (phase, moved) = cache.advance(c, 10).unwrap();
            assert_eq!(osc.advance_by(10), 0);
            assert_eq!(phase, osc.phase(), "age {age}");
            assert_eq!(cache.ticks_to_fire(moved), osc.ticks_to_next_fire());
        }
    }

    #[test]
    fn arbitrary_phases_are_rejected() {
        let mut cache = TrajectoryCache::new(100);
        assert!(cache.cursor_for_start(0.123456789).is_none());
        assert!(cache.cursor_for_start(0.5000001).is_none());
        // ...but exact multiples are accepted.
        assert!(cache.cursor_for_start(0.5).is_some());
    }

    #[test]
    fn cursor_next_is_one_tick() {
        let mut cache = TrajectoryCache::new(50);
        let c = cache.post_fire();
        let stepped = cache.advance(c, 1).unwrap().1;
        assert_eq!(stepped, c.next());
        let p_next = cache.phase_at(c.next()).unwrap();
        let mut osc = cache.probe(0.0);
        osc.tick();
        assert_eq!(p_next, osc.phase());
    }

    #[test]
    fn stale_cursor_past_fire_is_detected() {
        let mut cache = TrajectoryCache::new(10);
        let c = cache.post_fire();
        assert_eq!(cache.ticks_to_fire(c), 10);
        assert!(cache.phase_at(Cursor { traj: 0, pos: 10 }).is_none());
        assert!(cache.phase_at(Cursor { traj: 0, pos: 9 }).is_some());
    }
}
