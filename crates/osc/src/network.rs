//! Idealised coupled oscillator population.
//!
//! [`CoupledNetwork`] runs a population of slotted firefly oscillators
//! over an arbitrary undirected coupling topology with a perfect medium
//! (every pulse heard instantly by every coupled neighbour). It is the
//! radio-free reference implementation: the protocol engines in
//! `ffd2d-core` / `ffd2d-baseline` must degenerate to this behaviour
//! when the channel is ideal and no messages are lost, and ablation A4
//! compares mesh versus tree coupling on exactly this model.
//!
//! Same-slot pulse **cascades** are resolved transitively: a firing
//! node's pulse may absorb a neighbour, whose own fire may absorb
//! further neighbours, all within one slot — bounded by one fire per
//! node per slot (the refractory window makes re-firing impossible).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::oscillator::PhaseOscillator;
use crate::prc::Prc;
use crate::sync::{is_synchronized, phase_spread};

/// Result of running a [`CoupledNetwork`] to convergence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// Slots until the population first fired as a single group, if it
    /// did within the horizon.
    pub slots_to_sync: Option<u64>,
    /// Total pulses broadcast until convergence (or the horizon).
    pub pulses_sent: u64,
    /// Final phase spread (turns).
    pub final_spread: f64,
}

impl SyncOutcome {
    /// Convergence flag.
    pub fn converged(&self) -> bool {
        self.slots_to_sync.is_some()
    }
}

/// A population of pulse-coupled oscillators on a fixed topology.
#[derive(Debug, Clone)]
pub struct CoupledNetwork {
    oscillators: Vec<PhaseOscillator>,
    /// Undirected coupling lists (who hears whom).
    neighbors: Vec<Vec<u32>>,
    prc: Prc,
    sync_tol: f64,
}

impl CoupledNetwork {
    /// Build a population of `n` oscillators with random initial phases
    /// on the given neighbour lists.
    pub fn new<R: Rng + ?Sized>(
        neighbors: Vec<Vec<u32>>,
        period_slots: u32,
        refractory_slots: u32,
        prc: Prc,
        rng: &mut R,
    ) -> Self {
        let n = neighbors.len();
        let oscillators = (0..n)
            .map(|_| PhaseOscillator::new(rng.gen_range(0.0..1.0), period_slots, refractory_slots))
            .collect();
        CoupledNetwork {
            oscillators,
            neighbors,
            prc,
            sync_tol: 1.0 / period_slots as f64,
        }
    }

    /// Full-mesh coupling on `n` nodes.
    pub fn full_mesh<R: Rng + ?Sized>(
        n: usize,
        period_slots: u32,
        refractory_slots: u32,
        prc: Prc,
        rng: &mut R,
    ) -> Self {
        let neighbors = (0..n as u32)
            .map(|v| (0..n as u32).filter(|&u| u != v).collect())
            .collect();
        Self::new(neighbors, period_slots, refractory_slots, prc, rng)
    }

    /// Coupling along the edges of a tree/graph given as `(u, v)` pairs.
    pub fn from_edges<R: Rng + ?Sized>(
        n: usize,
        edges: &[(u32, u32)],
        period_slots: u32,
        refractory_slots: u32,
        prc: Prc,
        rng: &mut R,
    ) -> Self {
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            neighbors[u as usize].push(v);
            neighbors[v as usize].push(u);
        }
        Self::new(neighbors, period_slots, refractory_slots, prc, rng)
    }

    /// Current phases.
    pub fn phases(&self) -> Vec<f64> {
        self.oscillators.iter().map(|o| o.phase()).collect()
    }

    /// Advance one slot; returns the ids that fired this slot (in
    /// cascade order) after resolving same-slot absorption transitively.
    pub fn step(&mut self) -> Vec<u32> {
        let n = self.oscillators.len();
        let mut fired_this_slot = vec![false; n];
        let mut cascade: Vec<u32> = Vec::new();

        // Natural fires from the slot tick.
        for (i, osc) in self.oscillators.iter_mut().enumerate() {
            if osc.tick() {
                fired_this_slot[i] = true;
                cascade.push(i as u32);
            }
        }
        // Transitive absorption within the slot.
        let mut cursor = 0;
        while cursor < cascade.len() {
            let firer = cascade[cursor];
            cursor += 1;
            for idx in 0..self.neighbors[firer as usize].len() {
                let nbr = self.neighbors[firer as usize][idx];
                if fired_this_slot[nbr as usize] {
                    continue;
                }
                if self.oscillators[nbr as usize].on_pulse(&self.prc) {
                    fired_this_slot[nbr as usize] = true;
                    cascade.push(nbr);
                }
            }
        }
        cascade
    }

    /// Run until every oscillator fires in the same slot, or `max_slots`
    /// elapse.
    pub fn run_to_sync(&mut self, max_slots: u64) -> SyncOutcome {
        let n = self.oscillators.len();
        let mut pulses = 0u64;
        for slot in 0..max_slots {
            let fired = self.step();
            pulses += fired.len() as u64;
            if fired.len() == n && n > 0 {
                return SyncOutcome {
                    slots_to_sync: Some(slot),
                    pulses_sent: pulses,
                    final_spread: 0.0,
                };
            }
            // Cheap early exit: if phases are already within one slot of
            // each other, the next common firing makes it visible; keep
            // stepping (detection stays event-based for fidelity).
        }
        let phases = self.phases();
        SyncOutcome {
            slots_to_sync: if is_synchronized(&phases, self.sync_tol) {
                Some(max_slots)
            } else {
                None
            },
            pulses_sent: pulses,
            final_spread: phase_spread(&phases),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    type Rng64 = ffd2d_sim::rng::Xoshiro256StarStar;

    #[test]
    fn full_mesh_synchronizes() {
        // The Mirollo–Strogatz theorem in slotted form: N = 20 all-to-all
        // oscillators with α > 1, β > 0 must reach a common firing slot.
        let mut rng = Rng64::seed_from_u64(5);
        let mut net = CoupledNetwork::full_mesh(20, 100, 2, Prc::standard(), &mut rng);
        let out = net.run_to_sync(500_000);
        assert!(out.converged(), "mesh failed to sync: {out:?}");
    }

    #[test]
    fn tree_coupling_synchronizes() {
        // Path graph (worst-case tree diameter).
        let mut rng = Rng64::seed_from_u64(6);
        let edges: Vec<(u32, u32)> = (0..19).map(|i| (i, i + 1)).collect();
        let mut net = CoupledNetwork::from_edges(20, &edges, 100, 2, Prc::standard(), &mut rng);
        let out = net.run_to_sync(2_000_000);
        assert!(out.converged(), "tree failed to sync: {out:?}");
    }

    #[test]
    fn singleton_is_trivially_synced() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut net = CoupledNetwork::full_mesh(1, 100, 2, Prc::standard(), &mut rng);
        let out = net.run_to_sync(1000);
        assert!(out.converged());
    }

    #[test]
    fn uncoupled_pair_never_syncs() {
        let mut rng = Rng64::seed_from_u64(8);
        // Two nodes, no edges, phases far apart with distinct draws.
        let mut net = CoupledNetwork::from_edges(2, &[], 100, 2, Prc::standard(), &mut rng);
        let out = net.run_to_sync(50_000);
        // They only "sync" if their random initial phases landed in the
        // same slot — astronomically unlikely for this seed.
        assert!(!out.converged(), "{out:?}");
        assert!(out.final_spread > 0.0);
    }

    #[test]
    fn cascade_counts_each_fire_once() {
        // Strong coupling, tight phases: one slot should fire everyone,
        // each exactly once.
        let prc = Prc::from_dissipation(3.0, 1.0);
        let mut rng = Rng64::seed_from_u64(9);
        let mut net = CoupledNetwork::full_mesh(10, 100, 2, prc, &mut rng);
        for _ in 0..10_000 {
            let fired = net.step();
            let mut unique = fired.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), fired.len(), "node fired twice in a slot");
            if fired.len() == 10 {
                return;
            }
        }
        panic!("strongly coupled mesh never cascaded to a full fire");
    }

    #[test]
    fn mesh_beats_path_on_time_small_n() {
        // Denser coupling synchronizes no slower (on average over seeds).
        let mut mesh_total = 0u64;
        let mut path_total = 0u64;
        for seed in 0..5 {
            let mut rng = Rng64::seed_from_u64(seed);
            let mut mesh = CoupledNetwork::full_mesh(10, 100, 2, Prc::standard(), &mut rng);
            mesh_total += mesh
                .run_to_sync(2_000_000)
                .slots_to_sync
                .unwrap_or(2_000_000);
            let mut rng = Rng64::seed_from_u64(seed);
            let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
            let mut path =
                CoupledNetwork::from_edges(10, &edges, 100, 2, Prc::standard(), &mut rng);
            path_total += path
                .run_to_sync(2_000_000)
                .slots_to_sync
                .unwrap_or(2_000_000);
        }
        assert!(
            mesh_total <= path_total,
            "mesh {mesh_total} vs path {path_total}"
        );
    }

    #[test]
    fn pulse_count_grows_with_degree() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut mesh = CoupledNetwork::full_mesh(12, 100, 2, Prc::standard(), &mut rng);
        let mesh_out = mesh.run_to_sync(1_000_000);
        assert!(mesh_out.pulses_sent > 0);
    }
}
