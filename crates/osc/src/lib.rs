//! # ffd2d-osc — pulse-coupled oscillator substrate
//!
//! §III of the paper models every device as a Mirollo–Strogatz
//! integrate-and-fire ("firefly") oscillator:
//!
//! * the phase `θ_i` rises linearly from 0 to the threshold `θ_th = 1`
//!   with slope `θ_th / T` (eq. (3));
//! * on reaching the threshold the device *fires* (broadcasts a
//!   proximity signal) and resets to 0 (eq. (4));
//! * on *hearing* a fire, every other device advances its phase through
//!   the phase-response curve `θ ← min(α·θ + β, 1)` with
//!   `α = e^{aε}` and `β = (e^{aε} − 1)/(e^a − 1)` (eq. (5)),
//!   where `a` is the dissipation factor and `ε` the coupling strength;
//! * Mirollo & Strogatz prove that with `α > 1, β > 0` (i.e. `a > 0`,
//!   `ε > 0`) a fully-meshed population always converges to synchrony.
//!
//! Modules:
//!
//! * [`prc`] — the phase-response curve with the eq.-(5) parametrisation
//!   and its convergence conditions.
//! * [`oscillator`] — a single slotted integrate-and-fire oscillator
//!   with refractory handling (devices cannot hear while transmitting).
//! * [`network`] — an idealised (radio-free) coupled population over an
//!   arbitrary topology; used to validate convergence claims and to
//!   isolate topology effects from channel effects (ablation A2/A4).
//! * [`predict`] — memoized phase trajectories: the exact-by-
//!   construction fast-forward machinery behind the engines'
//!   event-driven (slot-skipping) execution mode.
//! * [`sync`] — synchrony metrics: Kuramoto order parameter, circular
//!   phase spread, firing-group counting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod oscillator;
pub mod prc;
pub mod predict;
pub mod sync;

pub use network::{CoupledNetwork, SyncOutcome};
pub use oscillator::PhaseOscillator;
pub use prc::Prc;
pub use predict::{Cursor, TrajectoryCache};
pub use sync::{firing_groups, kuramoto_order, phase_spread};
