//! The phase-response curve of eq. (5).
//!
//! Mirollo & Strogatz show that for a concave-up state function
//! `x = f(θ)` the effect of receiving a pulse of amplitude `ε` is the
//! piecewise-linear *return map*
//!
//! ```text
//! θ ← min(α·θ + β, 1)
//! α = e^{a·ε}
//! β = (e^{a·ε} − 1) / (e^{a} − 1)
//! ```
//!
//! where `a > 0` is the dissipation factor of the underlying
//! integrate-and-fire dynamics (eq. (1)). Synchrony of a fully-meshed
//! population is guaranteed whenever `α > 1` and `β > 0`, which holds
//! exactly when `a > 0` and `ε > 0`.

use serde::{Deserialize, Serialize};

/// A phase-response curve `θ ← min(α·θ + β, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prc {
    /// Multiplicative phase advance (`e^{aε}`).
    pub alpha: f64,
    /// Additive phase advance (`(e^{aε} − 1)/(e^{a} − 1)`).
    pub beta: f64,
}

impl Prc {
    /// Build from the physical parameters of eq. (5): dissipation `a`
    /// and pulse coupling strength `epsilon`.
    ///
    /// # Panics
    ///
    /// If `a <= 0` or `epsilon <= 0` — outside that region the
    /// Mirollo–Strogatz convergence guarantee does not hold and no
    /// protocol in this workspace wants such a curve.
    pub fn from_dissipation(a: f64, epsilon: f64) -> Prc {
        assert!(a > 0.0, "dissipation factor must be positive");
        assert!(epsilon > 0.0, "coupling strength must be positive");
        let ea_eps = (a * epsilon).exp();
        Prc {
            alpha: ea_eps,
            beta: (ea_eps - 1.0) / (a.exp() - 1.0),
        }
    }

    /// The default coupling used across the workspace (a = 3, ε = 0.03 —
    /// a weak-coupling operating point comparable to the firefly D2D
    /// literature).
    pub fn standard() -> Prc {
        Prc::from_dissipation(3.0, 0.03)
    }

    /// Whether the Mirollo–Strogatz convergence condition (α > 1, β > 0)
    /// holds.
    pub fn converges(&self) -> bool {
        self.alpha > 1.0 && self.beta > 0.0
    }

    /// Apply the curve to a phase in `[0, 1]`, returning the advanced
    /// phase (saturating at the threshold 1).
    #[inline]
    pub fn apply(&self, theta: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&theta), "phase {theta} out of range");
        (self.alpha * theta + self.beta).min(1.0)
    }

    /// True if a pulse received at phase `theta` fires the receiver
    /// immediately (absorption).
    #[inline]
    pub fn absorbs(&self, theta: f64) -> bool {
        self.alpha * theta + self.beta >= 1.0
    }

    /// The phase above which any pulse causes immediate firing.
    pub fn absorption_threshold(&self) -> f64 {
        ((1.0 - self.beta) / self.alpha).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_values() {
        // a = 3, ε = 0.03: α = e^0.09 ≈ 1.09417, β = (e^0.09−1)/(e^3−1).
        let prc = Prc::from_dissipation(3.0, 0.03);
        assert!((prc.alpha - 0.09f64.exp()).abs() < 1e-12);
        assert!((prc.beta - (0.09f64.exp() - 1.0) / (3f64.exp() - 1.0)).abs() < 1e-12);
        assert!(prc.converges());
    }

    #[test]
    fn apply_is_monotone_and_saturates() {
        let prc = Prc::standard();
        let mut last = -1.0;
        for i in 0..=100 {
            let theta = i as f64 / 100.0;
            let out = prc.apply(theta);
            assert!(out >= last);
            assert!(out <= 1.0);
            assert!(out >= theta, "PRC must only advance phase");
            last = out;
        }
        assert_eq!(prc.apply(1.0), 1.0);
    }

    #[test]
    fn absorption_threshold_consistent_with_absorbs() {
        let prc = Prc::standard();
        let t = prc.absorption_threshold();
        assert!(prc.absorbs(t + 1e-9));
        assert!(!prc.absorbs(t - 1e-9));
    }

    #[test]
    fn stronger_coupling_advances_more() {
        let weak = Prc::from_dissipation(3.0, 0.01);
        let strong = Prc::from_dissipation(3.0, 0.2);
        for theta in [0.1, 0.5, 0.9] {
            assert!(strong.apply(theta) >= weak.apply(theta));
        }
        assert!(strong.absorption_threshold() < weak.absorption_threshold());
    }

    #[test]
    fn zero_phase_gains_beta() {
        let prc = Prc::standard();
        assert!((prc.apply(0.0) - prc.beta).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_dissipation_rejected() {
        let _ = Prc::from_dissipation(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_coupling_rejected() {
        let _ = Prc::from_dissipation(3.0, 0.0);
    }
}
