//! A single slotted integrate-and-fire oscillator.
//!
//! The protocol engines advance device oscillators once per 1 ms slot:
//! the phase climbs by `1/T` per slot (eq. (3)); reaching the threshold
//! fires the device (it broadcasts a proximity signal and resets,
//! eq. (4)); hearing a neighbour's proximity signal advances the phase
//! through the PRC (eq. (5)).
//!
//! A short **refractory window** after firing is included: a transceiver
//! cannot receive while it transmits, and the refractory period is also
//! what prevents infinite same-slot echo cascades in the slotted
//! setting. This matches the RFA-style practical firefly
//! implementations the paper cites ([13], [14]).

use serde::{Deserialize, Serialize};

use crate::prc::Prc;

/// A slotted firefly oscillator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseOscillator {
    /// Current phase in `[0, 1]`.
    phase: f64,
    /// Natural period in slots (`T` of eq. (3)).
    period_slots: u32,
    /// Remaining refractory slots (cannot hear pulses while > 0).
    refractory_left: u32,
    /// Configured refractory length after each firing.
    refractory_slots: u32,
}

impl PhaseOscillator {
    /// A new oscillator with initial `phase ∈ [0, 1)`, period `T` slots
    /// and a post-fire refractory window.
    pub fn new(phase: f64, period_slots: u32, refractory_slots: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&phase),
            "initial phase must be in [0,1)"
        );
        assert!(period_slots > 0, "period must be positive");
        assert!(
            refractory_slots < period_slots,
            "refractory must be shorter than the period"
        );
        PhaseOscillator {
            phase,
            period_slots,
            refractory_left: 0,
            refractory_slots,
        }
    }

    /// Current phase.
    #[inline]
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Natural period in slots.
    #[inline]
    pub fn period_slots(&self) -> u32 {
        self.period_slots
    }

    /// True while the oscillator is deaf after firing.
    #[inline]
    pub fn in_refractory(&self) -> bool {
        self.refractory_left > 0
    }

    /// Advance one slot. Returns `true` if the oscillator fires in this
    /// slot (phase reached the threshold); the phase is then reset.
    pub fn tick(&mut self) -> bool {
        if self.refractory_left > 0 {
            self.refractory_left -= 1;
        }
        self.phase += 1.0 / self.period_slots as f64;
        if self.phase >= 1.0 - 1e-12 {
            self.reset_after_fire();
            true
        } else {
            false
        }
    }

    /// Process a heard pulse through `prc`. Returns `true` if the pulse
    /// absorbs the oscillator (it fires immediately); the phase is then
    /// reset. Pulses during refractory are ignored and return `false`.
    pub fn on_pulse(&mut self, prc: &Prc) -> bool {
        if self.refractory_left > 0 {
            return false;
        }
        self.phase = prc.apply(self.phase);
        if self.phase >= 1.0 {
            self.reset_after_fire();
            true
        } else {
            false
        }
    }

    /// Process a pulse that was *emitted* `age_slots` ago (the sender
    /// staggered its transmission to dodge collisions and stamped the
    /// offset into the frame, as MEMFIS-style sync words do). The PRC is
    /// applied to the phase this oscillator had at the emission instant
    /// and the elapsed time is re-added — so staggered transmissions
    /// couple exactly like ideal instantaneous pulses.
    pub fn on_pulse_delayed(&mut self, prc: &Prc, age_slots: u32) -> bool {
        if self.refractory_left > 0 {
            return false;
        }
        let age_phase = age_slots as f64 / self.period_slots as f64;
        let then = (self.phase - age_phase).max(0.0);
        let advanced = prc.apply(then) + age_phase;
        if advanced >= 1.0 - 1e-12 {
            // Absorbed: this oscillator (virtually) fired at the same
            // instant as the sender, `age_slots` ago — its phase now is
            // the elapsed time since that common firing instant, which
            // is what keeps absorbed oscillators *exactly* aligned with
            // their absorber.
            self.phase = age_phase;
            self.refractory_left = self.refractory_slots;
            true
        } else {
            self.phase = advanced;
            false
        }
    }

    /// Adopt the timing of a reference oscillator that fired
    /// `age_slots` ago: the phase becomes exactly the time elapsed since
    /// that firing instant. This is master–slave alignment (a child
    /// locking to its tree parent), not pulse coupling — it bypasses the
    /// PRC and the refractory gate and never causes a fire
    /// (`age_slots` is always far below the period).
    pub fn align_to_fire(&mut self, age_slots: u32) {
        let age_phase = age_slots as f64 / self.period_slots as f64;
        debug_assert!(age_phase < 1.0, "alignment age exceeds the period");
        self.phase = age_phase;
    }

    /// Force an immediate fire + reset (used when a device fires as part
    /// of a same-slot cascade).
    pub fn force_fire(&mut self) {
        self.reset_after_fire();
    }

    /// Number of [`tick`](Self::tick) calls until the next fire (always
    /// ≥ 1). Computed by exact simulation of a copy, so the answer is
    /// bit-identical to counting repeated `tick()`s — including the
    /// `1e-12` threshold epsilon. Repeated floating-point accumulation
    /// of `1/T` has no closed form that reproduces it, so prediction
    /// *is* simulation (bounded by one period).
    pub fn ticks_to_next_fire(&self) -> u32 {
        let mut probe = *self;
        let mut k = 1u32;
        while !probe.tick() {
            k += 1;
        }
        k
    }

    /// Absolute slot of the next fire, given that this oscillator's
    /// state already reflects every tick up to and including
    /// `current_slot`.
    pub fn next_fire_slot(&self, current_slot: u64) -> u64 {
        current_slot + self.ticks_to_next_fire() as u64
    }

    /// Fast-forward by `slots` ticks, returning how many of them fired.
    /// This is literally `slots` repeated [`tick`](Self::tick) calls —
    /// the only implementation that reproduces the stepped phase
    /// accumulation bit-for-bit (refractory countdown and threshold
    /// epsilon included).
    pub fn advance_by(&mut self, slots: u64) -> u32 {
        let mut fires = 0u32;
        for _ in 0..slots {
            if self.tick() {
                fires += 1;
            }
        }
        fires
    }

    /// Adopt a precomputed non-firing fast-forward: `phase` must be the
    /// exact value that `ticks` repeated `tick()` calls (none of them
    /// firing) would produce from the current state. The caller owns
    /// that contract — in practice the event engines'
    /// [`TrajectoryCache`](crate::predict::TrajectoryCache), whose
    /// trajectories are built by the same tick arithmetic. The
    /// refractory countdown is folded in closed form
    /// (ticks only ever decrement it toward zero, independent of the
    /// phase).
    pub fn warp(&mut self, phase: f64, ticks: u64) {
        debug_assert!(
            phase < 1.0 - 1e-12,
            "warp target phase {phase} would have fired"
        );
        let dec = ticks.min(u64::from(u32::MAX)) as u32;
        self.refractory_left = self.refractory_left.saturating_sub(dec);
        self.phase = phase;
    }

    fn reset_after_fire(&mut self) {
        self.phase = 0.0;
        self.refractory_left = self.refractory_slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncoupled_period_is_exact() {
        // Eq. (3): an uncoupled oscillator fires every T slots.
        let mut osc = PhaseOscillator::new(0.0, 100, 2);
        let mut fires = Vec::new();
        for t in 0..1000u32 {
            if osc.tick() {
                fires.push(t);
            }
        }
        assert_eq!(fires.len(), 10);
        for pair in fires.windows(2) {
            assert_eq!(pair[1] - pair[0], 100);
        }
    }

    #[test]
    fn initial_phase_shifts_first_fire() {
        let mut osc = PhaseOscillator::new(0.5, 100, 0);
        let mut first = None;
        for t in 0..200u32 {
            if osc.tick() {
                first = Some(t);
                break;
            }
        }
        assert_eq!(first, Some(49)); // 50 remaining ticks, zero-indexed
    }

    #[test]
    fn pulse_advances_phase() {
        let prc = Prc::standard();
        let mut osc = PhaseOscillator::new(0.4, 100, 0);
        let before = osc.phase();
        assert!(!osc.on_pulse(&prc));
        assert!(osc.phase() > before);
    }

    #[test]
    fn pulse_near_threshold_absorbs() {
        let prc = Prc::from_dissipation(3.0, 0.5); // strong coupling
        let mut osc = PhaseOscillator::new(0.95, 100, 3);
        assert!(osc.on_pulse(&prc));
        assert_eq!(osc.phase(), 0.0);
        assert!(osc.in_refractory());
    }

    #[test]
    fn refractory_blocks_pulses_then_expires() {
        let prc = Prc::from_dissipation(3.0, 0.5);
        let mut osc = PhaseOscillator::new(0.99, 100, 3);
        assert!(osc.on_pulse(&prc)); // fires, enters refractory
        let phase_after = osc.phase();
        assert!(!osc.on_pulse(&prc), "deaf during refractory");
        assert_eq!(osc.phase(), phase_after);
        for _ in 0..3 {
            osc.tick();
        }
        assert!(!osc.in_refractory());
        let before = osc.phase();
        osc.on_pulse(&prc);
        assert!(osc.phase() != before, "hears again after refractory");
    }

    #[test]
    fn force_fire_resets() {
        let mut osc = PhaseOscillator::new(0.7, 100, 5);
        osc.force_fire();
        assert_eq!(osc.phase(), 0.0);
        assert!(osc.in_refractory());
    }

    #[test]
    fn coupled_pair_synchronizes() {
        // Two oscillators with the standard PRC: firing instants must
        // coalesce within a few tens of periods (Mirollo–Strogatz N=2).
        let prc = Prc::standard();
        let mut a = PhaseOscillator::new(0.0, 100, 2);
        let mut b = PhaseOscillator::new(0.37, 100, 2);
        let mut synced_at = None;
        for t in 0..100_000u32 {
            let fa = a.tick();
            let fb = b.tick();
            if fa && !fb && b.on_pulse(&prc) {
                // b absorbed: fires in the same slot as a.
                synced_at = Some(t);
                break;
            }
            if fb && !fa && a.on_pulse(&prc) {
                synced_at = Some(t);
                break;
            }
            if fa && fb {
                synced_at = Some(t);
                break;
            }
        }
        assert!(synced_at.is_some(), "pair never synchronized");
    }

    #[test]
    fn delayed_pulse_equals_instant_pulse_at_zero_age() {
        let prc = Prc::standard();
        let mut a = PhaseOscillator::new(0.4, 100, 0);
        let mut b = PhaseOscillator::new(0.4, 100, 0);
        assert_eq!(a.on_pulse(&prc), b.on_pulse_delayed(&prc, 0));
        assert_eq!(a.phase(), b.phase());
    }

    #[test]
    fn delayed_pulse_compensates_age() {
        // A pulse emitted 3 slots ago must advance the phase the
        // oscillator had 3 slots ago, then re-add the elapsed 3 slots.
        let prc = Prc::standard();
        let mut now = PhaseOscillator::new(0.43, 100, 0);
        now.on_pulse_delayed(&prc, 3);
        let mut then = PhaseOscillator::new(0.40, 100, 0);
        then.on_pulse(&prc);
        assert!((now.phase() - (then.phase() + 0.03)).abs() < 1e-12);
    }

    #[test]
    fn delayed_pulse_fires_when_compensated_phase_crosses() {
        let prc = Prc::from_dissipation(3.0, 0.5);
        let mut osc = PhaseOscillator::new(0.97, 100, 3);
        assert!(osc.on_pulse_delayed(&prc, 2));
        // Aligned with the sender's firing instant 2 slots ago.
        assert!((osc.phase() - 0.02).abs() < 1e-12);
        assert!(osc.in_refractory());
    }

    #[test]
    fn absorbed_pair_stays_exactly_aligned() {
        // a fires; its pulse reaches b 3 slots later and absorbs it.
        // From then on both must fire in the same slot forever.
        let prc = Prc::from_dissipation(3.0, 0.5);
        let mut b = PhaseOscillator::new(0.9, 100, 5);
        // advance b to the absorption point
        for _ in 0..3 {
            b.tick();
        }
        assert!(b.on_pulse_delayed(&prc, 3));
        // b's phase is now 0.03 = a's phase 3 slots after a fired... so
        // simulate a from its firing instant:
        let mut a_fires = Vec::new();
        let mut b_fires = Vec::new();
        let mut a = PhaseOscillator::new(0.03, 100, 5); // a, 3 slots after firing
        for t in 0..1000u32 {
            if a.tick() {
                a_fires.push(t);
            }
            if b.tick() {
                b_fires.push(t);
            }
        }
        assert_eq!(a_fires, b_fires);
    }

    #[test]
    fn align_to_fire_copies_reference_timing() {
        let mut osc = PhaseOscillator::new(0.77, 100, 5);
        osc.align_to_fire(4);
        assert!((osc.phase() - 0.04).abs() < 1e-12);
        // Alignment works even during refractory and does not clear it.
        let mut osc = PhaseOscillator::new(0.99, 100, 5);
        let prc = Prc::from_dissipation(3.0, 0.5);
        assert!(osc.on_pulse(&prc));
        assert!(osc.in_refractory());
        osc.align_to_fire(2);
        assert!((osc.phase() - 0.02).abs() < 1e-12);
        assert!(osc.in_refractory());
    }

    #[test]
    fn next_fire_prediction_matches_ticking() {
        for phase in [0.0, 0.25, 0.5, 0.999, 0.37] {
            let osc = PhaseOscillator::new(phase, 100, 12);
            let k = osc.ticks_to_next_fire();
            assert!(k >= 1);
            let mut probe = osc;
            for _ in 0..k - 1 {
                assert!(!probe.tick(), "fired early (phase {phase})");
            }
            assert!(probe.tick(), "missed the predicted fire (phase {phase})");
            assert_eq!(osc.next_fire_slot(41), 41 + k as u64);
        }
    }

    #[test]
    fn advance_by_equals_repeated_ticks() {
        let mut fast = PhaseOscillator::new(0.42, 100, 12);
        let mut slow = fast;
        let mut slow_fires = 0;
        for _ in 0..777 {
            if slow.tick() {
                slow_fires += 1;
            }
        }
        assert_eq!(fast.advance_by(777), slow_fires);
        assert_eq!(fast, slow);
    }

    #[test]
    fn warp_matches_non_firing_ticks() {
        let prc = Prc::from_dissipation(3.0, 0.5);
        let mut osc = PhaseOscillator::new(0.97, 100, 12);
        assert!(osc.on_pulse(&prc)); // fires, enters refractory
        let mut warped = osc;
        let k = osc.ticks_to_next_fire() as u64 - 1;
        assert_eq!(osc.advance_by(k), 0);
        warped.warp(osc.phase(), k);
        assert_eq!(warped, osc);
        assert!(!warped.in_refractory(), "refractory folded away");
    }

    #[test]
    #[should_panic(expected = "phase must be in")]
    fn out_of_range_phase_rejected() {
        let _ = PhaseOscillator::new(1.0, 100, 0);
    }

    #[test]
    #[should_panic(expected = "refractory")]
    fn refractory_longer_than_period_rejected() {
        let _ = PhaseOscillator::new(0.0, 10, 10);
    }
}
