//! Property-based tests for the statistics substrate.

use proptest::prelude::*;

use ffd2d_metrics::{Histogram, Percentiles, Summary};

proptest! {
    /// Welford accumulation matches the naive two-pass formulas.
    #[test]
    fn summary_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_samples(xs.iter().copied());
        let n = xs.len() as f64;
        let mean: f64 = xs.iter().sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        }
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// merge(a, b) equals accumulating the concatenation, for any split.
    #[test]
    fn summary_merge_associative(xs in proptest::collection::vec(-1e3f64..1e3, 2..150), split_frac in 0.0f64..1.0) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let whole = Summary::from_samples(xs.iter().copied());
        let mut left = Summary::from_samples(xs[..split].iter().copied());
        let right = Summary::from_samples(xs[split..].iter().copied());
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let mut p = Percentiles::from_samples(xs.iter().copied());
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = p.quantile(lo_q).unwrap();
        let hi = p.quantile(hi_q).unwrap();
        prop_assert!(lo <= hi + 1e-12);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min - 1e-12 && hi <= max + 1e-12);
    }

    /// The CI always contains the mean and shrinks (weakly) as samples
    /// are duplicated.
    #[test]
    fn ci_contains_mean(xs in proptest::collection::vec(-100.0f64..100.0, 2..50)) {
        let s = Summary::from_samples(xs.iter().copied());
        let (lo, hi) = s.ci95();
        prop_assert!(lo <= s.mean() && s.mean() <= hi);
        // Doubling the data (same distribution) must not widen the CI.
        let doubled = Summary::from_samples(xs.iter().chain(xs.iter()).copied());
        prop_assert!(doubled.ci95_half_width() <= s.ci95_half_width() + 1e-9);
    }

    /// Histogram counts are conserved: every sample lands somewhere.
    #[test]
    fn histogram_conserves_mass(xs in proptest::collection::vec(-10.0f64..10.0, 0..300), bins in 1usize..32) {
        let mut h = Histogram::new(-5.0, 5.0, bins);
        for &x in &xs {
            h.record(x);
        }
        let (under, over) = h.out_of_range();
        let in_bins: u64 = h.counts().iter().sum();
        prop_assert_eq!(in_bins + under + over, xs.len() as u64);
        // Bin bounds tile the range; past-the-end has no bounds.
        let (first_lo, _) = h.bin_bounds(0).expect("bin 0 exists");
        let (_, last_hi) = h.bin_bounds(bins - 1).expect("last bin exists");
        prop_assert!((first_lo - -5.0).abs() < 1e-12);
        prop_assert!((last_hi - 5.0).abs() < 1e-9);
        prop_assert_eq!(h.bin_bounds(bins), None);
    }
}
