//! Fixed-bin histograms.
//!
//! Used by experiment E5 to compare the measured RSSI ranging-error
//! distribution against its log-normal closed form, and by the
//! collision ablation to show per-slot contention profiles.

use serde::{Deserialize, Serialize};

/// A histogram with uniform bins over `[lo, hi)` plus under/overflow.
///
/// # Out-of-range policy
///
/// The bins cover exactly `[lo, hi)`. A sample `x < lo` increments the
/// **underflow** tally, and `x >= hi` (the upper edge is exclusive)
/// increments the **overflow** tally; both count toward
/// [`Histogram::total`] but never land in a bin, never contribute to
/// [`Histogram::density`], and never shift [`Histogram::mode_bin`].
/// Read them back with [`Histogram::out_of_range`] — reports that drop
/// them silently would misstate the distribution mass. `NaN` samples
/// are rejected with a panic (there is no meaningful bin for them);
/// infinities follow the ordinary comparisons and land in the
/// under/overflow tallies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` uniform bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let bins = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
            self.counts[bin.min(bins - 1)] += 1;
        }
    }

    /// Total recorded samples (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// The inclusive-exclusive bounds `[lo_i, hi_i)` of bin `i`, or
    /// `None` when `i` is out of range (under/overflow tallies have no
    /// bin and no bounds).
    pub fn bin_bounds(&self, i: usize) -> Option<(f64, f64)> {
        if i >= self.counts.len() {
            return None;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        Some((self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w))
    }

    /// Fraction of in-range samples in bin `i`.
    pub fn density(&self, i: usize) -> f64 {
        let in_range = self.total - self.underflow - self.overflow;
        if in_range == 0 {
            0.0
        } else {
            self.counts[i] as f64 / in_range as f64
        }
    }

    /// Index of the fullest bin (`None` if no in-range samples).
    pub fn mode_bin(&self) -> Option<usize> {
        if self.counts.iter().all(|&c| c == 0) {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, core::cmp::Reverse(i)))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.0);
        h.record(9.999);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_tracked_separately() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.5);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 3);
        assert!(h.counts().iter().all(|&c| c == 0));
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn bounds_and_density() {
        let mut h = Histogram::new(0.0, 8.0, 4);
        assert_eq!(h.bin_bounds(0), Some((0.0, 2.0)));
        assert_eq!(h.bin_bounds(3), Some((6.0, 8.0)));
        assert_eq!(h.bin_bounds(4), None, "past the last bin");
        assert_eq!(h.bin_bounds(usize::MAX), None);
        for x in [1.0, 1.5, 3.0, 7.0] {
            h.record(x);
        }
        assert!((h.density(0) - 0.5).abs() < 1e-12);
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn gaussianish_data_peaks_in_middle() {
        let mut h = Histogram::new(-3.0, 3.0, 9);
        // Deterministic triangle-distribution samples around 0.
        for i in 0..1000 {
            let u = (i as f64 / 1000.0) * 2.0 - 1.0;
            let v = ((i as f64 * 7.0) % 1000.0 / 1000.0) * 2.0 - 1.0;
            h.record(u + v); // triangular on [-2, 2]
        }
        let mode = h.mode_bin().unwrap();
        assert!((3..=5).contains(&mode), "mode bin {mode}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_rejected() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }
}
