//! Named (x, y) series — the in-memory form of a figure.
//!
//! Every reproduced figure is a set of series over a common x-axis
//! (node count). [`Series`] carries the points plus optional error bars
//! (95% CI half-widths), renders to CSV, and answers shape questions the
//! experiment assertions need (monotonicity, crossover location).

use serde::{Deserialize, Serialize};

/// One plotted series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"ST (proposed)"`).
    pub label: String,
    /// Points as `(x, y)`.
    pub points: Vec<(f64, f64)>,
    /// Optional symmetric error bar per point (same length as `points`
    /// when present).
    pub error: Option<Vec<f64>>,
}

impl Series {
    /// An empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
            error: None,
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Append a point with an error bar.
    pub fn push_with_error(&mut self, x: f64, y: f64, e: f64) {
        self.points.push((x, y));
        self.error.get_or_insert_with(Vec::new).push(e);
    }

    /// y-value at the given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// True if y never decreases as x grows (assumes points sorted by x).
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1)
    }

    /// The first x (of `self`) at which `self` drops strictly below
    /// `other`, comparing common x-values in order — the "crossover"
    /// the paper's Figs. 3–4 are about.
    pub fn crossover_below(&self, other: &Series) -> Option<f64> {
        for &(x, y) in &self.points {
            if let Some(oy) = other.y_at(x) {
                if y < oy {
                    return Some(x);
                }
            }
        }
        None
    }
}

/// A figure: several series over one x-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. `"Fig. 3 — convergence time"`).
    pub title: String,
    /// Axis labels `(x, y)`.
    pub axes: (String, String),
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// A new empty figure.
    pub fn new(
        title: impl Into<String>,
        x_axis: impl Into<String>,
        y_axis: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            axes: (x_axis.into(), y_axis.into()),
            series: Vec::new(),
        }
    }

    /// Render as CSV: header `x,<label1>,<label1>_ci,<label2>,…` and one
    /// row per x present in the first series.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.axes.0);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
            if s.error.is_some() {
                out.push(',');
                out.push_str(&s.label);
                out.push_str("_ci95");
            }
        }
        out.push('\n');
        if let Some(first) = self.series.first() {
            for (i, &(x, _)) in first.points.iter().enumerate() {
                out.push_str(&format!("{x}"));
                for s in &self.series {
                    let y = s.points.get(i).map(|&(_, y)| y);
                    out.push(',');
                    if let Some(y) = y {
                        out.push_str(&format!("{y}"));
                    }
                    if let Some(err) = &s.error {
                        out.push(',');
                        if let Some(e) = err.get(i) {
                            out.push_str(&format!("{e}"));
                        }
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(label: &str, ys: &[f64]) -> Series {
        let mut s = Series::new(label);
        for (i, &y) in ys.iter().enumerate() {
            s.push((i * 100) as f64, y);
        }
        s
    }

    #[test]
    fn push_and_lookup() {
        let s = make("a", &[1.0, 2.0, 3.0]);
        assert_eq!(s.y_at(100.0), Some(2.0));
        assert_eq!(s.y_at(50.0), None);
    }

    #[test]
    fn monotonicity_check() {
        assert!(make("up", &[1.0, 1.0, 2.0]).is_non_decreasing());
        assert!(!make("down", &[2.0, 1.0]).is_non_decreasing());
    }

    #[test]
    fn crossover_detection() {
        // st starts above fst, crosses below at x = 200.
        let st = make("st", &[10.0, 10.0, 8.0, 9.0]);
        let fst = make("fst", &[8.0, 10.0, 12.0, 20.0]);
        assert_eq!(st.crossover_below(&fst), Some(200.0));
        assert_eq!(fst.crossover_below(&st), Some(0.0));
        let flat = make("flat", &[10.0, 10.0, 12.0, 20.0]);
        assert_eq!(flat.crossover_below(&flat), None);
    }

    #[test]
    fn error_bars_align() {
        let mut s = Series::new("e");
        s.push_with_error(0.0, 1.0, 0.1);
        s.push_with_error(1.0, 2.0, 0.2);
        assert_eq!(s.error.as_ref().unwrap().len(), s.points.len());
    }

    #[test]
    fn csv_rendering() {
        let mut fig = Figure::new("Fig. X", "nodes", "time");
        fig.series.push(make("st", &[1.0, 2.0]));
        fig.series.push(make("fst", &[3.0, 4.0]));
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "nodes,st,fst");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines[2], "100,2,4");
    }

    #[test]
    fn csv_with_error_columns() {
        let mut fig = Figure::new("F", "x", "y");
        let mut s = Series::new("a");
        s.push_with_error(1.0, 2.0, 0.5);
        fig.series.push(s);
        let csv = fig.to_csv();
        assert!(csv.starts_with("x,a,a_ci95\n"));
        assert!(csv.contains("1,2,0.5"));
    }
}
