//! Streaming moments and confidence intervals.
//!
//! [`Summary`] accumulates samples one at a time with Welford's
//! algorithm (numerically stable single-pass mean/variance), supports
//! `merge` (Chan et al. parallel combination) so per-worker summaries
//! can be reduced without collecting raw samples, and reports Student-t
//! 95% confidence intervals for the trial means plotted in Figs. 3–4.

use serde::{Deserialize, Serialize};

/// Streaming univariate summary statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Summary {
        let mut s = Summary::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum sample (+∞ when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample (−∞ when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95% Student-t confidence interval for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t_critical_95(self.n - 1) * self.std_error()
    }

    /// `(lo, hi)` of the 95% confidence interval.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }

    /// Combine with another summary (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n_total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        *self = Summary {
            n: n_total,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        };
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table for small df (where it matters), asymptotic 1.96 beyond.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.02,
        61..=120 => 1.99,
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_sample() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.ci95_half_width(), 0.0);
        let s = Summary::from_samples([3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_samples(data.iter().copied());
        let mut a = Summary::from_samples(data[..37].iter().copied());
        let b = Summary::from_samples(data[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_samples([1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_narrows_with_samples() {
        let few = Summary::from_samples((0..5).map(|i| i as f64));
        let many = Summary::from_samples((0..500).map(|i| (i % 5) as f64));
        assert!(many.ci95_half_width() < few.ci95_half_width());
        let (lo, hi) = few.ci95();
        assert!(lo < few.mean() && few.mean() < hi);
    }

    #[test]
    fn t_table_sanity() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert_eq!(t_critical_95(1_000_000), 1.96);
        // Monotone decreasing toward the normal quantile.
        assert!(t_critical_95(5) > t_critical_95(20));
        assert!(t_critical_95(20) > t_critical_95(200));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_rejected() {
        Summary::new().push(f64::NAN);
    }
}
