//! Exact order statistics.
//!
//! Convergence-time distributions are heavy-tailed (an unlucky
//! deployment with a deep shadow can take many extra rounds), so the
//! experiment reports include medians and tail percentiles alongside
//! means. [`Percentiles`] keeps the raw samples and answers arbitrary
//! quantile queries with linear interpolation (type-7 quantile, the R /
//! NumPy default).

use serde::{Deserialize, Serialize};

/// A collected sample set with quantile queries.
///
/// Sorting is cached: the samples are sorted at most once per batch of
/// pushes, on the first quantile query, and every further query reuses
/// the sorted order until the next [`Percentiles::push`] re-dirties it.
/// Query-heavy report code (many percentiles off one sample set) costs
/// one sort, not one per call.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Percentiles {
    sorted: Vec<f64>,
    dirty: bool,
    /// Diagnostic: how many times the sample buffer was actually
    /// sorted. Lets tests pin the caching contract.
    sorts: u64,
}

impl Percentiles {
    /// An empty collection.
    pub fn new() -> Percentiles {
        Percentiles::default()
    }

    /// Build from samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Percentiles {
        let mut p = Percentiles::new();
        for s in samples {
            p.push(s);
        }
        p
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample");
        self.sorted.push(x);
        self.dirty = true;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted.sort_by(|a, b| a.total_cmp(b));
            self.dirty = false;
            self.sorts += 1;
        }
    }

    /// How many times the sample buffer has been sorted — the cache's
    /// observable: repeated quantile queries between pushes must not
    /// increase it.
    pub fn sorts_performed(&self) -> u64 {
        self.sorts
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) with linear interpolation.
    /// Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.sorted.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.sorted.len();
        if n == 1 {
            return Some(self.sorted[0]);
        }
        let h = q * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median (0.5-quantile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn singleton_is_every_quantile() {
        let mut p = Percentiles::from_samples([7.0]);
        assert_eq!(p.quantile(0.0), Some(7.0));
        assert_eq!(p.quantile(0.5), Some(7.0));
        assert_eq!(p.quantile(1.0), Some(7.0));
    }

    #[test]
    fn known_quartiles() {
        let mut p = Percentiles::from_samples([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.median(), Some(3.0));
        assert_eq!(p.quantile(1.0), Some(5.0));
        // Type-7 interpolation: 0.25 → 2.0, 0.1 → 1.4.
        assert_eq!(p.quantile(0.25), Some(2.0));
        assert!((p.quantile(0.1).unwrap() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut p = Percentiles::from_samples([5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(p.median(), Some(3.0));
        // Push after query re-dirties.
        p.push(0.0);
        assert_eq!(p.quantile(0.0), Some(0.0));
    }

    #[test]
    fn even_count_median_interpolates() {
        let mut p = Percentiles::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.median(), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_rejected() {
        let mut p = Percentiles::from_samples([1.0]);
        let _ = p.quantile(1.5);
    }

    #[test]
    fn repeated_queries_sort_once() {
        // Regression: quantile() used to re-sort on every call; the
        // sorted order is now cached and invalidated only by push().
        let mut p = Percentiles::from_samples((0..1000).map(|i| ((i * 7919) % 1000) as f64));
        assert_eq!(p.sorts_performed(), 0, "pushes alone never sort");
        let median = p.median();
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let _ = p.quantile(q);
        }
        assert_eq!(p.sorts_performed(), 1, "one sort serves every query");
        assert_eq!(p.median(), median, "cached order answers identically");
        // A push re-dirties: exactly one more sort on the next query.
        p.push(-1.0);
        assert_eq!(p.sorts_performed(), 1, "push itself does not sort");
        assert_eq!(p.quantile(0.0), Some(-1.0));
        let _ = p.p95();
        assert_eq!(p.sorts_performed(), 2);
    }
}
