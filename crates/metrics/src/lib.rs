//! # ffd2d-metrics — statistics and reporting substrate
//!
//! Every experiment in this workspace reduces many Monte-Carlo trials to
//! a handful of numbers (Fig. 3: mean convergence time per node count;
//! Fig. 4: mean message count). This crate holds the statistical and
//! presentation machinery:
//!
//! * [`stats`] — streaming moments (Welford), Student-t confidence
//!   intervals, merge support for parallel aggregation.
//! * [`percentile`] — exact order statistics over collected samples.
//! * [`histogram`] — fixed-bin histograms for error-distribution checks
//!   (experiment E5).
//! * [`series`] — named (x, y) series, the in-memory form of every
//!   figure, with CSV export.
//! * [`table`] — markdown/CSV table rendering for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod percentile;
pub mod series;
pub mod stats;
pub mod table;

pub use histogram::Histogram;
pub use percentile::Percentiles;
pub use series::{Figure, Series};
pub use stats::Summary;
pub use table::Table;
