//! Markdown / CSV table rendering.
//!
//! EXPERIMENTS.md is generated from [`Table`]s: a header row plus string
//! cells, rendered with aligned columns so the committed file is
//! readable as plain text too.

use serde::{Deserialize, Serialize};

/// A simple rectangular table of strings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.header.len()
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// If the row width does not match the header.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Render as a GitHub-flavoured markdown table with padded columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as CSV (naive quoting: cells containing commas are
    /// wrapped in double quotes).
    pub fn to_csv(&self) -> String {
        let quote = |c: &String| {
            if c.contains(',') {
                format!("\"{c}\"")
            } else {
                c.clone()
            }
        };
        let mut out = self.header.iter().map(quote).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["n", "ST", "FST"]);
        t.push_row(["50", "310", "305"]);
        t.push_row(["1000", "820", "2410"]);
        t
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.width(), 3);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| n "));
        assert!(lines[1].chars().all(|c| "|-".contains(c)));
        assert!(lines[3].contains("1000"));
        // Columns align: every line has the same length.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_shape_and_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1,5", "x"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",x\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }
}
