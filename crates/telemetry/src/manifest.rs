//! Run manifests: the per-run exportable record.
//!
//! A [`RunManifest`] bundles what a performance reader needs to trust a
//! number: the configuration that produced the run (echoed as ordered
//! key/value strings — protocol, population, seed, engine, workers,
//! faults), the total wall clock, and the full [`Telemetry`] registry.
//! Two text formats are emitted per run:
//!
//! * **JSON** ([`RunManifest::to_json`]) — the machine-readable record
//!   `perf_inspect` consumes; [`ManifestSummary::parse`] reads it back
//!   without needing the original histograms.
//! * **Prometheus text exposition** ([`RunManifest::to_prometheus`]) —
//!   counters as `counter`, gauges as `gauge`, histograms as `summary`
//!   with p50/p95/p99 quantile rows, every sample labelled with
//!   `run="<label>"` so multiple cells can be concatenated or scraped
//!   side by side.
//!
//! Quantiles are materialized at export time (p50/p95/p99 plus
//! min/max), so the JSON stays small and the reader never re-derives
//! bucket math.

use crate::histogram::LogHistogram;
use crate::json::{escape, Value};
use crate::registry::Telemetry;

/// One run's exportable telemetry record.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Short run identifier (e.g. `st_n200`), used as the Prometheus
    /// `run` label and echoed into the JSON.
    pub label: String,
    /// Ordered configuration echo (key, rendered value).
    pub config: Vec<(String, String)>,
    /// Total wall clock of the run in nanoseconds.
    pub wall_clock_ns: u64,
    /// The recorded registry.
    pub telemetry: Telemetry,
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn histogram_json(h: &LogHistogram) -> String {
    format!(
        "{{\"count\": {}, \"total\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        h.count(),
        h.sum(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        h.quantile(0.5).unwrap_or(0),
        h.quantile(0.95).unwrap_or(0),
        h.quantile(0.99).unwrap_or(0),
    )
}

/// Sanitize a dotted metric key into a Prometheus metric name.
fn prom_name(key: &str) -> String {
    let mut name = String::with_capacity(key.len() + 6);
    name.push_str("ffd2d_");
    for c in key.chars() {
        if c.is_ascii_alphanumeric() {
            name.push(c);
        } else {
            name.push('_');
        }
    }
    name
}

impl RunManifest {
    /// Serialize to the manifest JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"ffd2d-telemetry/1\",\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", escape(&self.label)));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": \"{}\"", escape(k), escape(v)));
        }
        out.push_str("\n  },\n");
        out.push_str(&format!("  \"wall_clock_ns\": {},\n", self.wall_clock_ns));
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.telemetry.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), v));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.telemetry.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), fmt_f64(v)));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"timers\": {");
        for (i, (k, h)) in self.telemetry.timers().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), histogram_json(h)));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"observations\": {");
        for (i, (k, h)) in self.telemetry.observations().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), histogram_json(h)));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Serialize to a Prometheus-style text exposition.
    pub fn to_prometheus(&self) -> String {
        let run = escape(&self.label);
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("# ffd2d run manifest: {run}\n"));
        out.push_str("# TYPE ffd2d_wall_clock_ns gauge\n");
        out.push_str(&format!(
            "ffd2d_wall_clock_ns{{run=\"{run}\"}} {}\n",
            self.wall_clock_ns
        ));
        for (k, v) in self.telemetry.counters() {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name}{{run=\"{run}\"}} {v}\n"));
        }
        for (k, v) in self.telemetry.gauges() {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name}{{run=\"{run}\"}} {}\n", fmt_f64(v)));
        }
        let summaries = self.telemetry.timers().chain(self.telemetry.observations());
        for (k, h) in summaries {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{name}{{run=\"{run}\",quantile=\"{label}\"}} {}\n",
                    h.quantile(q).unwrap_or(0)
                ));
            }
            out.push_str(&format!("{name}_sum{{run=\"{run}\"}} {}\n", h.sum()));
            out.push_str(&format!("{name}_count{{run=\"{run}\"}} {}\n", h.count()));
        }
        out
    }
}

/// One exported histogram (timer or observation) as read back from a
/// manifest: pre-materialized quantiles, no buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Metric key (e.g. `engine.slot.sync`).
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Saturating sum of samples (nanoseconds for timers).
    pub total: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// A manifest read back from its JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestSummary {
    /// Run identifier.
    pub label: String,
    /// Ordered configuration echo.
    pub config: Vec<(String, String)>,
    /// Total wall clock in nanoseconds.
    pub wall_clock_ns: u64,
    /// Counters in key order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in key order.
    pub gauges: Vec<(String, f64)>,
    /// Timer summaries in key order.
    pub timers: Vec<HistogramSummary>,
    /// Observation summaries in key order.
    pub observations: Vec<HistogramSummary>,
}

fn summary_from(name: &str, v: &Value) -> Result<HistogramSummary, String> {
    let want = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("manifest JSON: histogram {name:?} missing {key}"))
    };
    Ok(HistogramSummary {
        name: name.to_string(),
        count: want("count")?,
        total: want("total")?,
        min: want("min")?,
        max: want("max")?,
        p50: want("p50")?,
        p95: want("p95")?,
        p99: want("p99")?,
    })
}

impl ManifestSummary {
    /// Parse a manifest JSON document.
    pub fn parse(text: &str) -> Result<ManifestSummary, String> {
        let root = Value::parse(text)?;
        match root.get("schema").and_then(Value::as_str) {
            Some("ffd2d-telemetry/1") => {}
            Some(other) => return Err(format!("manifest JSON: unknown schema {other:?}")),
            None => return Err("manifest JSON: missing schema field".to_string()),
        }
        let label = root
            .get("label")
            .and_then(Value::as_str)
            .ok_or("manifest JSON: missing label")?
            .to_string();
        let wall_clock_ns = root
            .get("wall_clock_ns")
            .and_then(Value::as_u64)
            .ok_or("manifest JSON: missing wall_clock_ns")?;
        let mut config = Vec::new();
        if let Some(fields) = root.get("config").and_then(Value::as_obj) {
            for (k, v) in fields {
                let v = v
                    .as_str()
                    .ok_or_else(|| format!("manifest JSON: config {k:?} must be a string"))?;
                config.push((k.clone(), v.to_string()));
            }
        }
        let mut counters = Vec::new();
        if let Some(fields) = root.get("counters").and_then(Value::as_obj) {
            for (k, v) in fields {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("manifest JSON: counter {k:?} must be a u64"))?;
                counters.push((k.clone(), v));
            }
        }
        let mut gauges = Vec::new();
        if let Some(fields) = root.get("gauges").and_then(Value::as_obj) {
            for (k, v) in fields {
                gauges.push((k.clone(), v.as_f64().unwrap_or(f64::NAN)));
            }
        }
        let mut timers = Vec::new();
        if let Some(fields) = root.get("timers").and_then(Value::as_obj) {
            for (k, v) in fields {
                timers.push(summary_from(k, v)?);
            }
        }
        let mut observations = Vec::new();
        if let Some(fields) = root.get("observations").and_then(Value::as_obj) {
            for (k, v) in fields {
                observations.push(summary_from(k, v)?);
            }
        }
        Ok(ManifestSummary {
            label,
            config,
            wall_clock_ns,
            counters,
            gauges,
            timers,
            observations,
        })
    }

    /// Counter value by key (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Whether the manifest recorded a counter under `key` at all —
    /// distinguishes "instrumented but zero" from "never emitted"
    /// (e.g. the gain cache disabled), which `counter` conflates.
    pub fn has_counter(&self, key: &str) -> bool {
        self.counters.iter().any(|(k, _)| k == key)
    }

    /// Config echo value by key.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_manifest() -> RunManifest {
        let mut t = Telemetry::new();
        t.add("engine.slots_materialized", 1234);
        t.add("medium.gain_cache_hits", 88);
        t.gauge("medium.last_workers", 4.0);
        for i in 0..100u64 {
            t.record_ns("engine.slot.sync", 1000 + i * 10);
            t.observe("medium.pairs_per_slot", i);
        }
        RunManifest {
            label: "st_n50".to_string(),
            config: vec![
                ("protocol".to_string(), "st".to_string()),
                ("n".to_string(), "50".to_string()),
                ("seed".to_string(), "7".to_string()),
            ],
            wall_clock_ns: 5_000_000,
            telemetry: t,
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let m = sample_manifest();
        let parsed = ManifestSummary::parse(&m.to_json()).unwrap();
        assert_eq!(parsed.label, "st_n50");
        assert_eq!(parsed.wall_clock_ns, 5_000_000);
        assert_eq!(parsed.config_value("protocol"), Some("st"));
        assert_eq!(parsed.config_value("n"), Some("50"));
        assert_eq!(parsed.counter("engine.slots_materialized"), 1234);
        assert_eq!(parsed.counter("medium.gain_cache_hits"), 88);
        assert_eq!(
            parsed.gauges,
            vec![("medium.last_workers".to_string(), 4.0)]
        );
        assert_eq!(parsed.timers.len(), 1);
        let t = &parsed.timers[0];
        assert_eq!(t.name, "engine.slot.sync");
        assert_eq!(t.count, 100);
        assert_eq!(
            t.p50,
            m.telemetry
                .timer("engine.slot.sync")
                .unwrap()
                .quantile(0.5)
                .unwrap()
        );
        assert_eq!(parsed.observations.len(), 1);
        assert_eq!(parsed.observations[0].max, 99);
    }

    #[test]
    fn prometheus_exposition_has_typed_samples() {
        let text = sample_manifest().to_prometheus();
        assert!(text.contains("# TYPE ffd2d_engine_slots_materialized counter"));
        assert!(text.contains("ffd2d_engine_slots_materialized{run=\"st_n50\"} 1234"));
        assert!(text.contains("# TYPE ffd2d_medium_last_workers gauge"));
        assert!(text.contains("# TYPE ffd2d_engine_slot_sync summary"));
        assert!(text.contains("ffd2d_engine_slot_sync{run=\"st_n50\",quantile=\"0.5\"}"));
        assert!(text.contains("ffd2d_engine_slot_sync_count{run=\"st_n50\"} 100"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.contains("{run=\"st_n50\""),
                "unlabelled sample: {line}"
            );
        }
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let doc = r#"{"schema": "ffd2d-telemetry/999", "label": "x", "wall_clock_ns": 1}"#;
        assert!(ManifestSummary::parse(doc).is_err());
        assert!(ManifestSummary::parse(r#"{"label": "x"}"#).is_err());
    }
}
