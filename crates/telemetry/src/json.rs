//! Minimal JSON reader for run manifests.
//!
//! The workspace's `serde` is an inert offline stub (derives compile
//! but do nothing), so manifests are written by hand in
//! [`crate::manifest`] and read back here — the same approach
//! `ffd2d-chaos` takes for `--faults PLAN.json` files. Only the subset
//! the manifest schema needs is implemented: objects, arrays, strings
//! without escapes, numbers, `true`/`false`/`null`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers above 2^53 lose precision — manifest
    /// fields stay far below that in practice).
    Num(f64),
    /// A string without escape sequences.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, field order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete document (rejecting trailing data).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        if p.peek().is_some() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("manifest JSON: {msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err(self.err("escape sequences are not supported"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }
}

/// Escape a string for embedding in a JSON document. Control
/// characters, quotes and backslashes never appear in metric keys or
/// config echoes, but escape defensively anyway (the parser above
/// rejects escapes, so writers should avoid producing them — this is a
/// belt for hand-edited configs).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_round_trip() {
        let v = Value::parse(r#"{"a": 1, "b": [true, null, "x"], "c": {"d": -2.5}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Value::as_f64),
            Some(-2.5)
        );
        match v.get("b") {
            Some(Value::Arr(items)) => {
                assert_eq!(items[0], Value::Bool(true));
                assert_eq!(items[1], Value::Null);
                assert_eq!(items[2].as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn bad_documents_are_rejected() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "{} extra", "tru"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn negative_numbers_are_not_u64() {
        let v = Value::parse(r#"{"n": -3}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), None);
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-3.0));
    }
}
