//! # ffd2d-telemetry — self-profiling for the simulator itself
//!
//! `ffd2d-trace` answers *what the protocol did* (fires, decodes,
//! merges); this crate answers *where the simulator's wall clock went*
//! (slot loop, medium resolution, calendar-queue churn, shard balance).
//! The two layers are deliberately parallel in design and disjoint in
//! content:
//!
//! ```text
//!                    ┌──────────────────────────────┐
//!   protocol events  │  ffd2d-trace   (TraceSink)   │  → JSONL, timelines
//!                    ├──────────────────────────────┤
//!   simulator perf   │  ffd2d-telemetry (Recorder)  │  → manifests, .prom
//!                    └──────────────────────────────┘
//! ```
//!
//! The design constraint is inherited from the trace layer: telemetry
//! must cost **nothing when off** and must be **outcome-neutral when
//! on**. Engines are monomorphized over the [`Recorder`] type;
//! [`NullRecorder`] advertises [`Recorder::ENABLED`]` = false`, so every
//! instrumentation site — including the `Instant::now()` reads — is
//! dead code the optimizer removes. An enabled recorder only ever
//! *observes*: it draws no randomness, touches no protocol state, and
//! writes nothing into `RunOutcome`s or trace JSONL, so enabling it is
//! provably bit-neutral (locked by `tests/telemetry.rs` in the
//! workspace root).
//!
//! Building blocks:
//!
//! * [`Recorder`] / [`NullRecorder`] — the zero-cost-off trait pair
//!   (the analogue of `TraceSink` / `NullSink`).
//! * [`LogHistogram`] — power-of-two-bucketed `u64` histogram for
//!   nanosecond timings and per-slot magnitudes; saturating, mergeable
//!   across shards.
//! * [`Telemetry`] — the in-memory registry: monotonic counters,
//!   gauges, timer histograms and value observations keyed by
//!   `&'static str`.
//! * [`RunManifest`] — one run's exportable record (config echo, wall
//!   clock, the registry) with a JSON writer, a Prometheus-style text
//!   exposition, and a parser for `perf_inspect`-style consumers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod manifest;
pub mod recorder;
pub mod registry;

pub use histogram::LogHistogram;
pub use manifest::{HistogramSummary, ManifestSummary, RunManifest};
pub use recorder::{NullRecorder, Recorder};
pub use registry::Telemetry;
