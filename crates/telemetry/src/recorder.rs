//! The zero-cost-off recorder trait.
//!
//! Mirrors `ffd2d-trace`'s `TraceSink` design: engines are generic over
//! `R: Recorder`, and [`NullRecorder`] sets [`Recorder::ENABLED`] to
//! `false` so every instrumentation site monomorphizes to nothing. The
//! timing helpers ([`Recorder::start`] / [`Recorder::stop`]) fold the
//! enabled check into the clock read itself: with a disabled recorder
//! `start()` is a constant `None` and `Instant::now()` is never
//! reached, which is what makes the "telemetry off costs nothing"
//! claim hold at the machine-code level (pinned by the
//! `telemetry_overhead` bench).

use std::time::Instant;

/// Consumer of simulator performance measurements.
///
/// All keys are `&'static str` so recording is allocation-free on the
/// hot path; the registry only interns references.
pub trait Recorder {
    /// Compile-time enablement flag. Instrumentation sites guard any
    /// non-trivial work (clock reads, histogram math) behind
    /// `R::ENABLED` so a disabled recorder compiles out entirely.
    const ENABLED: bool = true;

    /// Increment the monotonic counter `key` by `delta` (saturating).
    fn add(&mut self, key: &'static str, delta: u64);

    /// Set the gauge `key` to `value` (last write wins).
    fn gauge(&mut self, key: &'static str, value: f64);

    /// Record one dimensionless magnitude (queue depth, pair count…)
    /// into the log-bucketed histogram `key`.
    fn observe(&mut self, key: &'static str, value: u64);

    /// Record one wall-clock duration in nanoseconds into the
    /// log-bucketed timer histogram `key`.
    fn record_ns(&mut self, key: &'static str, ns: u64);

    /// Begin a scoped timing. Returns `None` — without touching the
    /// clock — when the recorder is disabled.
    #[inline(always)]
    fn start(&self) -> Option<Instant> {
        if Self::ENABLED {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// End a scoped timing started by [`Recorder::start`], feeding the
    /// elapsed nanoseconds into the timer histogram `key`.
    #[inline(always)]
    fn stop(&mut self, key: &'static str, started: Option<Instant>) {
        if let Some(t0) = started {
            let ns = t0.elapsed().as_nanos();
            self.record_ns(key, u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

/// The recorder that records nothing — the default everywhere.
///
/// `ENABLED = false` turns every instrumentation site into dead code;
/// an engine monomorphized over `NullRecorder` is byte-for-byte the
/// uninstrumented engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _key: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&mut self, _key: &'static str, _value: f64) {}

    #[inline(always)]
    fn observe(&mut self, _key: &'static str, _value: u64) {}

    #[inline(always)]
    fn record_ns(&mut self, _key: &'static str, _ns: u64) {}
}

/// Forward through mutable references so engines can hand out `&mut R`
/// internally without re-threading generics.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn add(&mut self, key: &'static str, delta: u64) {
        (**self).add(key, delta);
    }

    #[inline(always)]
    fn gauge(&mut self, key: &'static str, value: f64) {
        (**self).gauge(key, value);
    }

    #[inline(always)]
    fn observe(&mut self, key: &'static str, value: u64) {
        (**self).observe(key, value);
    }

    #[inline(always)]
    fn record_ns(&mut self, key: &'static str, ns: u64) {
        (**self).record_ns(key, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_at_compile_time() {
        const { assert!(!NullRecorder::ENABLED) };
        // And its scoped-timing helper never touches the clock.
        let rec = NullRecorder;
        assert!(rec.start().is_none());
    }

    #[test]
    fn forwarding_preserves_the_enabled_flag() {
        const { assert!(!<&mut NullRecorder as Recorder>::ENABLED) };
        const { assert!(<&mut crate::Telemetry as Recorder>::ENABLED) };
    }

    #[test]
    fn stop_without_start_is_a_no_op() {
        let mut t = crate::Telemetry::new();
        t.stop("x", None);
        assert!(t.timers().next().is_none());
    }
}
