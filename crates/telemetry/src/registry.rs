//! The in-memory metrics registry.

use std::collections::BTreeMap;

use crate::histogram::LogHistogram;
use crate::recorder::Recorder;

/// An enabled [`Recorder`]: counters, gauges, timer histograms and
/// value observations, keyed by `&'static str`.
///
/// `BTreeMap` keeps iteration (and therefore every exported artifact)
/// in deterministic key order. Counter arithmetic saturates — the same
/// policy as `ffd2d_sim::counters::Counters` — so fleet-level merges
/// across shards or sweep cells clamp at `u64::MAX` instead of
/// wrapping.
#[derive(Debug, Default, Clone)]
pub struct Telemetry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    timers: BTreeMap<&'static str, LogHistogram>,
    observations: BTreeMap<&'static str, LogHistogram>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Current value of counter `key` (0 when never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of gauge `key`.
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Timer histogram `key`, if any duration was recorded.
    pub fn timer(&self, key: &str) -> Option<&LogHistogram> {
        self.timers.get(key)
    }

    /// Observation histogram `key`, if any value was recorded.
    pub fn observation(&self, key: &str) -> Option<&LogHistogram> {
        self.observations.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All timer histograms in key order.
    pub fn timers(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.timers.iter().map(|(&k, v)| (k, v))
    }

    /// All observation histograms in key order.
    pub fn observations(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.observations.iter().map(|(&k, v)| (k, v))
    }

    /// Nothing recorded yet?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.timers.is_empty()
            && self.observations.is_empty()
    }

    /// Fold another registry into this one: counters and histograms
    /// merge saturating; gauges take the other side's value (last
    /// write wins, matching [`Recorder::gauge`] semantics).
    pub fn merge(&mut self, other: &Telemetry) {
        for (&k, &v) in &other.counters {
            let slot = self.counters.entry(k).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (&k, &v) in &other.gauges {
            self.gauges.insert(k, v);
        }
        for (&k, h) in &other.timers {
            self.timers.entry(k).or_default().merge(h);
        }
        for (&k, h) in &other.observations {
            self.observations.entry(k).or_default().merge(h);
        }
    }
}

impl Recorder for Telemetry {
    #[inline]
    fn add(&mut self, key: &'static str, delta: u64) {
        let slot = self.counters.entry(key).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    #[inline]
    fn gauge(&mut self, key: &'static str, value: f64) {
        self.gauges.insert(key, value);
    }

    #[inline]
    fn observe(&mut self, key: &'static str, value: u64) {
        self.observations.entry(key).or_default().record(value);
    }

    #[inline]
    fn record_ns(&mut self, key: &'static str, ns: u64) {
        self.timers.entry(key).or_default().record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut t = Telemetry::new();
        t.add("a", 2);
        t.add("a", 3);
        t.add("b", u64::MAX);
        t.add("b", 7);
        assert_eq!(t.counter("a"), 5);
        assert_eq!(t.counter("b"), u64::MAX, "saturates, never wraps");
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn gauges_take_the_last_write() {
        let mut t = Telemetry::new();
        t.gauge("load", 0.25);
        t.gauge("load", 0.75);
        assert_eq!(t.gauge_value("load"), Some(0.75));
    }

    #[test]
    fn timers_and_observations_are_separate_namespaces() {
        let mut t = Telemetry::new();
        t.record_ns("x", 100);
        t.observe("x", 9);
        assert_eq!(t.timer("x").unwrap().count(), 1);
        assert_eq!(t.observation("x").unwrap().sum(), 9);
    }

    #[test]
    fn merge_matches_interleaved_recording() {
        let mut whole = Telemetry::new();
        let mut a = Telemetry::new();
        let mut b = Telemetry::new();
        for i in 0..100u64 {
            let shard = if i % 2 == 0 { &mut a } else { &mut b };
            shard.add("n", i);
            shard.record_ns("t", i * 31);
            shard.observe("o", i / 3);
            whole.add("n", i);
            whole.record_ns("t", i * 31);
            whole.observe("o", i / 3);
        }
        a.merge(&b);
        assert_eq!(a.counter("n"), whole.counter("n"));
        assert_eq!(
            a.timer("t").unwrap().buckets(),
            whole.timer("t").unwrap().buckets()
        );
        assert_eq!(
            a.observation("o").unwrap().sum(),
            whole.observation("o").unwrap().sum()
        );
    }

    #[test]
    fn merge_saturates_counters_across_shards() {
        let mut a = Telemetry::new();
        let mut b = Telemetry::new();
        a.add("big", u64::MAX - 1);
        b.add("big", 17);
        a.merge(&b);
        assert_eq!(a.counter("big"), u64::MAX);
    }
}
