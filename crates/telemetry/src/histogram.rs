//! Log-bucketed `u64` histograms.
//!
//! Timings span six orders of magnitude (a warped-past idle gap costs
//! tens of nanoseconds; a 5000-device slot resolution costs
//! milliseconds), so uniform bins are useless and exact samples are too
//! heavy for a per-slot hot path. [`LogHistogram`] buckets by
//! power-of-two magnitude: recording is an `ilog2` plus one increment,
//! the memory footprint is a fixed 65-slot array, and quantiles come
//! back with ≤2× relative error — plenty for "where did the wall clock
//! go" questions.

/// Number of buckets: one for zero plus one per `u64` bit.
pub const BUCKETS: usize = 65;

/// A fixed-size power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value `0`; bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i - 1]` (the last bucket tops out at `u64::MAX`). Every
/// representable `u64` lands in a bucket, so there is no overflow or
/// underflow path. Counts and the running sum saturate rather than
/// wrap, and [`LogHistogram::merge`] saturates too, so shard-local
/// histograms can be folded together without overflow concerns.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` lands in.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize + 1
        }
    }

    /// Inclusive `[lo, hi]` range of bucket `i`; `None` for `i ≥ 65`.
    pub fn bucket_bounds(i: usize) -> Option<(u64, u64)> {
        match i {
            0 => Some((0, 0)),
            1..=63 => Some((1 << (i - 1), (1 << i) - 1)),
            64 => Some((1 << 63, u64::MAX)),
            _ => None,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_index(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples (`None` when empty; saturated at the sum).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Raw bucket counts (index via [`LogHistogram::bucket_bounds`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`): the upper bound of the
    /// bucket containing the target rank, clamped to the observed
    /// `[min, max]`. `None` when empty. Relative error is bounded by
    /// the bucket width (≤2×).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                let (_, hi) = Self::bucket_bounds(i).expect("i < BUCKETS");
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one (saturating per bucket and
    /// on count/sum) — the shard-fold operation.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_land_where_documented() {
        // Zero has its own bucket.
        assert_eq!(LogHistogram::bucket_index(0), 0);
        // Powers of two open a new bucket; one-less stays below.
        for k in 1..=63u32 {
            let p = 1u64 << k;
            assert_eq!(LogHistogram::bucket_index(p), k as usize + 1, "2^{k}");
            assert_eq!(LogHistogram::bucket_index(p - 1), k as usize, "2^{k}-1");
            assert_eq!(LogHistogram::bucket_index(p + 1), k as usize + 1, "2^{k}+1");
        }
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = LogHistogram::bucket_bounds(i).unwrap();
            assert_eq!(
                lo, expected_lo,
                "bucket {i} starts where the previous ended"
            );
            assert!(hi >= lo);
            // Each value in [lo, hi] maps back to bucket i.
            assert_eq!(LogHistogram::bucket_index(lo), i);
            assert_eq!(LogHistogram::bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket ends at u64::MAX");
        assert_eq!(LogHistogram::bucket_bounds(BUCKETS), None);
    }

    #[test]
    fn stats_track_min_max_sum() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        for v in [3, 900, 0, 17] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 920);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(900));
        assert!((h.mean().unwrap() - 230.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_bucket_accurate_and_clamped() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 127]
        }
        h.record(1_000_000); // bucket [2^19, 2^20-1]
                             // p50 falls in the 100s bucket: upper bound 127, within 2x.
        assert_eq!(h.quantile(0.5), Some(127));
        // p100 clamps to the observed max, not the bucket's 2^20-1.
        assert_eq!(h.quantile(1.0), Some(1_000_000));
        // p0 clamps up to the observed min.
        assert_eq!(h.quantile(0.0), Some(100));
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.sum(), u64::MAX, "sum saturates");
        assert_eq!(a.count(), 2);
        let mut c = LogHistogram::new();
        c.count = u64::MAX;
        c.buckets[5] = u64::MAX;
        a.merge(&c);
        a.merge(&c);
        assert_eq!(a.count(), u64::MAX, "count saturates");
        assert_eq!(a.buckets()[5], u64::MAX, "bucket counts saturate");
    }

    #[test]
    fn merge_matches_sequential_recording() {
        // Sharded recording (half the samples per shard, then merge)
        // must equal recording everything into one histogram.
        let samples: Vec<u64> = (0..200u64).map(|i| i * i * 37 % 100_000).collect();
        let mut whole = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        left.merge(&right);
        assert_eq!(left.buckets(), whole.buckets());
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.sum(), whole.sum());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }
}
