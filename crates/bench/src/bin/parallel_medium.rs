//! Intra-run parallel medium resolution wall-clock comparison.
//!
//! Usage: parallel_medium [--trials K] [--slots S]
//!
//! Drives [`FastMedium`] directly — no protocol on top, so the timing
//! isolates per-slot medium resolution — on the paper's dense Table-I
//! arena (100 m × 100 m, full shadowing + fading), where every
//! transmission is audible to most of the population and the
//! `(transmissions × receivers)` accumulation loop dominates. Each slot
//! resolves a mixed RACH1/RACH2 batch of 32 transmitters against all
//! n receivers, under worker counts {off, 1, 2, 4, 8}.
//!
//! The sharding is bit-identical by construction (locked by
//! `tests/medium_equivalence.rs`); this bench asserts the counters
//! match across arms anyway — a speedup over diverging work would be
//! bogus — and then reports only wall clock. Speedup saturates at the
//! host's physical core count (see the `cpus` field in the output; on
//! a single-core host every arm times the same loop).
//!
//! Writes `BENCH_parallel_medium.json` at the repo root: median
//! wall-clock per worker count at n ∈ {1000, 5000}, speedups vs. the
//! sequential baseline, and host metadata. Run with `--release` —
//! debug timings are meaningless.

use std::time::Instant;

use ffd2d_core::world::FastMedium;
use ffd2d_core::{Parallelism, ScenarioConfig, World};
use ffd2d_phy::codec::ServiceClass;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_sim::counters::Counters;
use ffd2d_sim::time::Slot;

/// The per-slot transmission batch: 32 senders spread over the
/// population, alternating fires (RACH1) and handshakes (RACH2) like a
/// converging merge round does.
fn batch(n: usize, slot: u64) -> Vec<ProximitySignal> {
    (0..32u32)
        .map(|k| {
            let sender = (k as u64 * (n as u64 / 32) + slot * 7) % n as u64;
            let sender = sender as u32;
            let kind = if k % 2 == 0 {
                FrameKind::Fire {
                    fragment: sender,
                    age: 0,
                }
            } else {
                FrameKind::HConnect {
                    to: sender ^ 1,
                    fragment: sender,
                    fragment_size: 1,
                    head: sender,
                }
            };
            ProximitySignal {
                sender,
                service: ServiceClass::KEEP_ALIVE,
                kind,
            }
        })
        .collect()
}

/// Resolve `slots` consecutive slots and return (counters, seconds).
fn run_arm(world: &World, n: usize, slots: u64) -> (Counters, f64) {
    let mut medium = FastMedium::new(n);
    let mut counters = Counters::new();
    let mut delivered = 0u64;
    let start = Instant::now();
    for s in 0..slots {
        let txs = batch(n, s);
        medium.resolve(world, Slot(s), &txs, &mut counters, |_, _, _| {
            delivered += 1;
        });
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(delivered > 0, "dense arena must deliver");
    (counters, secs)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let trials = value_of("--trials").unwrap_or(3) as usize;
    let slots = value_of("--slots").unwrap_or(60);

    let arms: [(&str, Parallelism); 5] = [
        ("off", Parallelism::Off),
        ("1", Parallelism::Fixed(1)),
        ("2", Parallelism::Fixed(2)),
        ("4", Parallelism::Fixed(4)),
        ("8", Parallelism::Fixed(8)),
    ];

    let mut rows = String::new();
    for (i, &n) in [1000usize, 5000].iter().enumerate() {
        let mut baseline_counters = None;
        let mut baseline_secs = 0.0;
        let mut cells = String::new();
        for (j, &(label, parallelism)) in arms.iter().enumerate() {
            let cfg = ScenarioConfig::table1(n)
                .seeded(0x9A_11)
                .with_parallelism(parallelism);
            let world = World::new(&cfg);
            let mut times: Vec<f64> = Vec::with_capacity(trials);
            let mut counters = Counters::new();
            for _ in 0..trials {
                let (c, secs) = run_arm(&world, n, slots);
                counters = c;
                times.push(secs);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
            let median = times[times.len() / 2];
            match &baseline_counters {
                None => {
                    baseline_counters = Some(counters);
                    baseline_secs = median;
                }
                Some(base) => assert_eq!(
                    &counters, base,
                    "arm {label} diverged at n={n} — bench would be bogus"
                ),
            }
            let speedup = baseline_secs / median;
            println!("n={n:5}  workers={label:3}  {median:8.3}s  speedup {speedup:5.2}x");
            if j > 0 {
                cells.push_str(", ");
            }
            cells.push_str(&format!(
                "{{\"workers\": \"{label}\", \"secs\": {median:.6}, \"speedup\": {speedup:.3}}}"
            ));
        }
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!("    {{\"n\": {n}, \"arms\": [{cells}]}}"));
    }

    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"parallel_medium\",\n  \
         \"scenario\": {{\"arena\": \"Table I, 100m x 100m, shadowing + fading\", \
         \"tx_per_slot\": 32, \"slots\": {slots}, \"seed\": 39441, \"trials\": {trials}, \
         \"metric\": \"median wall-clock seconds, FastMedium only\"}},\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}, \
         \"profile\": \"{}\"}},\n  \"results\": [\n{rows}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    std::fs::write("BENCH_parallel_medium.json", &json).expect("write BENCH_parallel_medium.json");
    eprintln!("wrote BENCH_parallel_medium.json (host cpus: {cpus})");
}
