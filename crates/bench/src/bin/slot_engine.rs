//! Stepped vs. event-driven engine wall-clock comparison.
//!
//! Usage: slot_engine [--trials K] [--horizon SLOTS]
//!
//! Runs the ST protocol under both [`EngineMode`]s on a *sparse-firing*
//! scenario: a 2 km ideal-channel arena (each fire is audible to a
//! handful of neighbours, so the spatial grid prunes medium resolution
//! to near-nothing) with the oscillator period stretched to 20 000
//! slots — a 20 s low-duty-cycle discovery beacon at 1 ms slots. The
//! stepped loop then spends almost all its time ticking idle
//! oscillators — exactly the work the event engine skips. In the
//! paper's dense 100 m arena every fire is resolved against all n
//! receivers and that medium work, identical under both engines,
//! swamps the tick loop; this bench isolates the engine difference.
//! Outcomes are asserted identical; only wall clock differs.
//!
//! The win scales with the mean wake gap (≈ period/n, shrinking as
//! devices synchronize onto shared fire slots), so the speedup column
//! decreases from n=100 to n=1000 at fixed period.
//!
//! Writes `BENCH_slot_engine.json` at the repo root: median wall-clock
//! per engine at n ∈ {100, 500, 1000}, speedup ratios, and host
//! metadata. Run with `--release` — debug timings are meaningless.

use std::time::Instant;

use ffd2d_core::{EngineMode, ScenarioConfig, StProtocol};
use ffd2d_sim::deployment::Meters;
use ffd2d_sim::time::SlotDuration;

/// The sparse-firing scenario: ideal channel, 2 km arena, 20 000-slot
/// oscillator period.
fn scenario(n: usize, horizon: u64, engine: EngineMode) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::table1(n)
        .seeded(0x51_07)
        .with_max_slots(SlotDuration(horizon))
        .with_engine(engine)
        .ideal_channel();
    cfg.sim.area_width = Meters(2000.0);
    cfg.sim.area_height = Meters(2000.0);
    cfg.protocol.period_slots = 20_000;
    cfg
}

/// Median wall-clock seconds over `trials` runs of `cfg`.
fn median_secs(cfg: &ScenarioConfig, trials: usize) -> f64 {
    let mut times: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            let out = StProtocol::run(cfg);
            let secs = start.elapsed().as_secs_f64();
            // Keep the run from being optimized out.
            assert!(out.counters.total_tx() > 0);
            secs
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let trials = value_of("--trials").unwrap_or(3) as usize;
    let horizon = value_of("--horizon").unwrap_or(100_000);

    let mut rows = String::new();
    for (i, &n) in [100usize, 500, 1000].iter().enumerate() {
        let stepped_cfg = scenario(n, horizon, EngineMode::Stepped);
        let event_cfg = scenario(n, horizon, EngineMode::EventDriven);

        // The comparison is only meaningful if both engines do the same
        // simulation; this is the equivalence the test suite locks.
        let a = StProtocol::run(&stepped_cfg);
        let b = StProtocol::run(&event_cfg);
        assert_eq!(a, b, "engines diverged at n={n} — bench would be bogus");

        let stepped = median_secs(&stepped_cfg, trials);
        let event = median_secs(&event_cfg, trials);
        let speedup = stepped / event;
        let slots_run = a.convergence_time.map(|t| t.0).unwrap_or(horizon);
        println!(
            "n={n:5}  stepped {stepped:8.3}s  event {event:8.3}s  speedup {speedup:5.2}x  \
             (converged: {}, slots: {slots_run})",
            a.converged(),
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"n\": {n}, \"stepped_s\": {stepped:.6}, \"event_s\": {event:.6}, \
             \"speedup\": {speedup:.3}, \"converged\": {}, \"slots_run\": {slots_run}}}",
            a.converged(),
        ));
    }

    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"slot_engine\",\n  \"protocol\": \"ST\",\n  \
         \"scenario\": {{\"arena\": \"ideal channel, 2km x 2km\", \"period_slots\": 20000, \
         \"horizon_slots\": {horizon}, \"seed\": 20743, \"trials\": {trials}, \
         \"metric\": \"median wall-clock seconds\"}},\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}, \
         \"profile\": \"{}\"}},\n  \"results\": [\n{rows}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    std::fs::write("BENCH_slot_engine.json", &json).expect("write BENCH_slot_engine.json");
    eprintln!("wrote BENCH_slot_engine.json");
}
