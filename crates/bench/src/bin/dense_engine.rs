//! Stepped vs. event-driven vs. adaptive engine wall-clock comparison
//! in the *dense* regime.
//!
//! Usage: dense_engine [--trials K]
//!
//! `slot_engine` measures the sparse regime the event engine was built
//! for; this bench measures the paper's own Table-I arena (100 m ×
//! 100 m, σ = 10 dB shadowing + Rayleigh fading, 100-slot oscillator
//! period), where at n ≥ 1000 nearly every slot carries fires and the
//! event engine's wake-up bookkeeping (touched-set maintenance, cursor
//! derivations, per-device wake pushes) is pure overhead on top of the
//! stepped loop it effectively degenerates into. The adaptive engine
//! detects that density per 256-slot window and cuts over to stepped
//! execution, so it should track the *best* fixed mode at every n —
//! within noise of stepped here, within noise of event in the sparse
//! bench — while staying bit-identical to both (asserted below before
//! any timing).
//!
//! Writes `BENCH_dense_engine.json` at the repo root: median wall-clock
//! per engine at n ∈ {1000, 5000}, adaptive-vs-fixed ratios, scheduler
//! telemetry (stale-wakeup and coalescing rates, cutover transitions)
//! from instrumented replays, and host metadata. Run with `--release` —
//! debug timings are meaningless.

use std::time::Instant;

use ffd2d_core::{EngineMode, ScenarioConfig, StProtocol, World};
use ffd2d_sim::time::SlotDuration;
use ffd2d_telemetry::Telemetry;

/// The paper's dense Table-I arena, horizon sized so the bench stays
/// affordable at n=5000 while still spanning several 256-slot density
/// windows (the adaptive engine needs at least one full window to cut
/// over).
fn scenario(n: usize, horizon: u64, engine: EngineMode) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(0xDE_45E)
        .with_max_slots(SlotDuration(horizon))
        .with_engine(engine)
}

/// Median wall-clock seconds over `trials` runs of `cfg`.
fn median_secs(cfg: &ScenarioConfig, trials: usize) -> f64 {
    let mut times: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            let out = StProtocol::run(cfg);
            let secs = start.elapsed().as_secs_f64();
            // Keep the run from being optimized out.
            assert!(out.counters.total_tx() > 0);
            secs
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    times[times.len() / 2]
}

/// Scheduler telemetry from one instrumented run: (scheduled, stale,
/// coalesced, fired, cutover transitions).
fn wake_telemetry(cfg: &ScenarioConfig) -> (u64, u64, u64, u64, u64) {
    let world = World::new(cfg);
    let mut rec = Telemetry::new();
    StProtocol::run_in_instrumented(&world, &mut ffd2d_trace::NullSink, &mut rec);
    (
        rec.counter("engine.wakeups_scheduled"),
        rec.counter("engine.wakeups_stale"),
        rec.counter("engine.coalesced_wakeups"),
        rec.counter("engine.wakeups_fired"),
        rec.counter("engine.cutover_transitions"),
    )
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let trials = value_of("--trials").unwrap_or(3) as usize;

    let mut rows = String::new();
    for (i, &(n, horizon)) in [(1000usize, 2_000u64), (5000, 600)].iter().enumerate() {
        let stepped_cfg = scenario(n, horizon, EngineMode::Stepped);
        let event_cfg = scenario(n, horizon, EngineMode::EventDriven);
        let adaptive_cfg = scenario(n, horizon, EngineMode::Adaptive);

        // The comparison is only meaningful if all three engines do the
        // same simulation — outcome struct included, counter for
        // counter. This is the equivalence the test suite locks.
        let a = StProtocol::run(&stepped_cfg);
        let b = StProtocol::run(&event_cfg);
        let c = StProtocol::run(&adaptive_cfg);
        assert_eq!(a, b, "stepped/event diverged at n={n} — bench bogus");
        assert_eq!(a, c, "stepped/adaptive diverged at n={n} — bench bogus");

        let stepped = median_secs(&stepped_cfg, trials);
        let event = median_secs(&event_cfg, trials);
        let adaptive = median_secs(&adaptive_cfg, trials);
        let vs_event = event / adaptive;
        let vs_best = stepped.min(event) / adaptive;

        let (ev_sched, ev_stale, ev_coal, ev_fired, _) = wake_telemetry(&event_cfg);
        let (ad_sched, ad_stale, ad_coal, ad_fired, ad_cuts) = wake_telemetry(&adaptive_cfg);
        let slots_run = a.convergence_time.map(|t| t.0).unwrap_or(horizon);

        println!(
            "n={n:5}  stepped {stepped:7.3}s  event {event:7.3}s  adaptive {adaptive:7.3}s  \
             adaptive-vs-event {vs_event:5.2}x  vs-best {vs_best:5.2}x  \
             (cutovers: {ad_cuts}, slots: {slots_run})"
        );
        println!(
            "         event    scheduled {ev_sched}, stale {:.1}%, coalesced {:.1}%, fired {ev_fired}",
            100.0 * rate(ev_stale, ev_sched),
            100.0 * rate(ev_coal, ev_sched),
        );
        println!(
            "         adaptive scheduled {ad_sched}, stale {:.1}%, coalesced {:.1}%, fired {ad_fired}",
            100.0 * rate(ad_stale, ad_sched),
            100.0 * rate(ad_coal, ad_sched),
        );

        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"n\": {n}, \"horizon_slots\": {horizon}, \"stepped_s\": {stepped:.6}, \
             \"event_s\": {event:.6}, \"adaptive_s\": {adaptive:.6}, \
             \"adaptive_vs_event\": {vs_event:.3}, \"adaptive_vs_best\": {vs_best:.3}, \
             \"converged\": {}, \"slots_run\": {slots_run}, \
             \"cutover_transitions\": {ad_cuts}, \
             \"event_wakeups_scheduled\": {ev_sched}, \"event_stale_rate\": {:.4}, \
             \"event_coalesced_rate\": {:.4}, \
             \"adaptive_wakeups_scheduled\": {ad_sched}, \"adaptive_stale_rate\": {:.4}, \
             \"adaptive_coalesced_rate\": {:.4}}}",
            a.converged(),
            rate(ev_stale, ev_sched),
            rate(ev_coal, ev_sched),
            rate(ad_stale, ad_sched),
            rate(ad_coal, ad_sched),
        ));
    }

    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"dense_engine\",\n  \"protocol\": \"ST\",\n  \
         \"scenario\": {{\"arena\": \"Table-I, 100m x 100m, shadowing + Rayleigh\", \
         \"period_slots\": 100, \"seed\": 910942, \"trials\": {trials}, \
         \"metric\": \"median wall-clock seconds\"}},\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}, \
         \"profile\": \"{}\"}},\n  \"results\": [\n{rows}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    std::fs::write("BENCH_dense_engine.json", &json).expect("write BENCH_dense_engine.json");
    eprintln!("wrote BENCH_dense_engine.json");
}
