//! Epoch-keyed gain cache wall-clock comparison: cached vs. direct
//! mean-gain recomputation in [`FastMedium`].
//!
//! Usage: gain_cache [--trials K] [--slots S]
//!
//! Drives the medium directly — no protocol on top — on the paper's
//! dense Table-I arena (100 m × 100 m, full shadowing + fading), where
//! every slot's 32-transmitter batch is audible to most of the
//! population. The population never moves, so after the first slot
//! every `(sender, cell)` row is a cache hit and the cached arm pays
//! only the per-slot fading draw; the `off` arm recomputes path loss +
//! shadowing for every pair every slot. That is the workload the
//! epoch cache is built for: static (or slowly-mixing) populations
//! between mobility steps.
//!
//! Caching is bit-identical by construction (locked by
//! `tests/gain_cache.rs`); this bench asserts the counters match
//! across arms anyway — a speedup over diverging work would be bogus —
//! and then reports only wall clock. Both arms run single-threaded
//! (`Parallelism::Off`) so the ratio isolates the cache, not the
//! sharding.
//!
//! Writes `BENCH_gain_cache.json` at the repo root: median wall-clock
//! per mode at n ∈ {1000, 5000}, speedups of cached over direct, and
//! host metadata. Run with `--release` — debug timings are
//! meaningless.

use std::time::Instant;

use ffd2d_core::world::FastMedium;
use ffd2d_core::{GainCacheMode, Parallelism, ScenarioConfig, World};
use ffd2d_phy::codec::ServiceClass;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_sim::counters::Counters;
use ffd2d_sim::time::Slot;

/// The per-slot transmission batch: 32 senders spread over the
/// population, alternating fires (RACH1) and handshakes (RACH2).
/// The batch cycles through 8 distinct transmitter pools — a merge
/// round re-fires the same heads and handshake partners for many
/// consecutive slots, so within an epoch the medium keeps seeing
/// senders it has already built rows for. (Contrast the
/// `parallel_medium` bench, which rotates senders every slot to keep
/// the accumulation loop cold.)
fn batch(n: usize, slot: u64) -> Vec<ProximitySignal> {
    (0..32u32)
        .map(|k| {
            let sender = (k as u64 * (n as u64 / 32) + (slot % 8) * 7) % n as u64;
            let sender = sender as u32;
            let kind = if k % 2 == 0 {
                FrameKind::Fire {
                    fragment: sender,
                    age: 0,
                }
            } else {
                FrameKind::HConnect {
                    to: sender ^ 1,
                    fragment: sender,
                    fragment_size: 1,
                    head: sender,
                }
            };
            ProximitySignal {
                sender,
                service: ServiceClass::KEEP_ALIVE,
                kind,
            }
        })
        .collect()
}

/// Resolve `slots` consecutive slots and return (counters, seconds).
fn run_arm(world: &World, n: usize, slots: u64) -> (Counters, f64) {
    let mut medium = FastMedium::new(n);
    let mut counters = Counters::new();
    let mut delivered = 0u64;
    let start = Instant::now();
    for s in 0..slots {
        let txs = batch(n, s);
        medium.resolve(world, Slot(s), &txs, &mut counters, |_, _, _| {
            delivered += 1;
        });
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(delivered > 0, "dense arena must deliver");
    (counters, secs)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let trials = value_of("--trials").unwrap_or(3) as usize;
    // 150 slots ≈ 19 reuse rounds per fill round: long enough that the
    // epoch-reuse steady state, not the first-epoch fill, sets the
    // median.
    let slots = value_of("--slots").unwrap_or(150);

    let arms: [(&str, GainCacheMode); 2] =
        [("off", GainCacheMode::Off), ("epoch", GainCacheMode::Epoch)];

    let mut rows = String::new();
    for (i, &n) in [1000usize, 5000].iter().enumerate() {
        let mut baseline_counters = None;
        let mut baseline_secs = 0.0;
        let mut cells = String::new();
        for (j, &(label, mode)) in arms.iter().enumerate() {
            let cfg = ScenarioConfig::table1(n)
                .seeded(0x9A_11)
                .with_parallelism(Parallelism::Off)
                .with_gain_cache(mode);
            let world = World::new(&cfg);
            let mut times: Vec<f64> = Vec::with_capacity(trials);
            let mut counters = Counters::new();
            for _ in 0..trials {
                let (c, secs) = run_arm(&world, n, slots);
                counters = c;
                times.push(secs);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
            let median = times[times.len() / 2];
            match &baseline_counters {
                None => {
                    baseline_counters = Some(counters);
                    baseline_secs = median;
                }
                Some(base) => assert_eq!(
                    &counters, base,
                    "arm {label} diverged at n={n} — bench would be bogus"
                ),
            }
            let speedup = baseline_secs / median;
            println!("n={n:5}  gain-cache={label:5}  {median:8.3}s  speedup {speedup:5.2}x");
            if j > 0 {
                cells.push_str(", ");
            }
            cells.push_str(&format!(
                "{{\"gain_cache\": \"{label}\", \"secs\": {median:.6}, \"speedup\": {speedup:.3}}}"
            ));
        }
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!("    {{\"n\": {n}, \"arms\": [{cells}]}}"));
    }

    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"gain_cache\",\n  \
         \"scenario\": {{\"arena\": \"Table I, 100m x 100m, shadowing + fading\", \
         \"tx_per_slot\": 32, \"slots\": {slots}, \"seed\": 39441, \"trials\": {trials}, \
         \"metric\": \"median wall-clock seconds, FastMedium only, single-threaded\"}},\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}, \
         \"profile\": \"{}\"}},\n  \"results\": [\n{rows}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    std::fs::write("BENCH_gain_cache.json", &json).expect("write BENCH_gain_cache.json");
    eprintln!("wrote BENCH_gain_cache.json (host cpus: {cpus})");
}
