//! Telemetry overhead: plain vs. disabled-recorder vs. enabled-recorder.
//!
//! Usage: telemetry_overhead [--trials K] [--tolerance PCT] [--passes P]
//!
//! The telemetry layer's central claim is zero-cost-off: running an
//! engine through `run_in_instrumented` with a [`NullRecorder`] must
//! monomorphize to the same machine code as the plain `run_in` path, so
//! the two arms should be wall-clock indistinguishable. This bench
//! locks that claim: it times three arms on the paper's dense Table-1
//! scenario (single-threaded medium, so the OS scheduler stays out of
//! the measurement) and **asserts** that the disabled-recorder overhead
//! is within `--tolerance` percent (default 2) of the plain arm.
//!
//! Shared-host noise is handled in three layers, because on a busy CI
//! box it is the same magnitude as the budget being gated:
//!
//! * each arm observation is the **min of 3** back-to-back micro-runs
//!   (noise is bursty and only ever adds time, so the minimum of a
//!   tight cluster is the cleanest observation);
//! * the estimator is the **median of paired per-iteration ratios**,
//!   with the arm order alternating every iteration, so slow drift and
//!   first-runner effects cancel inside each ratio;
//! * if a pass still exceeds the budget, the whole measurement is
//!   retried (up to `--passes`, default 3). This is sound because the
//!   claim under test is structural — both arms jump to the *same*
//!   monomorphized function — so a single clean pass proves there is no
//!   systematic overhead, while a real regression fails every pass.
//!
//! The enabled-[`Telemetry`] arm is reported for context but not
//! asserted — its cost is real (clock reads on every slot and medium
//! resolve) and allowed to show.
//!
//! All three arms are asserted outcome-identical before timing — an
//! overhead number for a different simulation would be meaningless.
//!
//! Writes `BENCH_telemetry_overhead.json` at the repo root. Run with
//! `--release` — debug timings are meaningless.

use std::time::Instant;

use ffd2d_core::{Parallelism, ScenarioConfig, StProtocol, World};
use ffd2d_sim::time::SlotDuration;
use ffd2d_telemetry::{NullRecorder, Telemetry};
use ffd2d_trace::NullSink;

fn time_secs<F: FnMut() -> u64>(mut run: F) -> f64 {
    let start = Instant::now();
    let tx = run();
    let secs = start.elapsed().as_secs_f64();
    // Keep the run from being optimized out.
    assert!(tx > 0);
    secs
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    xs[xs.len() / 2]
}

/// One measurement pass: `(plain_median_s, disabled_pct, enabled_pct)`.
fn measure(world: &World, trials: usize) -> (f64, f64, f64) {
    let min3 = |f: &mut dyn FnMut() -> f64| f().min(f()).min(f());
    let run_plain = || min3(&mut || time_secs(|| StProtocol::run_in(world).counters.total_tx()));
    let run_disabled = || {
        min3(&mut || {
            time_secs(|| {
                StProtocol::run_in_instrumented(world, &mut NullSink, &mut NullRecorder)
                    .counters
                    .total_tx()
            })
        })
    };
    let run_enabled = || {
        min3(&mut || {
            time_secs(|| {
                let mut rec = Telemetry::new();
                StProtocol::run_in_instrumented(world, &mut NullSink, &mut rec)
                    .counters
                    .total_tx()
            })
        })
    };

    let (mut plain_t, mut disabled_r, mut enabled_r) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..trials.max(3) {
        let (plain, disabled, enabled) = if i % 2 == 0 {
            let p = run_plain();
            let d = run_disabled();
            let e = run_enabled();
            (p, d, e)
        } else {
            let e = run_enabled();
            let d = run_disabled();
            let p = run_plain();
            (p, d, e)
        };
        plain_t.push(plain);
        disabled_r.push(disabled / plain);
        enabled_r.push(enabled / plain);
    }
    let plain = median(plain_t);
    let disabled_pct = (median(disabled_r) - 1.0) * 100.0;
    let enabled_pct = (median(enabled_r) - 1.0) * 100.0;
    (plain, disabled_pct, enabled_pct)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<f64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let trials = value_of("--trials").unwrap_or(12.0) as usize;
    let tolerance = value_of("--tolerance").unwrap_or(2.0);
    let passes = (value_of("--passes").unwrap_or(3.0) as usize).max(1);

    let n = 120;
    let horizon = 6_000u64;
    let cfg = ScenarioConfig::table1(n)
        .seeded(0x7E1E)
        .with_max_slots(SlotDuration(horizon))
        .with_parallelism(Parallelism::Off);
    let world = World::new(&cfg);

    // The overhead comparison is only meaningful if all arms run the
    // same simulation; this is the neutrality the test suite locks.
    let plain_out = StProtocol::run_in(&world);
    let disabled_out = StProtocol::run_in_instrumented(&world, &mut NullSink, &mut NullRecorder);
    let mut probe = Telemetry::new();
    let enabled_out = StProtocol::run_in_instrumented(&world, &mut NullSink, &mut probe);
    assert_eq!(plain_out, disabled_out, "NullRecorder perturbed the run");
    assert_eq!(plain_out, enabled_out, "Telemetry perturbed the run");
    assert!(
        probe.counter("engine.slots_materialized") > 0,
        "enabled arm recorded nothing — bench would compare no-ops"
    );

    let (mut plain, mut disabled_pct, mut enabled_pct) = (0.0, f64::INFINITY, 0.0);
    let mut passes_run = 0;
    for pass in 1..=passes {
        (plain, disabled_pct, enabled_pct) = measure(&world, trials);
        passes_run = pass;
        println!(
            "pass {pass}: n={n}  plain {plain:.4}s  \
             disabled-recorder {disabled_pct:+.2}%  enabled {enabled_pct:+.2}%"
        );
        if disabled_pct < tolerance {
            break;
        }
        eprintln!("pass {pass} exceeded the {tolerance}% budget; retrying (host noise?)");
    }
    let disabled = plain * (1.0 + disabled_pct / 100.0);
    let enabled = plain * (1.0 + enabled_pct / 100.0);

    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"protocol\": \"ST\",\n  \
         \"scenario\": {{\"arena\": \"table1 dense\", \"n\": {n}, \
         \"horizon_slots\": {horizon}, \"seed\": 32286, \"trials\": {trials}, \
         \"passes_run\": {passes_run}, \
         \"metric\": \"median of paired per-iteration ratios of min-of-3 micro-runs, \
single-threaded medium\"}},\n  \
         \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {cpus}, \
         \"profile\": \"{}\"}},\n  \"results\": {{\n    \
         \"plain_s\": {plain:.6},\n    \"disabled_recorder_s\": {disabled:.6},\n    \
         \"enabled_recorder_s\": {enabled:.6},\n    \
         \"disabled_overhead_pct\": {disabled_pct:.3},\n    \
         \"enabled_overhead_pct\": {enabled_pct:.3},\n    \
         \"tolerance_pct\": {tolerance}\n  }}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    std::fs::write("BENCH_telemetry_overhead.json", &json)
        .expect("write BENCH_telemetry_overhead.json");
    eprintln!("wrote BENCH_telemetry_overhead.json");

    assert!(
        disabled_pct < tolerance,
        "disabled-recorder overhead {disabled_pct:.2}% exceeds the {tolerance}% budget in \
         every pass — the zero-cost-off claim is broken"
    );
}
