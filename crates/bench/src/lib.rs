//! # ffd2d-bench — Criterion benchmarks
//!
//! One bench target per paper artefact plus substrate micro-benches:
//!
//! * `fig3_convergence` — wall time of full protocol trials (ST vs FST)
//!   at paper scales; regenerating Fig. 3's underlying simulations.
//! * `fig4_messages` — the same trials measured end-to-end with their
//!   message tallies reported; regenerating Fig. 4's metric.
//! * `complexity_ffa` — §V's O(n²) vs O(n log n) firefly update claim,
//!   in wall time.
//! * `substrates` — micro-benchmarks of the hot paths (channel
//!   sampling, medium resolution, MST construction, Zadoff–Chu
//!   correlation, RNG streams).
//!
//! Helpers here keep the bench targets small and consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ffd2d_core::{ScenarioConfig, World};
use ffd2d_sim::time::SlotDuration;

/// A standard bench scenario: Table-I radio, `n` devices, fixed seed
/// and a horizon that the protocols comfortably meet at bench scales.
pub fn bench_scenario(n: usize) -> ScenarioConfig {
    ScenarioConfig::table1(n)
        .seeded(0xBE_5C)
        .with_max_slots(SlotDuration(30_000))
}

/// A prebuilt world for the medium/channel micro-benches.
pub fn bench_world(n: usize) -> World {
    World::new(&bench_scenario(n))
}
