//! Fig. 4 bench — message accounting of full trials.
//!
//! Measures the protocols with message tallying enabled (it always is —
//! the tally is free) and prints the Fig. 4 metric per target: total
//! control messages until convergence for ST vs FST. The message counts
//! themselves are deterministic; Criterion guards the *cost* of
//! producing them from regressing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ffd2d_baseline::FstProtocol;
use ffd2d_bench::bench_world;
use ffd2d_core::StProtocol;

fn bench_messages(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_messages");
    group.sample_size(10);

    for &n in &[50usize, 100] {
        let world = bench_world(n);
        let st = StProtocol::run_in(&world);
        let fst = FstProtocol::run_in(&world);
        eprintln!(
            "[fig4] n={n}: ST msgs = {} (rach1 {}, rach2 {}, unicast {}), FST msgs = {}",
            st.messages(),
            st.counters.rach1_tx,
            st.counters.rach2_tx,
            st.counters.unicast_tx,
            fst.messages()
        );
        group.bench_with_input(BenchmarkId::new("st_count", n), &world, |b, w| {
            b.iter(|| black_box(StProtocol::run_in(w).messages()))
        });
        group.bench_with_input(BenchmarkId::new("fst_count", n), &world, |b, w| {
            b.iter(|| black_box(FstProtocol::run_in(w).messages()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_messages);
criterion_main!(benches);
