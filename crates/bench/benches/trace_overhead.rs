//! The zero-cost-off claim, measured.
//!
//! `StProtocol::run` monomorphizes against [`NullSink`]
//! (`ENABLED = false`), so every emission site must compile out: the
//! paired `untraced` vs. `null_sink` arms below must be within noise of
//! each other (same shape as the `grid_vs_dense` comparison that locked
//! the spatial-grid medium). The `counting_sink` arm shows what the
//! cheapest *enabled* sink costs, and the `medium` group isolates the
//! hot resolver path where the guard sits in the innermost loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ffd2d_bench::{bench_scenario, bench_world};
use ffd2d_core::world::FastMedium;
use ffd2d_core::StProtocol;
use ffd2d_phy::codec::ServiceClass;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_sim::counters::Counters;
use ffd2d_sim::time::{Slot, SlotDuration};
use ffd2d_trace::{CountingSink, NullSink};

fn bench_protocol_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead/st_run");
    for &n in &[50usize, 100] {
        let cfg = bench_scenario(n).with_max_slots(SlotDuration(30_000));
        group.bench_with_input(BenchmarkId::new("untraced", n), &cfg, |b, cfg| {
            b.iter(|| black_box(StProtocol::run(cfg)))
        });
        group.bench_with_input(BenchmarkId::new("null_sink", n), &cfg, |b, cfg| {
            b.iter(|| black_box(StProtocol::run_traced(cfg, &mut NullSink)))
        });
        group.bench_with_input(BenchmarkId::new("counting_sink", n), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sink = CountingSink::new();
                black_box(StProtocol::run_traced(cfg, &mut sink))
            })
        });
    }
    group.finish();
}

fn bench_medium_resolve(c: &mut Criterion) {
    let n = 500usize;
    let world = bench_world(n);
    let txs: Vec<ProximitySignal> = (0..8u32)
        .map(|k| ProximitySignal {
            sender: (k * 61) % n as u32,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: k,
                age: 0,
            },
        })
        .collect();
    let mut group = c.benchmark_group("trace_overhead/medium");
    let mut medium = FastMedium::new(n);
    group.bench_function("untraced", |b| {
        let mut counters = Counters::new();
        let mut slot = 0u64;
        b.iter(|| {
            slot += 1;
            medium.resolve(&world, Slot(slot), &txs, &mut counters, |r, s, p| {
                black_box((r, s.sender, p));
            });
        })
    });
    group.bench_function("null_sink", |b| {
        let mut counters = Counters::new();
        let mut slot = 0u64;
        b.iter(|| {
            slot += 1;
            medium.resolve_traced(
                &world,
                Slot(slot),
                &txs,
                &mut counters,
                &mut NullSink,
                |r, s, p, _| {
                    black_box((r, s.sender, p));
                },
            );
        })
    });
    group.bench_function("counting_sink", |b| {
        let mut counters = Counters::new();
        let mut sink = CountingSink::new();
        let mut slot = 0u64;
        b.iter(|| {
            slot += 1;
            medium.resolve_traced(
                &world,
                Slot(slot),
                &txs,
                &mut counters,
                &mut sink,
                |r, s, p, _| {
                    black_box((r, s.sender, p));
                },
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_run, bench_medium_resolve);
criterion_main!(benches);
