//! Substrate micro-benchmarks: the hot paths every trial hammers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ffd2d_bench::bench_world;
use ffd2d_core::world::FastMedium;
use ffd2d_graph::adjacency::WeightedGraph;
use ffd2d_graph::mst::{boruvka_max_st, kruskal_max_st, prim_max_st};
use ffd2d_graph::weight::W;
use ffd2d_phy::codec::ServiceClass;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_phy::zadoffchu::ZcSequence;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::Slot;
use rand::{Rng, RngCore};

fn bench_channel(c: &mut Criterion) {
    let world = bench_world(100);
    c.bench_function("channel/rx_dbm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let a = (i % 100) as u32;
            let z = ((i * 7) % 100) as u32;
            if a != z {
                black_box(world.rx_dbm(a, z, Slot(i)));
            }
        })
    });
}

fn bench_medium(c: &mut Criterion) {
    let world = bench_world(200);
    let mut medium = FastMedium::new(200);
    let txs: Vec<ProximitySignal> = (0..4u32)
        .map(|k| ProximitySignal {
            sender: k * 37,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: k,
                age: 0,
            },
        })
        .collect();
    c.bench_function("medium/resolve_4tx_200rx", |b| {
        let mut counters = Counters::new();
        let mut slot = 0u64;
        b.iter(|| {
            slot += 1;
            medium.resolve(&world, Slot(slot), &txs, &mut counters, |r, s, p| {
                black_box((r, s.sender, p));
            });
        })
    });
}

fn random_graph(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = StreamRng::new(seed, 0, StreamId::Experiment);
    let mut g = WeightedGraph::new(n);
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.5) {
                g.add_edge(a, b, W::new(rng.gen_range(-120.0..0.0)));
            }
        }
    }
    g
}

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    for &n in &[100usize, 300] {
        let g = random_graph(n, 3);
        group.bench_with_input(BenchmarkId::new("kruskal", n), &g, |b, g| {
            b.iter(|| black_box(kruskal_max_st(g)))
        });
        group.bench_with_input(BenchmarkId::new("prim", n), &g, |b, g| {
            b.iter(|| black_box(prim_max_st(g)))
        });
        group.bench_with_input(BenchmarkId::new("boruvka", n), &g, |b, g| {
            b.iter(|| black_box(boruvka_max_st(g)))
        });
    }
    group.finish();
}

fn bench_zadoff_chu(c: &mut Criterion) {
    let a = ZcSequence::new(129, 0, 839);
    let b2 = ZcSequence::new(421, 0, 839);
    c.bench_function("zc/correlate_839", |b| {
        b.iter(|| black_box(a.correlate(&b2)))
    });
    c.bench_function("zc/generate_839", |b| {
        b.iter(|| black_box(ZcSequence::new(129, 7, 839)))
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/stream_derivation", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(StreamRng::with_raw_stream(42, k, 3))
        })
    });
    c.bench_function("rng/next_u64", |b| {
        let mut rng = StreamRng::for_trial(1, 1);
        b.iter(|| black_box(rng.next_u64()))
    });
}

criterion_group!(
    benches,
    bench_channel,
    bench_medium,
    bench_mst,
    bench_zadoff_chu,
    bench_rng
);
criterion_main!(benches);
