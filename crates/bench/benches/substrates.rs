//! Substrate micro-benchmarks: the hot paths every trial hammers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ffd2d_bench::{bench_scenario, bench_world};
use ffd2d_core::world::{FastMedium, World};
use ffd2d_graph::adjacency::WeightedGraph;
use ffd2d_graph::mst::{boruvka_max_st, kruskal_max_st, prim_max_st};
use ffd2d_graph::weight::W;
use ffd2d_phy::codec::ServiceClass;
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_phy::medium::{Medium, Transmission};
use ffd2d_phy::zadoffchu::ZcSequence;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::Slot;
use rand::{Rng, RngCore};

fn bench_channel(c: &mut Criterion) {
    let world = bench_world(100);
    c.bench_function("channel/rx_dbm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let a = (i % 100) as u32;
            let z = ((i * 7) % 100) as u32;
            if a != z {
                black_box(world.rx_dbm(a, z, Slot(i)));
            }
        })
    });
}

fn bench_medium(c: &mut Criterion) {
    let world = bench_world(200);
    let mut medium = FastMedium::new(200);
    let txs: Vec<ProximitySignal> = (0..4u32)
        .map(|k| ProximitySignal {
            sender: k * 37,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: k,
                age: 0,
            },
        })
        .collect();
    c.bench_function("medium/resolve_4tx_200rx", |b| {
        let mut counters = Counters::new();
        let mut slot = 0u64;
        b.iter(|| {
            slot += 1;
            medium.resolve(&world, Slot(slot), &txs, &mut counters, |r, s, p| {
                black_box((r, s.sender, p));
            });
        })
    });
}

fn beacons(n: u32, k: u32) -> Vec<ProximitySignal> {
    (0..k)
        .map(|i| ProximitySignal {
            sender: (i * 7919) % n,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: i,
                age: 0,
            },
        })
        .collect()
}

/// The tentpole comparison: per-pair reference resolution (dense) versus
/// the spatial-grid medium with memoised link gains, at growing n. The
/// grid side must win from n ≥ 1000.
fn bench_grid_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_vs_dense");
    for &n in &[200usize, 1000, 2000] {
        let world = bench_world(n);
        let txs = beacons(n as u32, 8);

        let channel = world.reference_channel();
        let dense = Medium::default();
        let receivers: Vec<u32> = (0..n as u32).collect();
        let transmissions: Vec<Transmission> = txs.iter().map(|&s| Transmission::new(s)).collect();
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            let mut counters = Counters::new();
            let mut slot = 0u64;
            b.iter(|| {
                slot += 1;
                black_box(dense.resolve(
                    &channel,
                    Slot(slot),
                    &transmissions,
                    &receivers,
                    &mut counters,
                ));
            })
        });

        let mut fast = FastMedium::new(n);
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            let mut counters = Counters::new();
            let mut slot = 0u64;
            b.iter(|| {
                slot += 1;
                fast.resolve(&world, Slot(slot), &txs, &mut counters, |r, s, p| {
                    black_box((r, s.sender, p));
                });
            })
        });
    }
    group.finish();
}

/// The 5000-device sweep point the dense gain matrix could not reach:
/// O(n) construction plus grid-pruned resolution in a sparse arena at
/// the paper's device density.
fn bench_grid_5000(c: &mut Criterion) {
    use ffd2d_sim::deployment::Meters;
    // Ideal channel: the worst-case audible radius equals the 89 m
    // nominal range, so the grid genuinely prunes in the sparse arena
    // (Table-I shadowing would provably cover the whole area instead).
    let mut cfg = bench_scenario(5000).ideal_channel();
    // Keep Table-I density (0.01 devices/m²): 5000 devices in ~707 m².
    let side = (5000.0f64 / 0.01).sqrt();
    cfg.sim.area_width = Meters(side);
    cfg.sim.area_height = Meters(side);
    c.bench_function("grid/world_new_5000", |b| {
        b.iter(|| black_box(World::new(&cfg)))
    });
    let world = World::new(&cfg);
    let txs = beacons(5000, 50);
    let mut fast = FastMedium::new(5000);
    c.bench_function("grid/resolve_50tx_5000rx", |b| {
        let mut counters = Counters::new();
        let mut slot = 0u64;
        b.iter(|| {
            slot += 1;
            fast.resolve(&world, Slot(slot), &txs, &mut counters, |r, s, p| {
                black_box((r, s.sender, p));
            });
        })
    });
}

fn random_graph(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = StreamRng::new(seed, 0, StreamId::Experiment);
    let mut g = WeightedGraph::new(n);
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.5) {
                g.add_edge(a, b, W::new(rng.gen_range(-120.0..0.0)));
            }
        }
    }
    g
}

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    for &n in &[100usize, 300] {
        let g = random_graph(n, 3);
        group.bench_with_input(BenchmarkId::new("kruskal", n), &g, |b, g| {
            b.iter(|| black_box(kruskal_max_st(g)))
        });
        group.bench_with_input(BenchmarkId::new("prim", n), &g, |b, g| {
            b.iter(|| black_box(prim_max_st(g)))
        });
        group.bench_with_input(BenchmarkId::new("boruvka", n), &g, |b, g| {
            b.iter(|| black_box(boruvka_max_st(g)))
        });
    }
    group.finish();
}

fn bench_zadoff_chu(c: &mut Criterion) {
    let a = ZcSequence::new(129, 0, 839);
    let b2 = ZcSequence::new(421, 0, 839);
    c.bench_function("zc/correlate_839", |b| {
        b.iter(|| black_box(a.correlate(&b2)))
    });
    c.bench_function("zc/generate_839", |b| {
        b.iter(|| black_box(ZcSequence::new(129, 7, 839)))
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/stream_derivation", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(StreamRng::with_raw_stream(42, k, 3))
        })
    });
    c.bench_function("rng/next_u64", |b| {
        let mut rng = StreamRng::for_trial(1, 1);
        b.iter(|| black_box(rng.next_u64()))
    });
}

criterion_group!(
    benches,
    bench_channel,
    bench_medium,
    bench_grid_vs_dense,
    bench_grid_5000,
    bench_mst,
    bench_zadoff_chu,
    bench_rng
);
criterion_main!(benches);
