//! §V complexity bench — the O(n²) vs O(n log n) firefly update claim
//! in wall time (the comparison-count version lives in
//! `ffd2d-experiments::complexity`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;

use ffd2d_core::ffa::{ffa_naive, ffa_ranked, FfaConfig};
use ffd2d_sim::rng::{StreamId, StreamRng};

fn brightness(p: [f64; 2]) -> f64 {
    -((p[0] - 50.0).powi(2) + (p[1] - 50.0).powi(2))
}

fn population(n: usize) -> Vec<[f64; 2]> {
    let mut rng = StreamRng::new(0xBE, n as u64, StreamId::Experiment);
    (0..n)
        .map(|_| [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)])
        .collect()
}

fn bench_ffa(c: &mut Criterion) {
    let cfg = FfaConfig {
        iterations: 2,
        ..FfaConfig::default()
    };
    let mut group = c.benchmark_group("complexity_ffa");
    group.sample_size(10);

    for &n in &[100usize, 200, 400, 800] {
        let base = population(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &base, |b, base| {
            b.iter(|| {
                let mut pop = base.clone();
                let mut rng = StreamRng::new(1, 2, StreamId::Experiment);
                black_box(ffa_naive(&mut pop, brightness, &cfg, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("ranked", n), &base, |b, base| {
            b.iter(|| {
                let mut pop = base.clone();
                let mut rng = StreamRng::new(1, 2, StreamId::Experiment);
                black_box(ffa_ranked(&mut pop, brightness, &cfg, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ffa);
criterion_main!(benches);
