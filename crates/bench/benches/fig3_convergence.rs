//! Fig. 3 bench — full protocol trials at paper scales.
//!
//! Criterion measures the wall time of one complete trial (world
//! construction excluded; it is shared). The simulated convergence
//! times that Fig. 3 actually plots are printed once per target so a
//! bench run doubles as a smoke regeneration of the figure's left side;
//! the full sweep lives in `cargo run --release --bin fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ffd2d_baseline::FstProtocol;
use ffd2d_bench::bench_world;
use ffd2d_core::StProtocol;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_convergence");
    group.sample_size(10);

    for &n in &[50usize, 100, 200] {
        let world = bench_world(n);
        let st = StProtocol::run_in(&world);
        let fst = FstProtocol::run_in(&world);
        eprintln!(
            "[fig3] n={n}: ST conv = {:?} ms, FST conv = {:?} ms",
            st.convergence_time.map(|t| t.as_millis()),
            fst.convergence_time.map(|t| t.as_millis()),
        );
        group.bench_with_input(BenchmarkId::new("st", n), &world, |b, w| {
            b.iter(|| black_box(StProtocol::run_in(w)))
        });
        // The mesh baseline is only cheap below its collision wall;
        // bench it where it still converges.
        if n <= 100 {
            group.bench_with_input(BenchmarkId::new("fst", n), &world, |b, w| {
                b.iter(|| black_box(FstProtocol::run_in(w)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
