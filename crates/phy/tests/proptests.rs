//! Property-based tests for the PHY substrate.

use proptest::prelude::*;

use ffd2d_phy::codec::{RachCodec, ServiceClass};
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_phy::grid::PrachGrid;
use ffd2d_phy::zadoffchu::ZcSequence;
use ffd2d_sim::time::Slot;

fn frame_kinds() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        (any::<u32>(), any::<u8>()).prop_map(|(fragment, age)| FrameKind::Fire { fragment, age }),
        any::<u32>().prop_map(|to| FrameKind::DiscoveryReply { to }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<i32>()).prop_map(
            |(to, best_u, best_v, weight)| FrameKind::Report {
                to,
                best_u,
                best_v,
                weight
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(to, u, v)| FrameKind::MergeCmd {
            to,
            u,
            v
        }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(to, fragment, fragment_size, head)| FrameKind::HConnect {
                to,
                fragment,
                fragment_size,
                head
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(to, fragment, fragment_size, head)| FrameKind::HAccept {
                to,
                fragment,
                fragment_size,
                head
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(to, fragment, head)| FrameKind::NewFragment { to, fragment, head }),
    ]
}

proptest! {
    /// Wire format round-trips for arbitrary field values.
    #[test]
    fn frame_round_trip(sender in any::<u32>(), service in 0u8..64, kind in frame_kinds()) {
        let sig = ProximitySignal {
            sender,
            service: ServiceClass::new(service),
            kind,
        };
        let decoded = ProximitySignal::decode(sig.encode()).unwrap();
        prop_assert_eq!(decoded, sig);
    }

    /// Truncating any frame at any point yields Truncated, never a
    /// bogus decode or a panic.
    #[test]
    fn truncation_is_detected(kind in frame_kinds(), cut_fraction in 0.0f64..1.0) {
        let sig = ProximitySignal {
            sender: 7,
            service: ServiceClass::KEEP_ALIVE,
            kind,
        };
        let bytes = sig.encode();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        let res = ProximitySignal::decode(bytes.slice(0..cut));
        prop_assert!(res.is_err());
    }

    /// ZC sequences: CAZAC amplitude and shift-orthogonality for
    /// arbitrary roots/shifts at a fixed prime length.
    #[test]
    fn zc_properties(u in 1u32..138, s1 in 0usize..139, s2 in 0usize..139) {
        const N: usize = 139;
        let a = ZcSequence::new(u, s1, N);
        for x in a.samples() {
            prop_assert!((x.abs() - 1.0).abs() < 1e-9);
        }
        let b = ZcSequence::new(u, s2, N);
        let c = a.correlate(&b);
        if s1 == s2 {
            prop_assert!((c - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(c < 1e-6, "shift orthogonality violated: {c}");
        }
    }

    /// Cross-root correlation is exactly 1/√N for distinct roots.
    #[test]
    fn zc_cross_root(u1 in 1u32..138, u2 in 1u32..138) {
        prop_assume!(u1 != u2);
        const N: usize = 139;
        let a = ZcSequence::new(u1, 0, N);
        let b = ZcSequence::new(u2, 0, N);
        let expected = 1.0 / (N as f64).sqrt();
        prop_assert!((a.correlate(&b) - expected).abs() < 1e-6);
    }

    /// PRACH grids: next_opportunity is the first opportunity ≥ slot.
    #[test]
    fn prach_next_opportunity(period in 1u64..40, offset_raw in any::<u64>(), slot in 0u64..100_000) {
        let offset = offset_raw % period;
        let g = PrachGrid::new(period, offset);
        let next = g.next_opportunity(Slot(slot));
        prop_assert!(next.0 >= slot);
        prop_assert!(g.is_opportunity(next));
        prop_assert!(next.0 - slot < period, "skipped an opportunity");
    }

    /// Codec/service preambles: same codec+service is identical; any
    /// cross-codec pair is near-orthogonal.
    #[test]
    fn codec_preamble_structure(svc in 0u8..64) {
        let s = ServiceClass::new(svc);
        let p1 = RachCodec::Rach1.preamble(s);
        let p1b = RachCodec::Rach1.preamble(s);
        prop_assert!((p1.correlate(&p1b) - 1.0).abs() < 1e-9);
        let p2 = RachCodec::Rach2.preamble(s);
        prop_assert!(p1.correlate(&p2) < 0.1);
    }
}
