//! The RACH codec pair and service classes.
//!
//! §III: *"we have considered that PS will use two different RACH codec
//! i.e. a pair of RACH codec. One codec use for keep-alive i.e. for
//! synchronization purpose where as other codec for other event."* and
//! §IV assigns them roles: *"RACH2 is use for synchronization among sub
//! trees whereas RACH1 for regular operation for firefly algorithm."*
//!
//! Application-level discovery rides the same preambles: *"Different
//! codecs scheme indicate different services in the application."* We
//! model a service-interest space multiplexed onto cyclic shifts of the
//! codec's root, so devices advertising the same service transmit
//! correlated preambles a listener can classify.

use serde::{Deserialize, Serialize};

use crate::zadoffchu::{ZcSequence, LTE_PRACH_NZC};

/// The two proximity-signal codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RachCodec {
    /// Regular firefly operation: firing pulses / keep-alive beacons.
    Rach1,
    /// Inter-fragment synchronization (the `H_Connect` handshake of
    /// Algorithm 2).
    Rach2,
}

impl RachCodec {
    /// Both codecs, in protocol order.
    pub const ALL: [RachCodec; 2] = [RachCodec::Rach1, RachCodec::Rach2];

    /// This codec in the trace-event vocabulary.
    #[inline]
    pub fn trace_codec(self) -> ffd2d_trace::Codec {
        match self {
            RachCodec::Rach1 => ffd2d_trace::Codec::Rach1,
            RachCodec::Rach2 => ffd2d_trace::Codec::Rach2,
        }
    }

    /// The Zadoff–Chu root assigned to this codec. Distinct roots give
    /// the `1/√N` cross-correlation that makes the codecs mutually
    /// non-interfering (tested in [`crate::zadoffchu`]).
    pub fn zc_root(self) -> u32 {
        match self {
            RachCodec::Rach1 => 129,
            RachCodec::Rach2 => 421,
        }
    }

    /// Generate the on-air preamble for this codec and a service class.
    pub fn preamble(self, service: ServiceClass) -> ZcSequence {
        // Cyclic shifts are spaced so that delay spread cannot alias one
        // service into another (LTE's N_cs concept); 64 shifts of 13
        // samples fit in N_zc = 839.
        let shift = (service.0 as usize * 13) % LTE_PRACH_NZC;
        ZcSequence::new(self.zc_root(), shift, LTE_PRACH_NZC)
    }
}

impl core::fmt::Display for RachCodec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RachCodec::Rach1 => write!(f, "RACH1"),
            RachCodec::Rach2 => write!(f, "RACH2"),
        }
    }
}

/// An application service interest (0–63, LTE's preamble index space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceClass(pub u8);

impl ServiceClass {
    /// Number of distinguishable service classes (64 preamble shifts).
    pub const COUNT: u8 = 64;

    /// The keep-alive / no-service class.
    pub const KEEP_ALIVE: ServiceClass = ServiceClass(0);

    /// Construct, validating the LTE preamble-index range.
    pub fn new(id: u8) -> ServiceClass {
        assert!(id < Self::COUNT, "service class must be < {}", Self::COUNT);
        ServiceClass(id)
    }

    /// True if two devices share a service interest (application-level
    /// proximity criterion).
    pub fn matches(self, other: ServiceClass) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roots_differ() {
        assert_ne!(RachCodec::Rach1.zc_root(), RachCodec::Rach2.zc_root());
    }

    #[test]
    fn codec_preambles_are_orthogonal_between_codecs() {
        let p1 = RachCodec::Rach1.preamble(ServiceClass::KEEP_ALIVE);
        let p2 = RachCodec::Rach2.preamble(ServiceClass::KEEP_ALIVE);
        let c = p1.correlate(&p2);
        assert!(
            c < 2.0 / (LTE_PRACH_NZC as f64).sqrt(),
            "cross-codec correlation {c}"
        );
    }

    #[test]
    fn service_shifts_are_orthogonal_within_codec() {
        let a = RachCodec::Rach1.preamble(ServiceClass::new(3));
        let b = RachCodec::Rach1.preamble(ServiceClass::new(4));
        assert!(a.correlate(&b) < 1e-9);
    }

    #[test]
    fn same_service_same_preamble() {
        let a = RachCodec::Rach1.preamble(ServiceClass::new(9));
        let b = RachCodec::Rach1.preamble(ServiceClass::new(9));
        assert!((a.correlate(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn service_class_matching() {
        assert!(ServiceClass::new(5).matches(ServiceClass::new(5)));
        assert!(!ServiceClass::new(5).matches(ServiceClass::new(6)));
    }

    #[test]
    #[should_panic(expected = "service class")]
    fn out_of_range_service_rejected() {
        let _ = ServiceClass::new(64);
    }

    #[test]
    fn display_names() {
        assert_eq!(RachCodec::Rach1.to_string(), "RACH1");
        assert_eq!(RachCodec::Rach2.to_string(), "RACH2");
    }
}
