//! Preamble detection under noise — from correlation peak to the
//! abstract medium's decode decision.
//!
//! The medium model (`medium`, and `ffd2d_core::world::FastMedium`)
//! makes boolean decode decisions; this module grounds them: a real
//! receiver correlates the received baseband against its preamble bank
//! and thresholds the peak. [`PreambleDetector`] implements exactly
//! that over the Zadoff–Chu substrate with complex AWGN, so the
//! threshold used by the abstract model can be calibrated as a
//! (false-alarm, miss) operating point — the tests sweep the SNR and
//! verify the detector's ROC behaves as the theory says it should:
//! missed detections vanish as SNR rises, false alarms stay put, and
//! the orthogonal codec never triggers.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cplx::Cplx;
use crate::zadoffchu::ZcSequence;

/// Correlation-threshold preamble detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreambleDetector {
    /// Normalised correlation threshold in (0, 1): declare "present"
    /// when `|⟨rx, preamble⟩|/N ≥ threshold × amplitude-normalisation`.
    threshold: f64,
}

/// Outcome of one detection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The measured normalised correlation peak.
    pub peak: f64,
    /// Whether the peak cleared the threshold.
    pub detected: bool,
}

impl PreambleDetector {
    /// A detector with the given normalised threshold.
    ///
    /// # Panics
    ///
    /// If the threshold is outside `(0, 1)` — a threshold of 0 fires on
    /// pure noise, 1 can never fire under any noise at all.
    pub fn new(threshold: f64) -> PreambleDetector {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0,1), got {threshold}"
        );
        PreambleDetector { threshold }
    }

    /// The conventional operating point used by the abstract medium:
    /// half the clean-signal peak.
    pub fn standard() -> PreambleDetector {
        PreambleDetector::new(0.5)
    }

    /// Correlate `received` against `preamble` and threshold the peak.
    pub fn detect(&self, preamble: &ZcSequence, received: &[Cplx]) -> Detection {
        let peak = preamble.detect(received);
        Detection {
            peak,
            detected: peak >= self.threshold,
        }
    }

    /// Synthesise a received burst: `amplitude × preamble + AWGN` with
    /// per-sample complex noise of standard deviation `noise_std`.
    /// (Utility for calibration experiments and tests.)
    pub fn synthesize<R: Rng + ?Sized>(
        preamble: &ZcSequence,
        amplitude: f64,
        noise_std: f64,
        rng: &mut R,
    ) -> Vec<Cplx> {
        preamble
            .samples()
            .iter()
            .map(|&s| {
                s * amplitude + Cplx::new(gaussian(rng) * noise_std, gaussian(rng) * noise_std)
            })
            .collect()
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{RachCodec, ServiceClass};
    use rand::SeedableRng;

    type Rng64 = ffd2d_sim::rng::Xoshiro256StarStar;

    const N: usize = 139;

    fn preamble() -> ZcSequence {
        ZcSequence::new(25, 0, N)
    }

    #[test]
    fn clean_signal_detected() {
        let det = PreambleDetector::standard();
        let p = preamble();
        let rx: Vec<Cplx> = p.samples().to_vec();
        let d = det.detect(&p, &rx);
        assert!(d.detected);
        assert!((d.peak - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pure_noise_rarely_false_alarms() {
        let det = PreambleDetector::standard();
        let p = preamble();
        let mut rng = Rng64::seed_from_u64(1);
        let mut false_alarms = 0;
        for _ in 0..200 {
            let rx = PreambleDetector::synthesize(&p, 0.0, 1.0, &mut rng);
            if det.detect(&p, &rx).detected {
                false_alarms += 1;
            }
        }
        // Noise peak scales ~1/√N ≈ 0.085 with unit noise; the 0.5
        // threshold is ~6σ away.
        assert_eq!(false_alarms, 0);
    }

    #[test]
    fn detection_probability_rises_with_snr() {
        let det = PreambleDetector::standard();
        let p = preamble();
        let mut rng = Rng64::seed_from_u64(2);
        let mut rates = Vec::new();
        for amplitude in [0.2, 0.5, 1.0, 2.0] {
            let hits = (0..100)
                .filter(|_| {
                    let rx = PreambleDetector::synthesize(&p, amplitude, 1.0, &mut rng);
                    det.detect(&p, &rx).detected
                })
                .count();
            rates.push(hits);
        }
        assert!(rates.windows(2).all(|w| w[0] <= w[1]), "{rates:?}");
        assert_eq!(*rates.last().unwrap(), 100, "high SNR must always detect");
        assert_eq!(rates[0], 0, "deep noise must not detect at 0.5 threshold");
    }

    #[test]
    fn orthogonal_codec_never_triggers() {
        // A strong RACH2 burst must not trip a RACH1 detector: this is
        // the quantitative basis of the medium model's codec
        // orthogonality.
        let det = PreambleDetector::standard();
        let p1 = RachCodec::Rach1.preamble(ServiceClass::KEEP_ALIVE);
        let p2 = RachCodec::Rach2.preamble(ServiceClass::KEEP_ALIVE);
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..50 {
            let rx = PreambleDetector::synthesize(&p2, 3.0, 0.5, &mut rng);
            let d = det.detect(&p1, &rx);
            assert!(!d.detected, "cross-codec false alarm at peak {}", d.peak);
        }
    }

    #[test]
    fn superposed_preambles_both_detected() {
        let det = PreambleDetector::standard();
        let a = ZcSequence::new(25, 0, N);
        let b = ZcSequence::new(34, 0, N);
        let mut rng = Rng64::seed_from_u64(4);
        let mut rx = PreambleDetector::synthesize(&a, 1.0, 0.3, &mut rng);
        for (r, s) in rx.iter_mut().zip(b.samples()) {
            *r += *s;
        }
        assert!(det.detect(&a, &rx).detected);
        assert!(det.detect(&b, &rx).detected);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn degenerate_threshold_rejected() {
        let _ = PreambleDetector::new(1.0);
    }
}
