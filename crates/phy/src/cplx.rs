//! Minimal complex arithmetic.
//!
//! Only what Zadoff–Chu generation and correlation need — keeping the
//! workspace inside its sanctioned dependency set instead of pulling in
//! `num-complex`.

use serde::{Deserialize, Serialize};

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };

    /// Construct from parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Cplx {
        Cplx { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Cplx {
        Cplx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Cplx {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl core::ops::Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl core::ops::AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl core::ops::Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl core::ops::Mul<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: f64) -> Cplx {
        Cplx::new(self.re * rhs, self.im * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Cplx::cis(k as f64 * core::f64::consts::FRAC_PI_8);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multiplication_rotates() {
        let a = Cplx::cis(0.3);
        let b = Cplx::cis(0.5);
        let prod = a * b;
        let expect = Cplx::cis(0.8);
        assert!((prod.re - expect.re).abs() < 1e-12);
        assert!((prod.im - expect.im).abs() < 1e-12);
    }

    #[test]
    fn conjugate_inverts_phase() {
        let z = Cplx::cis(1.1);
        let unit = z * z.conj();
        assert!((unit.re - 1.0).abs() < 1e-12);
        assert!(unit.im.abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let z = Cplx::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_scale() {
        let z = Cplx::new(1.0, 2.0) + Cplx::new(3.0, -1.0);
        assert_eq!(z, Cplx::new(4.0, 1.0));
        assert_eq!(z * 2.0, Cplx::new(8.0, 2.0));
        let mut w = Cplx::ZERO;
        w += z;
        assert_eq!(w, z);
    }
}
