//! Zadoff–Chu sequences — the mathematics of LTE RACH preambles.
//!
//! LTE PRACH preambles are cyclic shifts of Zadoff–Chu (ZC) sequences.
//! For an odd prime length `N_zc` and root `u ∈ {1, …, N_zc − 1}`:
//!
//! ```text
//! x_u(n) = exp(−jπ·u·n·(n+1) / N_zc),   n = 0 … N_zc − 1
//! ```
//!
//! Three properties make them preambles:
//!
//! 1. **CAZAC** — constant amplitude (|x(n)| = 1 ∀n).
//! 2. **Zero cyclic autocorrelation** — a sequence is orthogonal to any
//!    nonzero cyclic shift of itself, so shifts of one root yield many
//!    orthogonal preambles.
//! 3. **Low cross-correlation** — sequences with different (coprime to
//!    `N_zc`) roots have constant cross-correlation magnitude `1/√N_zc`.
//!
//! The paper's claim that "different RACH preambles can flow in the
//! network simultaneously without any interference" is exactly
//! properties 2–3; the two PS codecs map onto two roots, and service
//! classes onto cyclic shifts. The correlation detector here is what
//! the abstract `medium` model's orthogonality assumption is calibrated
//! against (and tested against, in this module).

use serde::{Deserialize, Serialize};

use crate::cplx::Cplx;

/// Default sequence length: LTE PRACH format 0 uses `N_zc = 839`.
pub const LTE_PRACH_NZC: usize = 839;

/// A generated Zadoff–Chu sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZcSequence {
    root: u32,
    shift: usize,
    samples: Vec<Cplx>,
}

impl ZcSequence {
    /// Generate the ZC sequence of root `u` and cyclic shift `shift`
    /// over prime length `n_zc`.
    ///
    /// # Panics
    ///
    /// If `n_zc < 3` or not prime, `u` is not in `1..n_zc`, or the shift
    /// is out of range — all of which would silently destroy the
    /// orthogonality properties the protocol depends on.
    pub fn new(u: u32, shift: usize, n_zc: usize) -> ZcSequence {
        assert!(n_zc >= 3 && is_prime(n_zc), "N_zc must be an odd prime");
        assert!(
            u >= 1 && (u as usize) < n_zc,
            "root must be in 1..N_zc, got {u}"
        );
        assert!(shift < n_zc, "cyclic shift out of range");
        let samples = (0..n_zc)
            .map(|n| {
                let m = (n + shift) % n_zc;
                let phase =
                    -core::f64::consts::PI * u as f64 * (m as f64) * (m as f64 + 1.0) / n_zc as f64;
                Cplx::cis(phase)
            })
            .collect();
        ZcSequence {
            root: u,
            shift,
            samples,
        }
    }

    /// Root index.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Cyclic shift.
    #[inline]
    pub fn shift(&self) -> usize {
        self.shift
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the sequence has no samples (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples.
    #[inline]
    pub fn samples(&self) -> &[Cplx] {
        &self.samples
    }

    /// Normalised correlation magnitude with another sequence:
    /// `|⟨x, y⟩| / N`. 1 for identical sequences, 0 for orthogonal
    /// shifts, `1/√N` for coprime roots.
    pub fn correlate(&self, other: &ZcSequence) -> f64 {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let mut acc = Cplx::ZERO;
        for (a, b) in self.samples.iter().zip(other.samples.iter()) {
            acc += *a * b.conj();
        }
        acc.abs() / self.len() as f64
    }

    /// Correlate against a received superposition of sequences plus
    /// noise — the detector primitive.
    pub fn detect(&self, received: &[Cplx]) -> f64 {
        assert_eq!(self.len(), received.len(), "length mismatch");
        let mut acc = Cplx::ZERO;
        for (a, r) in self.samples.iter().zip(received.iter()) {
            acc += *r * a.conj();
        }
        acc.abs() / self.len() as f64
    }
}

/// Trial-division primality (lengths are small and fixed).
pub(crate) fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 139; // a prime small enough for fast tests

    #[test]
    fn constant_amplitude() {
        let z = ZcSequence::new(25, 0, N);
        for s in z.samples() {
            assert!((s.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_autocorrelation_at_zero_shift() {
        let z = ZcSequence::new(25, 0, N);
        assert!((z.correlate(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_autocorrelation_at_nonzero_shifts() {
        let z0 = ZcSequence::new(25, 0, N);
        for shift in [1, 2, 17, N - 1] {
            let zs = ZcSequence::new(25, shift, N);
            assert!(
                z0.correlate(&zs) < 1e-9,
                "shift {shift} correlation {}",
                z0.correlate(&zs)
            );
        }
    }

    #[test]
    fn cross_root_correlation_is_inverse_sqrt_n() {
        let a = ZcSequence::new(25, 0, N);
        let expected = 1.0 / (N as f64).sqrt();
        for root in [1, 2, 34, 138] {
            if root == 25 {
                continue;
            }
            let b = ZcSequence::new(root, 0, N);
            let c = a.correlate(&b);
            assert!(
                (c - expected).abs() < 1e-9,
                "root {root}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn detector_finds_its_preamble_in_a_superposition() {
        // Received = preamble A + preamble B (different roots) at equal
        // power: A's detector must report ≈1, an absent root's ≈ 1/√N.
        let a = ZcSequence::new(25, 0, N);
        let b = ZcSequence::new(34, 0, N);
        let absent = ZcSequence::new(7, 0, N);
        let rx: Vec<Cplx> = a
            .samples()
            .iter()
            .zip(b.samples())
            .map(|(x, y)| *x + *y)
            .collect();
        assert!(a.detect(&rx) > 0.9);
        assert!(b.detect(&rx) > 0.9);
        assert!(absent.detect(&rx) < 3.0 / (N as f64).sqrt());
    }

    #[test]
    fn same_root_same_shift_collision_adds_coherently() {
        // Two devices on the *same* preamble: the detector sees one
        // doubled peak — it cannot distinguish them (the collision case
        // the medium model penalises).
        let a = ZcSequence::new(25, 0, N);
        let rx: Vec<Cplx> = a.samples().iter().map(|x| *x + *x).collect();
        assert!((a.detect(&rx) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lte_prach_length_is_supported() {
        let z = ZcSequence::new(129, 0, LTE_PRACH_NZC);
        assert_eq!(z.len(), 839);
        assert!((z.correlate(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn primality_helper() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(839));
        assert!(!is_prime(1));
        assert!(!is_prime(841)); // 29²
        assert!(!is_prime(840));
    }

    #[test]
    #[should_panic(expected = "odd prime")]
    fn composite_length_rejected() {
        let _ = ZcSequence::new(3, 0, 840);
    }

    #[test]
    #[should_panic(expected = "root must be in")]
    fn root_zero_rejected() {
        let _ = ZcSequence::new(0, 0, N);
    }
}
