//! PRACH opportunity structure.
//!
//! LTE does not open the random-access channel in every subframe: PRACH
//! opportunities recur with a configurable periodicity (PRACH
//! configuration index). Proximity signals can only be transmitted in
//! PRACH slots, which quantises the firefly firing instants — a real
//! effect the paper inherits from its LTE-A substrate ("intra-group
//! proximity signal interference due to misalignment of devices").
//!
//! [`PrachGrid`] maps continuous firing intentions onto the next
//! available opportunity.

use serde::{Deserialize, Serialize};

use ffd2d_sim::time::Slot;

/// The PRACH opportunity grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrachGrid {
    /// A PRACH opportunity occurs every `period` slots...
    period: u64,
    /// ...at slots congruent to `offset` (mod `period`).
    offset: u64,
}

impl PrachGrid {
    /// Every slot is a PRACH opportunity (the paper's dense-signalling
    /// assumption; Table I gives a 1 ms slot with PS each slot).
    pub const EVERY_SLOT: PrachGrid = PrachGrid {
        period: 1,
        offset: 0,
    };

    /// A grid with the given periodicity and offset.
    pub fn new(period: u64, offset: u64) -> PrachGrid {
        assert!(period > 0, "PRACH period must be positive");
        assert!(offset < period, "offset must be below the period");
        PrachGrid { period, offset }
    }

    /// LTE PRACH configuration index 6: one opportunity every 5 ms.
    pub fn lte_config_6() -> PrachGrid {
        PrachGrid::new(5, 0)
    }

    /// The opportunity periodicity in slots.
    #[inline]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// True if `slot` is a PRACH opportunity.
    #[inline]
    pub fn is_opportunity(&self, slot: Slot) -> bool {
        slot.0 % self.period == self.offset
    }

    /// The first opportunity at or after `slot`.
    pub fn next_opportunity(&self, slot: Slot) -> Slot {
        let rem = (slot.0 + self.period - self.offset) % self.period;
        if rem == 0 {
            slot
        } else {
            Slot(slot.0 + self.period - rem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_slot_grid() {
        let g = PrachGrid::EVERY_SLOT;
        for s in 0..10 {
            assert!(g.is_opportunity(Slot(s)));
            assert_eq!(g.next_opportunity(Slot(s)), Slot(s));
        }
    }

    #[test]
    fn periodic_grid_membership() {
        let g = PrachGrid::new(5, 2);
        assert!(g.is_opportunity(Slot(2)));
        assert!(g.is_opportunity(Slot(7)));
        assert!(!g.is_opportunity(Slot(3)));
        assert!(!g.is_opportunity(Slot(0)));
    }

    #[test]
    fn next_opportunity_rounds_up() {
        let g = PrachGrid::new(5, 2);
        assert_eq!(g.next_opportunity(Slot(0)), Slot(2));
        assert_eq!(g.next_opportunity(Slot(2)), Slot(2));
        assert_eq!(g.next_opportunity(Slot(3)), Slot(7));
        assert_eq!(g.next_opportunity(Slot(8)), Slot(12));
    }

    #[test]
    fn lte_config_6_is_5ms() {
        let g = PrachGrid::lte_config_6();
        assert_eq!(g.period(), 5);
        assert!(g.is_opportunity(Slot(0)));
        assert!(g.is_opportunity(Slot(5)));
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn bad_offset_rejected() {
        let _ = PrachGrid::new(5, 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = PrachGrid::new(0, 0);
    }
}
