//! Shared-medium delivery with collisions and capture.
//!
//! Per slot, the medium takes every transmission attempted in that slot
//! and decides, for every potential receiver, what decodes:
//!
//! * transmissions on **different codecs** never interfere (orthogonal
//!   Zadoff–Chu roots, §III's OFDMA argument — validated quantitatively
//!   in [`crate::zadoffchu`]);
//! * within one codec, a receiver hearing **exactly one**
//!   above-threshold transmission decodes it;
//! * hearing **several**, the strongest decodes only if it beats the
//!   next strongest by at least the configured **capture margin**
//!   (physical capture effect); otherwise all collide;
//! * a transmitting device is deaf in its own slot (half-duplex) and
//!   never receives its own signal.
//!
//! The resolver also tallies [`Counters`] so experiments can attribute
//! losses (Fig. 4's message accounting and the collision ablations).

use std::time::Instant;

use ffd2d_parallel::{sharded_for_each, Parallelism};
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::DeviceId;
use ffd2d_sim::time::Slot;
use ffd2d_telemetry::{NullRecorder, Recorder};
use ffd2d_trace::{BufferSink, NullSink, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

use crate::codec::RachCodec;
use crate::frame::ProximitySignal;
use ffd2d_radio::channel::Channel;
use ffd2d_radio::units::Db;

/// One transmission attempt within a slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transmission {
    /// The signal on the air (sender, codec, payload).
    pub signal: ProximitySignal,
}

impl Transmission {
    /// Convenience constructor.
    pub fn new(signal: ProximitySignal) -> Transmission {
        Transmission { signal }
    }

    /// Transmitting device.
    #[inline]
    pub fn sender(&self) -> DeviceId {
        self.signal.sender
    }

    /// Codec in use.
    #[inline]
    pub fn codec(&self) -> RachCodec {
        self.signal.codec()
    }
}

/// What one receiver decoded in one slot.
#[derive(Debug, Clone, Default)]
pub struct DeliveryReport {
    /// Successfully decoded signals (at most one per codec).
    pub decoded: Vec<ProximitySignal>,
}

/// Medium configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediumConfig {
    /// Capture margin: the strongest same-codec signal decodes if it
    /// exceeds the runner-up by at least this many dB.
    pub capture_margin: Db,
    /// Intra-slot sharding of the per-receiver loop. Every setting
    /// produces bit-identical reports, counters and trace bytes (each
    /// channel sample is a pure function of `(tx, rx, slot)`); the
    /// knob only trades threads for wall clock.
    pub parallelism: Parallelism,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            // 6 dB is a conventional preamble capture threshold.
            capture_margin: Db(6.0),
            parallelism: Parallelism::Off,
        }
    }
}

/// The per-slot shared-medium resolver.
#[derive(Debug, Clone)]
pub struct Medium {
    config: MediumConfig,
}

impl Default for Medium {
    fn default() -> Self {
        Medium::new(MediumConfig::default())
    }
}

/// Per-slot precomputation shared (read-only) by every receiver shard:
/// the transmitting-sender set and the per-codec transmission lists,
/// each built once instead of re-derived per receiver.
struct PreparedSlot {
    slot: Slot,
    /// Senders transmitting this slot, sorted for membership tests.
    senders: Vec<DeviceId>,
    /// Transmissions partitioned by codec (indexed like
    /// [`RachCodec::ALL`]), submission order preserved within a codec —
    /// the same order the old per-receiver filter visited them in.
    by_codec: [Vec<Transmission>; 2],
    /// Sender ids parallel to `by_codec`, so the per-receiver loop can
    /// hand a whole codec's senders to the batched mean-gain kernel
    /// ([`Channel::mean_rx_power_batch`]) in one call.
    senders_by_codec: [Vec<DeviceId>; 2],
}

impl PreparedSlot {
    fn new(slot: Slot, transmissions: &[Transmission]) -> PreparedSlot {
        let mut senders: Vec<DeviceId> = transmissions.iter().map(|t| t.sender()).collect();
        senders.sort_unstable();
        let mut by_codec: [Vec<Transmission>; 2] = [Vec::new(), Vec::new()];
        let mut senders_by_codec: [Vec<DeviceId>; 2] = [Vec::new(), Vec::new()];
        for &tx in transmissions {
            // Indexing follows `RachCodec::ALL` order; a match can't miss
            // a codec, so no fallible lookup in the per-slot hot path.
            let ci = match tx.codec() {
                RachCodec::Rach1 => 0,
                RachCodec::Rach2 => 1,
            };
            by_codec[ci].push(tx);
            senders_by_codec[ci].push(tx.sender());
        }
        PreparedSlot {
            slot,
            senders,
            by_codec,
            senders_by_codec,
        }
    }
}

/// One worker's private output in the sharded path: merged in shard
/// (= receiver) order after the scope joins.
#[derive(Default)]
struct RxShard {
    counters: Counters,
    reports: Vec<DeliveryReport>,
    events: BufferSink,
    /// Wall-clock spent in this shard's decode loop; written only when
    /// a telemetry recorder is enabled, read after the scope joins.
    busy_ns: u64,
}

impl Medium {
    /// A medium with the given configuration.
    pub fn new(config: MediumConfig) -> Medium {
        Medium { config }
    }

    /// Builder: set the intra-slot [`Parallelism`] mode.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Medium {
        self.config.parallelism = parallelism;
        self
    }

    /// Resolve one slot.
    ///
    /// `transmissions` are this slot's attempts; `receivers` is the set
    /// of listening devices (typically all devices). Returns one
    /// [`DeliveryReport`] per receiver, index-aligned with `receivers`,
    /// and tallies transmissions/receptions into `counters`.
    pub fn resolve(
        &self,
        channel: &Channel<'_>,
        slot: Slot,
        transmissions: &[Transmission],
        receivers: &[DeviceId],
        counters: &mut Counters,
    ) -> Vec<DeliveryReport> {
        self.resolve_traced(
            channel,
            slot,
            transmissions,
            receivers,
            counters,
            &mut NullSink,
        )
    }

    /// [`Medium::resolve`] with per-event tracing: every transmission,
    /// decode and collision is reported to `sink`, plus one aggregate
    /// below-threshold count per slot. With a disabled sink this
    /// monomorphizes to exactly the untraced resolver.
    pub fn resolve_traced<S: TraceSink>(
        &self,
        channel: &Channel<'_>,
        slot: Slot,
        transmissions: &[Transmission],
        receivers: &[DeviceId],
        counters: &mut Counters,
        sink: &mut S,
    ) -> Vec<DeliveryReport> {
        self.resolve_instrumented(
            channel,
            slot,
            transmissions,
            receivers,
            counters,
            sink,
            &mut NullRecorder,
        )
    }

    /// [`Medium::resolve_traced`] plus a telemetry [`Recorder`]: the
    /// resolver times itself, counts work (transmissions, tx×rx pairs,
    /// workers) and reports per-shard busy time so load imbalance is
    /// visible. Telemetry reads the clock but never the channel or any
    /// RNG, so reports, counters and trace bytes are bit-identical
    /// whatever recorder is attached; a [`NullRecorder`] compiles every
    /// site out, leaving exactly the untraced resolver.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_instrumented<S: TraceSink, R: Recorder>(
        &self,
        channel: &Channel<'_>,
        slot: Slot,
        transmissions: &[Transmission],
        receivers: &[DeviceId],
        counters: &mut Counters,
        sink: &mut S,
        rec: &mut R,
    ) -> Vec<DeliveryReport> {
        if transmissions.is_empty() {
            // Nothing on the air: every report is empty, no counter
            // moves and no channel sample is drawn. The early-out turns
            // an idle slot from an O(receivers) scan over nothing into
            // O(1) (the fast resolver in ffd2d-core has the same
            // shortcut), which is what both engine modes lean on for
            // idle slots.
            return vec![DeliveryReport::default(); receivers.len()];
        }
        let t_resolve = rec.start();
        // Tally transmissions by codec.
        for tx in transmissions {
            match tx.codec() {
                RachCodec::Rach1 => counters.add_rach1_tx(1),
                RachCodec::Rach2 => counters.add_rach2_tx(1),
            }
            if S::ENABLED {
                sink.event(&TraceEvent::Tx {
                    slot: slot.0,
                    sender: tx.sender(),
                    codec: tx.codec().trace_codec(),
                    kind: tx.signal.kind.trace_label(),
                });
            }
        }

        let prepared = PreparedSlot::new(slot, transmissions);
        let workers = self
            .config
            .parallelism
            .workers_for(transmissions.len() as u64 * receivers.len() as u64)
            .min(receivers.len().max(1));

        let mut reports: Vec<DeliveryReport> = Vec::with_capacity(receivers.len());
        let below_threshold = if workers <= 1 {
            let before = counters.rx_below_threshold;
            self.resolve_receivers(channel, &prepared, receivers, counters, &mut reports, sink);
            counters.rx_below_threshold - before
        } else {
            // Sharded path: contiguous receiver ranges, each worker
            // tallying into private counters/reports/event buffers. Every
            // channel sample is a pure function of `(tx, rx, slot)`, so
            // per-receiver outcomes cannot depend on the sharding; the
            // merge below concatenates in shard order — which is receiver
            // order — making reports, counters and the event stream
            // bit-identical to the sequential loop for any worker count.
            let mut shards: Vec<RxShard> = Vec::new();
            shards.resize_with(workers, RxShard::default);
            sharded_for_each(receivers, &mut shards, |_, chunk, shard| {
                let t0 = if R::ENABLED {
                    // ffd2d-lint: allow(wall-clock) — recorder-gated shard timing; feeds telemetry only, never protocol state or RNG, and the NullRecorder build compiles it out entirely
                    Some(Instant::now())
                } else {
                    None
                };
                if S::ENABLED {
                    self.resolve_receivers(
                        channel,
                        &prepared,
                        chunk,
                        &mut shard.counters,
                        &mut shard.reports,
                        &mut shard.events,
                    );
                } else {
                    self.resolve_receivers(
                        channel,
                        &prepared,
                        chunk,
                        &mut shard.counters,
                        &mut shard.reports,
                        &mut NullSink,
                    );
                }
                if let Some(t0) = t0 {
                    shard.busy_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                }
            });
            let mut below = 0u64;
            for shard in &mut shards {
                below += shard.counters.rx_below_threshold;
                counters.merge(&shard.counters);
                reports.append(&mut shard.reports);
                if S::ENABLED {
                    shard.events.flush_into(sink);
                }
            }
            if R::ENABLED {
                let mut busy_sum = 0u64;
                let mut busy_max = 0u64;
                for shard in &shards {
                    rec.record_ns("medium.shard_busy_ns", shard.busy_ns);
                    busy_sum = busy_sum.saturating_add(shard.busy_ns);
                    busy_max = busy_max.max(shard.busy_ns);
                }
                if busy_sum > 0 {
                    // Peak-to-mean shard busy time, in percent (100 =
                    // perfectly balanced).
                    let mean = (busy_sum / workers as u64).max(1);
                    rec.observe("medium.shard_imbalance_pct", busy_max * 100 / mean);
                }
            }
            below
        };

        if S::ENABLED && below_threshold > 0 {
            sink.event(&TraceEvent::RxBelowThreshold {
                slot: slot.0,
                count: below_threshold,
            });
        }
        if R::ENABLED {
            rec.add("medium.slots_resolved", 1);
            rec.add("medium.transmissions", transmissions.len() as u64);
            rec.observe(
                "medium.pairs_per_slot",
                transmissions.len() as u64 * receivers.len() as u64,
            );
            rec.observe("medium.workers_per_slot", workers as u64);
            rec.stop("medium.resolve_ns", t_resolve);
        }
        reports
    }

    /// The per-receiver decode loop over one contiguous receiver range:
    /// appends one report per receiver and tallies receptions (including
    /// `rx_below_threshold`; the caller emits the per-slot aggregate
    /// event). Both the sequential path (full range, caller's sink) and
    /// each parallel shard (sub-range, private buffer) run exactly this.
    fn resolve_receivers<S: TraceSink>(
        &self,
        channel: &Channel<'_>,
        prepared: &PreparedSlot,
        receivers: &[DeviceId],
        counters: &mut Counters,
        reports: &mut Vec<DeliveryReport>,
        sink: &mut S,
    ) {
        let slot = prepared.slot;
        let threshold = channel.config().detection_threshold;
        // Scratch: audible same-codec signals at the current receiver,
        // and the batched mean link gains feeding them.
        let mut audible: Vec<(f64, &Transmission)> = Vec::new();
        let mut means: Vec<f64> = Vec::new();
        for &rx in receivers {
            let mut report = DeliveryReport::default();
            if prepared.senders.binary_search(&rx).is_ok() {
                // Half-duplex: a transmitting device hears nothing.
                reports.push(report);
                continue;
            }
            for (ci, codec) in RachCodec::ALL.into_iter().enumerate() {
                audible.clear();
                // Mean gains for the whole codec batch in one kernel
                // pass (symmetric, so rx-side batching matches the
                // tx→rx facade bit for bit); fading — the only per-slot
                // term — is then added per transmission, which is
                // exactly `channel.sample` split in two.
                means.clear();
                channel.mean_rx_power_batch(rx, &prepared.senders_by_codec[ci], &mut means);
                for (tx, &mean) in prepared.by_codec[ci].iter().zip(&means) {
                    let rx_power = channel.rx_power_from_mean(mean, tx.sender(), rx, slot);
                    if rx_power >= threshold {
                        audible.push((rx_power.get(), tx));
                    } else {
                        counters.add_rx_below_threshold(1);
                    }
                }
                match audible.len() {
                    0 => {}
                    1 => {
                        counters.add_rx_ok(1);
                        if S::ENABLED {
                            sink.event(&TraceEvent::RxDecode {
                                slot: slot.0,
                                receiver: rx,
                                sender: audible[0].1.sender(),
                                codec: codec.trace_codec(),
                                rx_dbm: audible[0].0,
                            });
                        }
                        report.decoded.push(audible[0].1.signal);
                    }
                    _ => {
                        // Capture check: strongest vs runner-up.
                        // `unwrap_or(Equal)` is unreachable (powers are
                        // finite dBm, never NaN) and, when both compare
                        // paths exist, bit-identical to the panicking
                        // sort for every non-NaN input.
                        audible.sort_by(|a, b| {
                            b.0.partial_cmp(&a.0).unwrap_or(core::cmp::Ordering::Equal)
                        });
                        let margin = audible[0].0 - audible[1].0;
                        if margin >= self.config.capture_margin.get() {
                            counters.add_rx_ok(1);
                            counters.add_rx_collision((audible.len() - 1) as u64);
                            if S::ENABLED {
                                sink.event(&TraceEvent::RxDecode {
                                    slot: slot.0,
                                    receiver: rx,
                                    sender: audible[0].1.sender(),
                                    codec: codec.trace_codec(),
                                    rx_dbm: audible[0].0,
                                });
                                sink.event(&TraceEvent::RxCollision {
                                    slot: slot.0,
                                    receiver: rx,
                                    codec: codec.trace_codec(),
                                    signals: (audible.len() - 1) as u32,
                                });
                            }
                            report.decoded.push(audible[0].1.signal);
                        } else {
                            counters.add_rx_collision(audible.len() as u64);
                            if S::ENABLED {
                                sink.event(&TraceEvent::RxCollision {
                                    slot: slot.0,
                                    receiver: rx,
                                    codec: codec.trace_codec(),
                                    signals: audible.len() as u32,
                                });
                            }
                        }
                    }
                }
            }
            reports.push(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ServiceClass;
    use crate::frame::FrameKind;
    use ffd2d_radio::channel::ChannelConfig;
    use ffd2d_sim::deployment::{Deployment, Meters, Position};

    fn line_deployment(xs: &[f64]) -> Deployment {
        Deployment::from_positions(
            xs.iter().map(|&x| Position::new(x, 0.0)).collect(),
            Meters(1000.0),
            Meters(1000.0),
        )
    }

    fn fire(sender: u32) -> Transmission {
        Transmission::new(ProximitySignal {
            sender,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: sender,
                age: 0,
            },
        })
    }

    fn hconnect(sender: u32, to: u32) -> Transmission {
        Transmission::new(ProximitySignal {
            sender,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::HConnect {
                to,
                fragment: sender,
                fragment_size: 1,
                head: sender,
            },
        })
    }

    #[test]
    fn single_transmission_decodes_everywhere_in_range() {
        let dep = line_deployment(&[0.0, 10.0, 50.0, 500.0]);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let medium = Medium::default();
        let mut counters = Counters::new();
        let reports = medium.resolve(&ch, Slot(0), &[fire(0)], &[0, 1, 2, 3], &mut counters);
        assert!(reports[0].decoded.is_empty(), "sender hears nothing");
        assert_eq!(reports[1].decoded.len(), 1);
        assert_eq!(reports[2].decoded.len(), 1);
        assert!(reports[3].decoded.is_empty(), "out of range");
        assert_eq!(counters.rach1_tx, 1);
        assert_eq!(counters.rx_ok, 2);
        assert_eq!(counters.rx_below_threshold, 1);
    }

    #[test]
    fn equidistant_same_codec_transmitters_collide() {
        // Receiver 1 sits exactly between 0 and 2: equal power, margin 0.
        let dep = line_deployment(&[0.0, 20.0, 40.0]);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let medium = Medium::default();
        let mut counters = Counters::new();
        let reports = medium.resolve(&ch, Slot(0), &[fire(0), fire(2)], &[1], &mut counters);
        assert!(reports[0].decoded.is_empty());
        assert_eq!(counters.rx_collision, 2);
        assert_eq!(counters.rx_ok, 0);
    }

    #[test]
    fn capture_effect_rescues_strong_signal() {
        // Receiver at x=10: tx 0 at distance 10, tx 2 at distance 80 —
        // power gap far exceeds 6 dB, so 0 captures.
        let dep = line_deployment(&[0.0, 10.0, 90.0]);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let medium = Medium::default();
        let mut counters = Counters::new();
        let reports = medium.resolve(&ch, Slot(0), &[fire(0), fire(2)], &[1], &mut counters);
        assert_eq!(reports[0].decoded.len(), 1);
        assert_eq!(reports[0].decoded[0].sender, 0);
        assert_eq!(counters.rx_ok, 1);
        assert_eq!(counters.rx_collision, 1);
    }

    #[test]
    fn different_codecs_are_orthogonal() {
        // Same slot, same receiver: one RACH1 fire and one RACH2
        // handshake both decode.
        let dep = line_deployment(&[0.0, 20.0, 40.0]);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let medium = Medium::default();
        let mut counters = Counters::new();
        let reports = medium.resolve(
            &ch,
            Slot(0),
            &[fire(0), hconnect(2, 1)],
            &[1],
            &mut counters,
        );
        assert_eq!(reports[0].decoded.len(), 2);
        assert_eq!(counters.rach1_tx, 1);
        assert_eq!(counters.rach2_tx, 1);
        assert_eq!(counters.rx_ok, 2);
    }

    #[test]
    fn half_duplex_sender_misses_concurrent_signal() {
        let dep = line_deployment(&[0.0, 20.0]);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let medium = Medium::default();
        let mut counters = Counters::new();
        let reports = medium.resolve(&ch, Slot(0), &[fire(0), fire(1)], &[0, 1], &mut counters);
        assert!(reports[0].decoded.is_empty());
        assert!(reports[1].decoded.is_empty());
    }

    #[test]
    fn empty_slot_produces_empty_reports() {
        let dep = line_deployment(&[0.0, 20.0]);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let medium = Medium::default();
        let mut counters = Counters::new();
        let reports = medium.resolve(&ch, Slot(0), &[], &[0, 1], &mut counters);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.decoded.is_empty()));
        assert_eq!(counters.total_tx(), 0);
    }

    #[test]
    fn sharded_resolver_is_bit_identical_to_sequential() {
        // 40 devices on a line, a mix of codecs and collisions; the
        // sharded resolver must reproduce the sequential one exactly —
        // reports, counters, and the event stream in the same order —
        // for any worker count (Fixed pins bypass the Auto cutoff).
        let dep = line_deployment(&(0..40).map(|i| i as f64 * 9.0).collect::<Vec<_>>());
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let receivers: Vec<u32> = (0..40).collect();
        let txs = [
            fire(0),
            fire(13),
            hconnect(25, 24),
            fire(39),
            hconnect(7, 8),
        ];

        let run = |parallelism: Parallelism| {
            let medium = Medium::default().with_parallelism(parallelism);
            let mut counters = Counters::new();
            let mut events = BufferSink::new();
            let reports =
                medium.resolve_traced(&ch, Slot(3), &txs, &receivers, &mut counters, &mut events);
            let decoded: Vec<Vec<ProximitySignal>> =
                reports.into_iter().map(|r| r.decoded).collect();
            (decoded, counters, events.events)
        };

        let baseline = run(Parallelism::Off);
        assert!(baseline.1.rx_ok > 0, "vacuous scenario");
        assert!(baseline.1.rx_collision > 0, "no collisions exercised");
        for workers in [1usize, 2, 8, 64] {
            let sharded = run(Parallelism::Fixed(workers));
            assert_eq!(sharded.0, baseline.0, "reports, workers={workers}");
            assert_eq!(sharded.1, baseline.1, "counters, workers={workers}");
            assert_eq!(sharded.2, baseline.2, "events, workers={workers}");
        }
    }

    #[test]
    fn reports_align_with_receiver_order() {
        let dep = line_deployment(&[0.0, 20.0, 40.0]);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let medium = Medium::default();
        let mut counters = Counters::new();
        let reports = medium.resolve(&ch, Slot(0), &[fire(1)], &[2, 0], &mut counters);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].decoded[0].sender, 1);
        assert_eq!(reports[1].decoded[0].sender, 1);
    }
}
