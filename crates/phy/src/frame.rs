//! Proximity-signal frames.
//!
//! A proximity signal is physically a RACH preamble plus a small payload
//! (the paper's devices piggyback fragment/head information on their
//! PSs, as MEMFIS [14] multiplexes sync words with data). This module
//! defines the frame vocabulary of Algorithms 1–3 and a compact wire
//! format over [`bytes`] so frames can be serialised exactly as a real
//! implementation would put them on the air.
//!
//! | Kind | Codec | Cast | Role |
//! |------|-------|------|------|
//! | `Fire` | RACH1 | broadcast | firefly pulse; doubles as discovery beacon (carries fragment id + service) |
//! | `DiscoveryReply` | RACH1 | unicast | FST-style pairwise discovery handshake |
//! | `Report` | RACH1 | unicast | convergecast of best outgoing edge toward the fragment head |
//! | `MergeCmd` | RACH1 | unicast | head's instruction down the tree to connect over a chosen edge |
//! | `HConnect` | RACH2 | broadcast | Algorithm 2 inter-fragment handshake request |
//! | `HAccept` | RACH2 | broadcast | Algorithm 2 handshake acknowledgement |
//! | `NewFragment` | RACH1 | unicast | flood of the merged fragment's identity down the tree |

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::codec::{RachCodec, ServiceClass};

/// Device identifier on the air (matches `ffd2d_sim` device ids).
pub type DeviceId = u32;

/// Edge weight carried on the air: PS strength in milli-dBm.
pub type WeightMilliDbm = i32;

/// The protocol payload of a proximity signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrameKind {
    /// Firefly firing pulse / discovery beacon.
    Fire {
        /// Sender's current fragment id.
        fragment: DeviceId,
        /// Slots elapsed between the oscillator's firing instant and
        /// this (collision-staggered) transmission; receivers use it to
        /// compensate the PRC (MEMFIS-style timing offset).
        age: u8,
    },
    /// FST pairwise discovery response.
    DiscoveryReply {
        /// The device being answered.
        to: DeviceId,
    },
    /// Convergecast report of the subtree's best outgoing edge.
    Report {
        /// Unicast destination (tree parent).
        to: DeviceId,
        /// Best edge endpoint inside the fragment (`u32::MAX` = none).
        best_u: DeviceId,
        /// Best edge endpoint outside the fragment (`u32::MAX` = none).
        best_v: DeviceId,
        /// Weight of that edge.
        weight: WeightMilliDbm,
    },
    /// Head's instruction to connect across `(u, v)`.
    MergeCmd {
        /// Unicast destination (tree child, toward `u`).
        to: DeviceId,
        /// Fragment-internal endpoint of the merge edge.
        u: DeviceId,
        /// Fragment-external endpoint of the merge edge.
        v: DeviceId,
    },
    /// Algorithm 2: RACH2 handshake request from `u` toward `v`.
    HConnect {
        /// External endpoint being addressed.
        to: DeviceId,
        /// Sender's fragment id.
        fragment: DeviceId,
        /// Sender's fragment size (head selection needs it).
        fragment_size: u32,
        /// Sender's fragment head.
        head: DeviceId,
    },
    /// Algorithm 2: RACH2 handshake acknowledgement.
    HAccept {
        /// The requester being acknowledged.
        to: DeviceId,
        /// Responder's fragment id.
        fragment: DeviceId,
        /// Responder's fragment size.
        fragment_size: u32,
        /// Responder's fragment head.
        head: DeviceId,
    },
    /// Flood of the merged fragment identity.
    NewFragment {
        /// Unicast destination (tree neighbour).
        to: DeviceId,
        /// New fragment id.
        fragment: DeviceId,
        /// New fragment head.
        head: DeviceId,
    },
}

impl FrameKind {
    /// The codec this frame kind is transmitted on (§IV's RACH1/RACH2
    /// split).
    pub fn codec(&self) -> RachCodec {
        match self {
            FrameKind::HConnect { .. } | FrameKind::HAccept { .. } => RachCodec::Rach2,
            _ => RachCodec::Rach1,
        }
    }

    /// This kind's label in the trace-event vocabulary (the trace crate
    /// sits below the PHY in the dependency order, so the mapping lives
    /// here).
    pub fn trace_label(&self) -> ffd2d_trace::FrameLabel {
        match self {
            FrameKind::Fire { .. } => ffd2d_trace::FrameLabel::Fire,
            FrameKind::DiscoveryReply { .. } => ffd2d_trace::FrameLabel::DiscoveryReply,
            FrameKind::Report { .. } => ffd2d_trace::FrameLabel::Report,
            FrameKind::MergeCmd { .. } => ffd2d_trace::FrameLabel::MergeCmd,
            FrameKind::HConnect { .. } => ffd2d_trace::FrameLabel::HConnect,
            FrameKind::HAccept { .. } => ffd2d_trace::FrameLabel::HAccept,
            FrameKind::NewFragment { .. } => ffd2d_trace::FrameLabel::NewFragment,
        }
    }

    /// Unicast destination, if this kind is addressed.
    pub fn unicast_to(&self) -> Option<DeviceId> {
        match *self {
            FrameKind::Fire { .. } => None,
            FrameKind::DiscoveryReply { to }
            | FrameKind::Report { to, .. }
            | FrameKind::MergeCmd { to, .. }
            | FrameKind::HConnect { to, .. }
            | FrameKind::HAccept { to, .. }
            | FrameKind::NewFragment { to, .. } => Some(to),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            FrameKind::Fire { .. } => 0,
            FrameKind::DiscoveryReply { .. } => 1,
            FrameKind::Report { .. } => 2,
            FrameKind::MergeCmd { .. } => 3,
            FrameKind::HConnect { .. } => 4,
            FrameKind::HAccept { .. } => 5,
            FrameKind::NewFragment { .. } => 6,
        }
    }
}

/// A complete on-air proximity signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProximitySignal {
    /// Transmitting device.
    pub sender: DeviceId,
    /// Advertised service interest.
    pub service: ServiceClass,
    /// Protocol payload.
    pub kind: FrameKind,
}

/// Errors raised while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header.
    Truncated,
    /// Unknown frame-kind tag.
    BadTag(u8),
    /// Service class outside the preamble index space.
    BadService(u8),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::BadService(s) => write!(f, "service class {s} out of range"),
        }
    }
}

impl std::error::Error for FrameError {}

impl ProximitySignal {
    /// The codec this signal is transmitted on.
    pub fn codec(&self) -> RachCodec {
        self.kind.codec()
    }

    /// Serialise to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(28);
        b.put_u32_le(self.sender);
        b.put_u8(self.service.0);
        b.put_u8(self.kind.tag());
        match self.kind {
            FrameKind::Fire { fragment, age } => {
                b.put_u32_le(fragment);
                b.put_u8(age);
            }
            FrameKind::DiscoveryReply { to } => b.put_u32_le(to),
            FrameKind::Report {
                to,
                best_u,
                best_v,
                weight,
            } => {
                b.put_u32_le(to);
                b.put_u32_le(best_u);
                b.put_u32_le(best_v);
                b.put_i32_le(weight);
            }
            FrameKind::MergeCmd { to, u, v } => {
                b.put_u32_le(to);
                b.put_u32_le(u);
                b.put_u32_le(v);
            }
            FrameKind::HConnect {
                to,
                fragment,
                fragment_size,
                head,
            }
            | FrameKind::HAccept {
                to,
                fragment,
                fragment_size,
                head,
            } => {
                b.put_u32_le(to);
                b.put_u32_le(fragment);
                b.put_u32_le(fragment_size);
                b.put_u32_le(head);
            }
            FrameKind::NewFragment { to, fragment, head } => {
                b.put_u32_le(to);
                b.put_u32_le(fragment);
                b.put_u32_le(head);
            }
        }
        b.freeze()
    }

    /// Deserialise from the wire format.
    pub fn decode(mut buf: Bytes) -> Result<ProximitySignal, FrameError> {
        if buf.remaining() < 6 {
            return Err(FrameError::Truncated);
        }
        let sender = buf.get_u32_le();
        let service_raw = buf.get_u8();
        if service_raw >= ServiceClass::COUNT {
            return Err(FrameError::BadService(service_raw));
        }
        let service = ServiceClass(service_raw);
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| {
            if buf.remaining() < n {
                Err(FrameError::Truncated)
            } else {
                Ok(())
            }
        };
        let kind = match tag {
            0 => {
                need(&buf, 5)?;
                FrameKind::Fire {
                    fragment: buf.get_u32_le(),
                    age: buf.get_u8(),
                }
            }
            1 => {
                need(&buf, 4)?;
                FrameKind::DiscoveryReply {
                    to: buf.get_u32_le(),
                }
            }
            2 => {
                need(&buf, 16)?;
                FrameKind::Report {
                    to: buf.get_u32_le(),
                    best_u: buf.get_u32_le(),
                    best_v: buf.get_u32_le(),
                    weight: buf.get_i32_le(),
                }
            }
            3 => {
                need(&buf, 12)?;
                FrameKind::MergeCmd {
                    to: buf.get_u32_le(),
                    u: buf.get_u32_le(),
                    v: buf.get_u32_le(),
                }
            }
            4 | 5 => {
                need(&buf, 16)?;
                let (to, fragment, fragment_size, head) = (
                    buf.get_u32_le(),
                    buf.get_u32_le(),
                    buf.get_u32_le(),
                    buf.get_u32_le(),
                );
                if tag == 4 {
                    FrameKind::HConnect {
                        to,
                        fragment,
                        fragment_size,
                        head,
                    }
                } else {
                    FrameKind::HAccept {
                        to,
                        fragment,
                        fragment_size,
                        head,
                    }
                }
            }
            6 => {
                need(&buf, 12)?;
                FrameKind::NewFragment {
                    to: buf.get_u32_le(),
                    fragment: buf.get_u32_le(),
                    head: buf.get_u32_le(),
                }
            }
            t => return Err(FrameError::BadTag(t)),
        };
        Ok(ProximitySignal {
            sender,
            service,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<FrameKind> {
        vec![
            FrameKind::Fire {
                fragment: 7,
                age: 3,
            },
            FrameKind::DiscoveryReply { to: 3 },
            FrameKind::Report {
                to: 1,
                best_u: 2,
                best_v: 9,
                weight: -81_250,
            },
            FrameKind::MergeCmd { to: 4, u: 2, v: 9 },
            FrameKind::HConnect {
                to: 9,
                fragment: 7,
                fragment_size: 12,
                head: 0,
            },
            FrameKind::HAccept {
                to: 2,
                fragment: 5,
                fragment_size: 3,
                head: 5,
            },
            FrameKind::NewFragment {
                to: 8,
                fragment: 0,
                head: 0,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip_every_kind() {
        for kind in all_kinds() {
            let sig = ProximitySignal {
                sender: 42,
                service: ServiceClass::new(17),
                kind,
            };
            let decoded = ProximitySignal::decode(sig.encode()).unwrap();
            assert_eq!(decoded, sig, "round trip failed for {kind:?}");
        }
    }

    #[test]
    fn codec_assignment_follows_section_iv() {
        for kind in all_kinds() {
            let expect = matches!(kind, FrameKind::HConnect { .. } | FrameKind::HAccept { .. });
            assert_eq!(kind.codec() == RachCodec::Rach2, expect, "{kind:?}");
        }
    }

    #[test]
    fn unicast_targets() {
        assert_eq!(
            FrameKind::Fire {
                fragment: 1,
                age: 0
            }
            .unicast_to(),
            None
        );
        assert_eq!(FrameKind::DiscoveryReply { to: 5 }.unicast_to(), Some(5));
        assert_eq!(
            FrameKind::MergeCmd { to: 9, u: 1, v: 2 }.unicast_to(),
            Some(9)
        );
    }

    #[test]
    fn truncated_frames_rejected() {
        let sig = ProximitySignal {
            sender: 1,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Report {
                to: 1,
                best_u: 2,
                best_v: 3,
                weight: -5,
            },
        };
        let full = sig.encode();
        for cut in 0..full.len() {
            let res = ProximitySignal::decode(full.slice(0..cut));
            assert_eq!(res, Err(FrameError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(1);
        raw.put_u8(0); // service
        raw.put_u8(250); // bogus tag
        raw.put_u32_le(0);
        assert_eq!(
            ProximitySignal::decode(raw.freeze()),
            Err(FrameError::BadTag(250))
        );
    }

    #[test]
    fn bad_service_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(1);
        raw.put_u8(64); // out of range
        raw.put_u8(0);
        raw.put_u32_le(0);
        assert_eq!(
            ProximitySignal::decode(raw.freeze()),
            Err(FrameError::BadService(64))
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(FrameError::Truncated.to_string(), "frame truncated");
        assert!(FrameError::BadTag(9).to_string().contains('9'));
    }
}
