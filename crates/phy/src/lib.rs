//! # ffd2d-phy — LTE-A PHY/MAC substrate
//!
//! The paper transmits proximity signals (PSs) on LTE-A **RACH
//! preambles** and relies on two properties of that physical layer:
//!
//! 1. *A pair of RACH codecs*: "PS will use two different RACH codec...
//!    One codec use for keep-alive i.e. for synchronization purpose
//!    where as other codec for other event" (§III). Different codecs are
//!    orthogonal ("different RACH preambles can flow in network
//!    simultaneously without any interference" under OFDMA).
//! 2. *Intra-codec collisions*: two devices transmitting the same codec
//!    in the same slot interfere unless one captures the receiver.
//!
//! This crate builds that substrate from scratch:
//!
//! * [`cplx`] — a minimal complex-number type (no external dependency).
//! * [`zadoffchu`] — Zadoff–Chu sequence generation and correlation
//!   detection: constant amplitude, zero cyclic autocorrelation, and
//!   `1/√N_zc` cross-correlation between coprime roots — the actual
//!   mathematical reason LTE preambles with different roots do not
//!   interfere, reproduced and tested here.
//! * [`codec`] — the RACH1/RACH2 codec pair mapped onto ZC roots, plus
//!   service-interest classes multiplexed onto cyclic shifts
//!   (application-level discovery).
//! * [`frame`] — proximity-signal frame encode/decode (`bytes`-based
//!   wire format) carrying the protocol fields of Algorithms 1–3.
//! * [`grid`] — PRACH opportunity structure on the slot grid.
//! * [`medium`] — the shared-medium resolver: per-slot, per-receiver
//!   decoding with orthogonal codecs, same-codec collisions and a
//!   configurable capture margin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod cplx;
pub mod detector;
pub mod frame;
pub mod grid;
pub mod medium;
pub mod zadoffchu;

pub use codec::{RachCodec, ServiceClass};
pub use detector::{Detection, PreambleDetector};
pub use frame::{FrameKind, ProximitySignal};
pub use grid::PrachGrid;
pub use medium::{DeliveryReport, Medium, Transmission};
pub use zadoffchu::ZcSequence;
