//! Fast fading.
//!
//! Table I specifies "Fast fading: UMi (NLOS)". In a non-line-of-sight
//! urban-micro scenario the per-path envelope is Rayleigh distributed,
//! so the instantaneous *power* gain is exponentially distributed with
//! unit mean. We model it as **block fading**: the gain is constant over
//! a coherence block of `coherence_slots` slots and redrawn
//! independently per block — the standard abstraction for slotted
//! systems whose slot length (1 ms) is below the channel coherence time
//! (tens of ms for pedestrian mobility).
//!
//! A Rician variant covers the LOS ablation: with K-factor `k` the power
//! gain is the squared magnitude of a unit-mean complex Gaussian with a
//! deterministic component.
//!
//! As with shadowing, every draw is a pure function of
//! `(seed, link, block)` so trials replay identically.

use serde::{Deserialize, Serialize};

use crate::shadowing::{max_abs_standard_normal, standard_normal, to_unit_open};
use crate::units::Db;
use ffd2d_sim::deployment::DeviceId;
use ffd2d_sim::rng::SplitMix64;
use ffd2d_sim::time::Slot;

/// Fast-fading model applied on top of path loss and shadowing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FadingModel {
    /// No fast fading (gain fixed at 0 dB).
    None,
    /// Rayleigh block fading — the Table-I UMi-NLOS case.
    Rayleigh {
        /// Slots per coherence block.
        coherence_slots: u64,
    },
    /// Rician block fading with linear K-factor `k` (LOS ablation).
    Rician {
        /// Ratio of deterministic to scattered power (linear).
        k: f64,
        /// Slots per coherence block.
        coherence_slots: u64,
    },
}

impl FadingModel {
    /// The Table-I configuration: Rayleigh with a 20 ms coherence block
    /// (pedestrian UMi).
    pub fn umi_nlos() -> FadingModel {
        FadingModel::Rayleigh {
            coherence_slots: 20,
        }
    }

    /// The coherence block index containing `slot`.
    fn block(&self, slot: Slot) -> u64 {
        match *self {
            FadingModel::None => 0,
            FadingModel::Rayleigh { coherence_slots }
            | FadingModel::Rician {
                coherence_slots, ..
            } => slot.0 / coherence_slots.max(1),
        }
    }

    /// Instantaneous fading gain for link `{a, b}` at `slot`, in dB.
    ///
    /// Unit mean in the *linear* domain (so fading does not change the
    /// average link budget, only its fluctuation), symmetric in the link
    /// endpoints.
    pub fn gain(&self, seed: u64, a: DeviceId, b: DeviceId, slot: Slot) -> Db {
        match *self {
            FadingModel::None => Db::ZERO,
            FadingModel::Rayleigh { .. } => {
                let p = self.unit_exponential(seed, a, b, slot);
                Db(10.0 * p.log10())
            }
            FadingModel::Rician { k, .. } => {
                // h = sqrt(k/(k+1)) + CN(0, 1/(k+1)); power = |h|^2.
                let (lo, hi) = ordered(a, b);
                let block = self.block(slot);
                let key = link_block_key(lo, hi, block);
                // ffd2d-lint: allow(rng-discipline) — stateless keyed field sampler: a pure function of (seed, link, block) that consumes no stream, so evaluation order cannot matter; the tags separate the two quadrature components
                let re = standard_normal(seed ^ 0x51C1_A0B4, key);
                let im = standard_normal(seed ^ 0x1C1A_77EE, key ^ 0xABCD); // ffd2d-lint: allow(rng-discipline) — second quadrature tag of the draw above
                let scatter = 1.0 / (k + 1.0);
                let los = (k / (k + 1.0)).sqrt();
                let h_re = los + re * (scatter / 2.0).sqrt();
                let h_im = im * (scatter / 2.0).sqrt();
                let p = (h_re * h_re + h_im * h_im).max(1e-12);
                Db(10.0 * p.log10())
            }
        }
    }

    /// Provable upper bound on [`FadingModel::gain`] in dB, over all
    /// seeds, links and slots.
    ///
    /// * `None` never deviates from 0 dB.
    /// * `Rayleigh` draws `−ln u` with `u ≥ 2⁻⁵³` (see
    ///   [`crate::shadowing::to_unit_open`]), so the power gain is at
    ///   most `53·ln 2` linear ⇒ `10·log10(53·ln 2) ≈ 15.65` dB.
    /// * `Rician` is bounded by setting both Gaussian components to the
    ///   extreme of [`max_abs_standard_normal`].
    ///
    /// Unlike a statistical fade margin, candidate pruning with this
    /// bound is *exact*: a link whose mean power sits below
    /// `threshold − max_gain_db()` can never be detected, for any seed.
    pub fn max_gain_db(&self) -> f64 {
        match *self {
            FadingModel::None => 0.0,
            FadingModel::Rayleigh { .. } => 10.0 * (53.0 * core::f64::consts::LN_2).log10() + 1e-9,
            FadingModel::Rician { k, .. } => {
                let nmax = max_abs_standard_normal();
                let scatter = 1.0 / (k + 1.0);
                let los = (k / (k + 1.0)).sqrt();
                let amp = (scatter / 2.0).sqrt() * nmax;
                let p = (los + amp) * (los + amp) + amp * amp;
                10.0 * p.log10() + 1e-9
            }
        }
    }

    /// Unit-mean exponential power draw for `(link, block)`.
    fn unit_exponential(&self, seed: u64, a: DeviceId, b: DeviceId, slot: Slot) -> f64 {
        let (lo, hi) = ordered(a, b);
        let block = self.block(slot);
        let key = link_block_key(lo, hi, block);
        // ffd2d-lint: allow(rng-discipline) — stateless keyed field sampler (pure in (seed, link, block)); the constant domain-separates Rayleigh draws from the Rician quadratures
        let u = to_unit_open(SplitMix64::mix(seed ^ 0xFAD1_4EED ^ key));
        // Inverse-CDF of Exp(1); clamp to avoid -inf dB in the tail.
        (-u.ln()).max(1e-12)
    }
}

#[inline]
fn ordered(a: DeviceId, b: DeviceId) -> (DeviceId, DeviceId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[inline]
fn link_block_key(lo: DeviceId, hi: DeviceId, block: u64) -> u64 {
    let link = ((lo as u64) << 32) | hi as u64;
    // ffd2d-lint: allow(rng-discipline) — key derivation for the stateless field samplers above, not a stream seed; symmetric in the link by the caller's (lo, hi) ordering
    SplitMix64::mix(link).wrapping_add(block.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero_db() {
        assert_eq!(FadingModel::None.gain(1, 0, 1, Slot(5)), Db::ZERO);
    }

    #[test]
    fn rayleigh_constant_within_block() {
        let f = FadingModel::Rayleigh {
            coherence_slots: 10,
        };
        let g0 = f.gain(7, 0, 1, Slot(0));
        for s in 1..10 {
            assert_eq!(f.gain(7, 0, 1, Slot(s)), g0);
        }
        assert_ne!(f.gain(7, 0, 1, Slot(10)), g0);
    }

    #[test]
    fn rayleigh_symmetric() {
        let f = FadingModel::umi_nlos();
        assert_eq!(f.gain(3, 2, 9, Slot(33)), f.gain(3, 9, 2, Slot(33)));
    }

    #[test]
    fn rayleigh_unit_mean_linear() {
        let f = FadingModel::Rayleigh { coherence_slots: 1 };
        let n = 50_000u64;
        let mut sum = 0.0;
        for s in 0..n {
            sum += f.gain(11, 0, 1, Slot(s)).as_linear();
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn rayleigh_deep_fades_happen() {
        // P(power < 0.1) = 1 − e^{−0.1} ≈ 9.5%; check within ±2%.
        let f = FadingModel::Rayleigh { coherence_slots: 1 };
        let n = 50_000u64;
        let deep = (0..n)
            .filter(|&s| f.gain(13, 0, 1, Slot(s)).as_linear() < 0.1)
            .count() as f64
            / n as f64;
        assert!((deep - 0.095).abs() < 0.02, "deep-fade rate {deep}");
    }

    #[test]
    fn rician_high_k_is_nearly_deterministic() {
        let f = FadingModel::Rician {
            k: 1000.0,
            coherence_slots: 1,
        };
        for s in 0..100 {
            let g = f.gain(5, 0, 1, Slot(s)).0;
            assert!(g.abs() < 1.0, "gain {g} dB too far from 0 at high K");
        }
    }

    #[test]
    fn rician_unit_mean_linear() {
        let f = FadingModel::Rician {
            k: 3.0,
            coherence_slots: 1,
        };
        let n = 50_000u64;
        let mut sum = 0.0;
        for s in 0..n {
            sum += f.gain(17, 0, 1, Slot(s)).as_linear();
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn different_links_decorrelated() {
        let f = FadingModel::umi_nlos();
        assert_ne!(f.gain(1, 0, 1, Slot(0)), f.gain(1, 0, 2, Slot(0)));
    }

    #[test]
    fn max_gain_bounds_every_draw() {
        let models = [
            FadingModel::None,
            FadingModel::Rayleigh { coherence_slots: 1 },
            FadingModel::Rician {
                k: 3.0,
                coherence_slots: 1,
            },
            FadingModel::Rician {
                k: 0.1,
                coherence_slots: 1,
            },
        ];
        for f in models {
            let bound = f.max_gain_db();
            for s in 0..30_000u64 {
                let g = f.gain(99, 0, 1, Slot(s)).0;
                assert!(g <= bound, "{f:?}: gain {g} exceeds bound {bound}");
            }
        }
        // The Rayleigh bound is exactly the worst-case draw, to slack.
        let rayleigh = FadingModel::Rayleigh { coherence_slots: 1 };
        let analytic = 10.0 * (53.0 * core::f64::consts::LN_2).log10();
        assert!((rayleigh.max_gain_db() - analytic).abs() < 1e-6);
        assert_eq!(FadingModel::None.max_gain_db(), 0.0);
    }
}
