//! Deterministic path-loss models.
//!
//! The paper's Table I specifies the distance-dependent ("propagation
//! model in dB") loss as a piecewise outdoor D2D model taken from the
//! 3GPP D2D channel-model discussion (R1-130598):
//!
//! ```text
//! PL(d) = 4.35 + 25·log10(d)   if d < 6 m
//! PL(d) = 40.0 + 40·log10(d)   otherwise
//! ```
//!
//! §III additionally uses the classic log-distance model of eq. (7)
//! (`p** = p* + 10·n·log10(r/r0)` with path-loss exponent `n` = 2 indoor
//! / 4 outdoor) for the RSSI error derivation; both are implemented, as
//! is free-space loss for sanity baselines. Each model is invertible —
//! inversion is exactly what RSSI ranging does (eq. (11)).

use serde::{Deserialize, Serialize};

use crate::units::Db;
use ffd2d_sim::deployment::Meters;

/// Minimum modelled distance; below this the far-field assumption breaks
/// down and the loss is clamped to `PL(MIN_DISTANCE_M)`.
pub const MIN_DISTANCE_M: f64 = 0.1;

/// A deterministic distance → loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLoss {
    /// The paper's Table-I piecewise outdoor D2D model.
    PaperPiecewise,
    /// Log-distance: `PL(d) = pl0 + 10·n·log10(d/r0)` (eq. (7)).
    LogDistance {
        /// Loss at the reference distance, in dB.
        pl0: f64,
        /// Path-loss exponent (2 indoor, 4 outdoor per §III).
        exponent: f64,
        /// Reference distance in meters.
        r0: f64,
    },
    /// Free-space loss at carrier frequency `freq_ghz` GHz.
    FreeSpace {
        /// Carrier frequency in GHz.
        freq_ghz: f64,
    },
}

impl PathLoss {
    /// The paper's outdoor log-distance configuration (exponent 4,
    /// 1 m reference, reference loss matched to the piecewise model at
    /// 6 m so the two agree at the breakpoint).
    pub fn outdoor_log_distance() -> PathLoss {
        // Piecewise model at 6 m: 40 + 40·log10(6) = 71.126 dB.
        // Log-distance with n = 4, r0 = 1 m: pl0 + 40·log10(6) = pl0 + 31.126.
        PathLoss::LogDistance {
            pl0: 40.0,
            exponent: 4.0,
            r0: 1.0,
        }
    }

    /// Path-loss exponent in the regime that dominates ranging; used by
    /// the RSSI error model (`n` in eq. (12)).
    pub fn ranging_exponent(&self) -> f64 {
        match *self {
            // Beyond the 6 m breakpoint the paper's model has slope
            // 40 dB/decade, i.e. exponent 4 (outdoor, as stated in §III).
            PathLoss::PaperPiecewise => 4.0,
            PathLoss::LogDistance { exponent, .. } => exponent,
            PathLoss::FreeSpace { .. } => 2.0,
        }
    }

    /// Loss in dB at distance `d`.
    pub fn loss(&self, d: Meters) -> Db {
        let d = d.0.max(MIN_DISTANCE_M);
        let db = match *self {
            PathLoss::PaperPiecewise => {
                if d < 6.0 {
                    4.35 + 25.0 * d.log10()
                } else {
                    40.0 + 40.0 * d.log10()
                }
            }
            PathLoss::LogDistance { pl0, exponent, r0 } => pl0 + 10.0 * exponent * (d / r0).log10(),
            PathLoss::FreeSpace { freq_ghz } => {
                // FSPL(dB) = 20·log10(d_km) + 20·log10(f_MHz) + 32.44
                32.44 + 20.0 * (d / 1000.0).log10() + 20.0 * (freq_ghz * 1000.0).log10()
            }
        };
        Db(db)
    }

    /// Invert the model: the distance at which the loss equals `loss`.
    ///
    /// This is the ranging primitive of eq. (11): a device measuring a
    /// received power `p` knows the implied loss `tx − p` and inverts the
    /// model to an estimated distance. Monotonicity of every model makes
    /// the inverse well-defined; results are clamped to
    /// [`MIN_DISTANCE_M`, ∞).
    pub fn invert(&self, loss: Db) -> Meters {
        let l = loss.0;
        let d = match *self {
            PathLoss::PaperPiecewise => {
                // Breakpoint loss: PL(6) = 40 + 40·log10(6) ≈ 71.126 dB.
                let breakpoint = 40.0 + 40.0 * 6f64.log10();
                if l < breakpoint {
                    // Near regime also has a seam: the near branch at 6 m
                    // gives 4.35 + 25·log10(6) ≈ 23.80 dB, so losses in
                    // (23.80, 71.126) are unreachable by the near branch;
                    // ranging maps them to the near-branch inverse capped
                    // at 6 m — the standard convention for a piecewise
                    // model with a discontinuity.
                    10f64.powf((l - 4.35) / 25.0).min(6.0)
                } else {
                    10f64.powf((l - 40.0) / 40.0)
                }
            }
            PathLoss::LogDistance { pl0, exponent, r0 } => {
                r0 * 10f64.powf((l - pl0) / (10.0 * exponent))
            }
            PathLoss::FreeSpace { freq_ghz } => {
                1000.0 * 10f64.powf((l - 32.44 - 20.0 * (freq_ghz * 1000.0).log10()) / 20.0)
            }
        };
        Meters(d.max(MIN_DISTANCE_M))
    }

    /// Maximum distance at which a link closes given an available budget
    /// (`tx_power − detection_threshold`).
    pub fn max_range(&self, budget: Db) -> Meters {
        self.invert(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_table1_formulas() {
        let m = PathLoss::PaperPiecewise;
        // d < 6: PL = 4.35 + 25 log10(d)
        assert!((m.loss(Meters(1.0)).0 - 4.35).abs() < 1e-12);
        assert!((m.loss(Meters(3.0)).0 - (4.35 + 25.0 * 3f64.log10())).abs() < 1e-12);
        // d >= 6: PL = 40 + 40 log10(d)
        assert!((m.loss(Meters(6.0)).0 - (40.0 + 40.0 * 6f64.log10())).abs() < 1e-12);
        assert!((m.loss(Meters(100.0)).0 - 120.0).abs() < 1e-12);
    }

    #[test]
    fn paper_model_is_monotone() {
        let m = PathLoss::PaperPiecewise;
        let mut last = f64::MIN;
        for i in 1..2000 {
            let d = i as f64 * 0.25;
            let l = m.loss(Meters(d)).0;
            assert!(l >= last, "non-monotone at d={d}");
            last = l;
        }
    }

    #[test]
    fn table1_range_is_about_89_meters() {
        // Budget = 23 − (−95) = 118 dB; 40 + 40 log10(d) = 118 → d ≈ 89.1 m.
        let m = PathLoss::PaperPiecewise;
        let r = m.max_range(Db(118.0));
        assert!((r.0 - 89.125).abs() < 0.05, "range {r:?}");
    }

    #[test]
    fn invert_round_trips_far_regime() {
        let m = PathLoss::PaperPiecewise;
        for d in [6.0, 10.0, 25.0, 80.0, 140.0] {
            let back = m.invert(m.loss(Meters(d)));
            assert!((back.0 - d).abs() / d < 1e-9, "d={d} back={back:?}");
        }
    }

    #[test]
    fn invert_round_trips_near_regime() {
        let m = PathLoss::PaperPiecewise;
        for d in [0.5, 1.0, 2.0, 4.0, 5.9] {
            let back = m.invert(m.loss(Meters(d)));
            assert!((back.0 - d).abs() / d < 1e-9, "d={d} back={back:?}");
        }
    }

    #[test]
    fn invert_handles_the_seam() {
        // Losses between the branch images map to the 6 m seam.
        let m = PathLoss::PaperPiecewise;
        let seam = m.invert(Db(50.0));
        assert!((seam.0 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_round_trip() {
        let m = PathLoss::outdoor_log_distance();
        for d in [1.0, 5.0, 50.0, 500.0] {
            let back = m.invert(m.loss(Meters(d)));
            assert!((back.0 - d).abs() / d < 1e-9);
        }
        assert_eq!(m.ranging_exponent(), 4.0);
    }

    #[test]
    fn log_distance_matches_eq7_shape() {
        // Doubling distance adds 10·n·log10(2) dB.
        let m = PathLoss::LogDistance {
            pl0: 30.0,
            exponent: 2.0,
            r0: 1.0,
        };
        let delta = m.loss(Meters(20.0)).0 - m.loss(Meters(10.0)).0;
        assert!((delta - 20.0 * 2f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn free_space_reference_value() {
        // FSPL at 1 km, 2.4 GHz ≈ 100.05 dB.
        let m = PathLoss::FreeSpace { freq_ghz: 2.4 };
        assert!((m.loss(Meters(1000.0)).0 - 100.04).abs() < 0.1);
        let back = m.invert(m.loss(Meters(333.0)));
        assert!((back.0 - 333.0).abs() < 1e-6);
    }

    #[test]
    fn distances_below_minimum_are_clamped() {
        let m = PathLoss::PaperPiecewise;
        assert_eq!(m.loss(Meters(0.0)), m.loss(Meters(MIN_DISTANCE_M)));
        assert_eq!(m.loss(Meters(-5.0)), m.loss(Meters(MIN_DISTANCE_M)));
    }
}
