//! Log-normal shadowing.
//!
//! Eq. (9) of the paper adds to the deterministic path loss a random
//! variable `x`, "medium scale channel fading modelled as Gaussian zero
//! mean with variance σ²" in dB — i.e. log-normal shadowing — with
//! Table I fixing σ = 10 dB.
//!
//! Physically, shadowing is caused by obstacles between two devices, so
//! it is (a) **symmetric** (the A→B and B→A links see the same
//! obstruction) and (b) **constant over a trial** (devices are static in
//! the paper's evaluation). [`ShadowingField`] therefore derives one
//! Gaussian draw per *unordered* device pair from the trial seed — a
//! counter-based ("hash the key, not the history") construction, so
//! querying links in any order yields identical values.

use serde::{Deserialize, Serialize};

use crate::units::Db;
use ffd2d_sim::deployment::DeviceId;
use ffd2d_sim::rng::SplitMix64;

/// Deterministic per-link log-normal shadowing field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShadowingField {
    seed: u64,
    sigma_db: f64,
}

impl ShadowingField {
    /// A field with standard deviation `sigma_db` (Table I: 10 dB),
    /// keyed by `seed`.
    pub fn new(seed: u64, sigma_db: f64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        ShadowingField { seed, sigma_db }
    }

    /// A disabled field (σ = 0): every link shadows by exactly 0 dB.
    pub fn disabled() -> Self {
        ShadowingField {
            seed: 0,
            sigma_db: 0.0,
        }
    }

    /// Standard deviation in dB.
    #[inline]
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Provable upper bound on `|sample(a, b)|` in dB: σ times the
    /// largest magnitude [`standard_normal`] can emit. Used to derive
    /// worst-case audibility radii for spatial pruning — a pair farther
    /// apart than the radius implied by this bound can *never* close a
    /// link, for any seed.
    pub fn max_abs_db(&self) -> f64 {
        self.sigma_db * max_abs_standard_normal()
    }

    /// The shadowing term `x` (eq. (9)) for the link `{a, b}`, in dB.
    ///
    /// Symmetric: `sample(a, b) == sample(b, a)`.
    pub fn sample(&self, a: DeviceId, b: DeviceId) -> Db {
        if self.sigma_db == 0.0 {
            return Db::ZERO;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let key = ((lo as u64) << 32) | hi as u64;
        // ffd2d-lint: allow(rng-discipline) — stateless keyed field sampler: one fixed draw per link for the whole trial, pure in (seed, link); the tag domain-separates shadowing from fading draws
        Db(self.sigma_db * standard_normal(self.seed ^ 0x5AD0_11E5, key))
    }
}

/// Provable upper bound on `|standard_normal(..)|` over *all* inputs.
///
/// [`to_unit_open`] never returns below `2⁻⁵³`, so the Box–Muller radius
/// `sqrt(−2·ln a)` is at most `sqrt(2·53·ln 2) ≈ 8.5716`, and
/// `|cos| ≤ 1`. The tiny additive slack absorbs the (sub-ulp) rounding
/// of the square root. Unlike a statistical truncation margin, distances
/// pruned with this bound are *exactly* inaudible — spatial pruning
/// built on it is bit-identical to the dense reference, not merely
/// approximately so.
pub fn max_abs_standard_normal() -> f64 {
    (2.0 * 53.0 * core::f64::consts::LN_2).sqrt() + 1e-9
}

/// A deterministic standard-normal draw keyed by `(seed, key)`.
///
/// Uses two SplitMix64-mixed uniforms through the Box–Muller transform.
/// Exposed for reuse by the fading model.
pub(crate) fn standard_normal(seed: u64, key: u64) -> f64 {
    // ffd2d-lint: allow(rng-discipline) — the workspace's one Box–Muller kernel: stateless avalanche mixing of (seed, key), no stream constructed or advanced; `max_abs_standard_normal` proves its bound
    let u0 = SplitMix64::mix(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let u1 = SplitMix64::mix(u0 ^ 0xD134_2543_DE82_EF95); // ffd2d-lint: allow(rng-discipline) — second uniform of the same Box–Muller pair
    let (a, b) = (to_unit_open(u0), to_unit_open(u1));
    (-2.0 * a.ln()).sqrt() * (2.0 * core::f64::consts::PI * b).cos()
}

/// Map a u64 to the open interval (0, 1) — never exactly 0 (which would
/// blow up `ln`) or 1.
#[inline]
pub(crate) fn to_unit_open(x: u64) -> f64 {
    ((x >> 12) as f64 + 0.5) / (1u64 << 52) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_per_link() {
        let f = ShadowingField::new(42, 10.0);
        for a in 0..20u32 {
            for b in 0..20u32 {
                if a != b {
                    assert_eq!(f.sample(a, b), f.sample(b, a));
                }
            }
        }
    }

    #[test]
    fn constant_across_queries() {
        let f = ShadowingField::new(42, 10.0);
        let first = f.sample(3, 9);
        for _ in 0..10 {
            assert_eq!(f.sample(3, 9), first);
        }
    }

    #[test]
    fn different_links_decorrelated() {
        let f = ShadowingField::new(42, 10.0);
        let a = f.sample(0, 1).0;
        let b = f.sample(0, 2).0;
        let c = f.sample(1, 2).0;
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn different_seeds_differ() {
        let f1 = ShadowingField::new(1, 10.0);
        let f2 = ShadowingField::new(2, 10.0);
        assert_ne!(f1.sample(0, 1), f2.sample(0, 1));
    }

    #[test]
    fn disabled_field_is_zero() {
        let f = ShadowingField::disabled();
        assert_eq!(f.sample(5, 6), Db::ZERO);
        assert_eq!(f.sigma_db(), 0.0);
    }

    #[test]
    fn moments_match_sigma() {
        // Empirical mean ≈ 0, std ≈ σ over many links.
        let sigma = 10.0;
        let f = ShadowingField::new(7, sigma);
        let n = 20_000u64;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for i in 0..n {
            let v = f.sample((i % 1000) as u32, (1000 + i / 1000) as u32).0;
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let std = (sumsq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((std - sigma).abs() < 0.3, "std {std}");
    }

    #[test]
    fn unit_open_mapping_bounds() {
        assert!(to_unit_open(0) > 0.0);
        assert!(to_unit_open(u64::MAX) < 1.0);
        // The minimum of the open-interval mapping is exactly 2⁻⁵³ —
        // the premise of the max_abs_standard_normal bound.
        assert_eq!(to_unit_open(0), 2f64.powi(-53));
    }

    #[test]
    fn normal_bound_holds_empirically_and_is_tightish() {
        let bound = max_abs_standard_normal();
        assert!(bound < 8.58, "bound {bound} should be ~8.5716");
        for key in 0..200_000u64 {
            let v = standard_normal(0xABCD, key);
            assert!(v.abs() <= bound, "draw {v} exceeds bound {bound}");
        }
        // Worst-case input: u0 = 0 maximises the Box–Muller radius.
        let extreme = (-2.0 * to_unit_open(0).ln()).sqrt();
        assert!(extreme <= bound && extreme > bound - 1e-6);
    }

    #[test]
    fn max_abs_db_scales_with_sigma() {
        let f = ShadowingField::new(3, 10.0);
        assert!((f.max_abs_db() - 10.0 * max_abs_standard_normal()).abs() < 1e-12);
        assert_eq!(ShadowingField::disabled().max_abs_db(), 0.0);
        for a in 0..40u32 {
            for b in (a + 1)..40u32 {
                assert!(f.sample(a, b).0.abs() <= f.max_abs_db());
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = ShadowingField::new(0, -1.0);
    }
}
