//! The per-trial channel facade.
//!
//! [`Channel`] composes the three propagation layers —
//! deterministic path loss, per-link shadowing and per-block fast
//! fading — over a fixed [`Deployment`], and answers the questions every
//! protocol engine asks:
//!
//! * *What power does B receive when A transmits in slot t?*
//!   ([`Channel::rx_power`], eq. (9): `p*** = p** + x` plus fading)
//! * *Can B hear A at all?* ([`Channel::is_audible`], Table I's −95 dBm
//!   detection threshold)
//! * *What is the long-term proximity-signal strength of the link?*
//!   ([`Channel::mean_rx_power`] — path loss + shadowing, fading
//!   averaged out) — this is the **edge weight** of the spanning-tree
//!   algorithms ("weight of edge is directly proportional to PS
//!   strength", §IV).

use serde::{Deserialize, Serialize};

use crate::fading::FadingModel;
use crate::pathloss::PathLoss;
use crate::shadowing::ShadowingField;
use crate::units::{Db, Dbm};
use ffd2d_sim::deployment::{Deployment, DeviceId, Meters};
use ffd2d_sim::time::Slot;

/// Radio parameters of a scenario (the radio rows of Table I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Transmit power of every device (Table I: 23 dBm).
    pub tx_power: Dbm,
    /// Detection threshold (Table I: −95 dBm).
    pub detection_threshold: Dbm,
    /// Path-loss model (Table I piecewise by default).
    pub pathloss: PathLoss,
    /// Shadowing standard deviation in dB (Table I: 10 dB).
    pub shadowing_sigma_db: f64,
    /// Fast-fading model (Table I: UMi NLOS → Rayleigh block fading).
    pub fading: FadingModel,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            tx_power: Dbm(23.0),
            detection_threshold: Dbm(-95.0),
            pathloss: PathLoss::PaperPiecewise,
            shadowing_sigma_db: 10.0,
            fading: FadingModel::umi_nlos(),
        }
    }
}

impl ChannelConfig {
    /// An idealised channel: path loss only — used by unit tests and by
    /// the complexity benches where radio noise would obscure scaling.
    pub fn ideal() -> Self {
        ChannelConfig {
            shadowing_sigma_db: 0.0,
            fading: FadingModel::None,
            ..Self::default()
        }
    }

    /// Builder-style shadowing override.
    pub fn with_shadowing(mut self, sigma_db: f64) -> Self {
        self.shadowing_sigma_db = sigma_db;
        self
    }

    /// Builder-style fading override.
    pub fn with_fading(mut self, fading: FadingModel) -> Self {
        self.fading = fading;
        self
    }

    /// The link budget `tx − threshold` available to close a link.
    pub fn budget(&self) -> Db {
        self.tx_power - self.detection_threshold
    }

    /// Nominal maximum range (no shadowing/fading margin).
    pub fn nominal_range(&self) -> Meters {
        self.pathloss.max_range(self.budget())
    }

    /// Worst-case fading headroom in dB: the largest gain the fading
    /// model can ever produce ([`FadingModel::max_gain_db`]).
    pub fn fade_headroom_db(&self) -> f64 {
        self.fading.max_gain_db()
    }

    /// Worst-case shadowing boost in dB: σ times the largest magnitude
    /// the shadowing generator can emit.
    pub fn max_shadowing_boost_db(&self) -> f64 {
        self.shadowing_sigma_db * crate::shadowing::max_abs_standard_normal()
    }

    /// The audibility radius implied by the noise floor: the maximum
    /// distance at which *any* shadowing/fading realisation can lift the
    /// received power to the detection threshold. Pairs farther apart
    /// are provably inaudible for every seed — this is the spatial-grid
    /// pruning radius, and the reason grid pruning is bit-identical to a
    /// dense scan rather than a truncation.
    pub fn max_audible_range(&self) -> Meters {
        let slack = self.max_shadowing_boost_db() + self.fade_headroom_db();
        self.pathloss.max_range(Db(self.budget().0 + slack))
    }

    /// The maximum distance at which the *long-term mean* power (path
    /// loss + shadowing, fading averaged out) can reach the detection
    /// threshold — the candidate radius for §IV proximity-graph edges.
    pub fn max_mean_link_range(&self) -> Meters {
        self.pathloss
            .max_range(Db(self.budget().0 + self.max_shadowing_boost_db()))
    }
}

/// Batched mean-gain kernel: append to `out` the long-term mean
/// received power (path loss + shadowing) in dBm from `sender` to each
/// id in `receivers`, in order — one pass over positions instead of
/// pair-at-a-time facade calls. Element `j` is bit-identical to
/// [`Channel::mean_rx_power`]`(sender, receivers[j])` for a channel
/// built from the same deployment, config and shadowing field: the
/// expression and evaluation order are exactly the facade's. A
/// self-pair yields `NEG_INFINITY` — no device hears itself; callers'
/// half-duplex masking never reads the entry, the sentinel just keeps
/// threshold pruning conservative if one leaks through.
///
/// Both [`Channel::mean_rx_power_batch`] and the core `World`'s batch
/// fill delegate here, so every consumer of cached mean gains shares
/// one code path.
pub fn fill_mean_rx_dbm(
    deployment: &Deployment,
    tx_power: Dbm,
    pathloss: PathLoss,
    shadowing: &ShadowingField,
    sender: DeviceId,
    receivers: &[DeviceId],
    out: &mut Vec<f64>,
) {
    out.reserve(receivers.len());
    for &r in receivers {
        if r == sender {
            out.push(f64::NEG_INFINITY);
            continue;
        }
        let d = deployment.distance(sender, r);
        out.push((tx_power - pathloss.loss(d) + shadowing.sample(sender, r)).get());
    }
}

/// One sampled reception.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSample {
    /// Received power after all impairments.
    pub rx_power: Dbm,
    /// Whether it clears the detection threshold.
    pub detected: bool,
}

/// The composed channel for one trial.
///
/// Borrows the deployment: positions are fixed for the trial (static
/// devices, as in the paper's evaluation).
#[derive(Debug, Clone)]
pub struct Channel<'a> {
    deployment: &'a Deployment,
    config: ChannelConfig,
    shadowing: ShadowingField,
    fading_seed: u64,
}

impl<'a> Channel<'a> {
    /// Build the channel for `deployment` keyed by `seed`.
    pub fn new(deployment: &'a Deployment, config: ChannelConfig, seed: u64) -> Self {
        // ffd2d-lint: allow(rng-discipline) — domain-separation tags splitting the channel seed into the shadowing and fading field keys; World::new mirrors these byte for byte (see crates/core/src/world.rs)
        let shadowing = ShadowingField::new(seed ^ 0x5AD0, config.shadowing_sigma_db);
        Channel {
            deployment,
            config,
            shadowing,
            fading_seed: seed ^ 0xFAD0, // ffd2d-lint: allow(rng-discipline) — same split as the shadowing tag above
        }
    }

    /// The radio configuration in force.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The deployment this channel is bound to.
    pub fn deployment(&self) -> &Deployment {
        self.deployment
    }

    /// Long-term received power on link `a → b`: path loss plus
    /// shadowing, fast fading averaged out (unit mean). This is the
    /// proximity-signal strength used as spanning-tree edge weight.
    pub fn mean_rx_power(&self, a: DeviceId, b: DeviceId) -> Dbm {
        let d = self.deployment.distance(a, b);
        self.config.tx_power - self.config.pathloss.loss(d) + self.shadowing.sample(a, b)
    }

    /// Batched [`Channel::mean_rx_power`]: mean received power from
    /// `sender` at each of `receivers`, appended to `out` as raw dBm in
    /// one pass via [`fill_mean_rx_dbm`]. Element-wise bit-identical to
    /// the pair-at-a-time facade; self-pairs yield `NEG_INFINITY`.
    pub fn mean_rx_power_batch(
        &self,
        sender: DeviceId,
        receivers: &[DeviceId],
        out: &mut Vec<f64>,
    ) {
        fill_mean_rx_dbm(
            self.deployment,
            self.config.tx_power,
            self.config.pathloss,
            &self.shadowing,
            sender,
            receivers,
            out,
        );
    }

    /// Instantaneous received power on link `a → b` at `slot`
    /// (eq. (9) plus block fading).
    pub fn rx_power(&self, a: DeviceId, b: DeviceId, slot: Slot) -> Dbm {
        self.mean_rx_power(a, b) + self.config.fading.gain(self.fading_seed, a, b, slot)
    }

    /// Instantaneous received power from a precomputed mean: adds the
    /// per-slot block-fading draw to `mean_dbm`. When `mean_dbm` came
    /// from [`Channel::mean_rx_power`] or the batched kernel, the
    /// result is bit-identical to [`Channel::rx_power`] — fading is the
    /// only per-slot term, so splitting mean from draw changes nothing.
    #[inline]
    pub fn rx_power_from_mean(&self, mean_dbm: f64, a: DeviceId, b: DeviceId, slot: Slot) -> Dbm {
        Dbm(mean_dbm) + self.config.fading.gain(self.fading_seed, a, b, slot)
    }

    /// Sample a reception attempt on `a → b` at `slot`.
    pub fn sample(&self, a: DeviceId, b: DeviceId, slot: Slot) -> LinkSample {
        let rx_power = self.rx_power(a, b, slot);
        LinkSample {
            rx_power,
            detected: rx_power >= self.config.detection_threshold,
        }
    }

    /// True if `b` can decode `a`'s transmission at `slot`.
    pub fn is_audible(&self, a: DeviceId, b: DeviceId, slot: Slot) -> bool {
        self.sample(a, b, slot).detected
    }

    /// True if the *long-term* link closes (mean power above threshold)
    /// — the criterion used to define graph edges in §IV.
    pub fn link_exists(&self, a: DeviceId, b: DeviceId) -> bool {
        a != b && self.mean_rx_power(a, b) >= self.config.detection_threshold
    }

    /// All devices with a long-term link to `of`, with their mean PS
    /// strengths, strongest first.
    pub fn audible_neighbors(&self, of: DeviceId) -> Vec<(DeviceId, Dbm)> {
        let n = self.deployment.len() as DeviceId;
        let mut out: Vec<(DeviceId, Dbm)> = (0..n)
            .filter(|&b| b != of)
            .map(|b| (b, self.mean_rx_power(of, b)))
            .filter(|&(_, p)| p >= self.config.detection_threshold)
            .collect();
        out.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("power is never NaN"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_sim::deployment::Position;

    fn two_devices(d: f64) -> Deployment {
        Deployment::from_positions(
            vec![Position::new(0.0, 0.0), Position::new(d, 0.0)],
            Meters(200.0),
            Meters(200.0),
        )
    }

    #[test]
    fn ideal_channel_is_pure_path_loss() {
        let dep = two_devices(10.0);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let expected = Dbm(23.0) - PathLoss::PaperPiecewise.loss(Meters(10.0));
        assert_eq!(ch.rx_power(0, 1, Slot(0)), expected);
        assert_eq!(ch.mean_rx_power(0, 1), expected);
    }

    #[test]
    fn table1_default_budget_and_range() {
        let cfg = ChannelConfig::default();
        assert!((cfg.budget().0 - 118.0).abs() < 1e-12);
        assert!((cfg.nominal_range().0 - 89.125).abs() < 0.05);
    }

    #[test]
    fn close_link_is_audible_far_link_is_not() {
        let near = two_devices(5.0);
        let ch = Channel::new(&near, ChannelConfig::ideal(), 1);
        assert!(ch.is_audible(0, 1, Slot(0)));
        assert!(ch.link_exists(0, 1));

        let far = two_devices(150.0);
        let ch = Channel::new(&far, ChannelConfig::ideal(), 1);
        assert!(!ch.is_audible(0, 1, Slot(0)));
        assert!(!ch.link_exists(0, 1));
    }

    #[test]
    fn channel_is_reciprocal() {
        let dep = two_devices(42.0);
        let ch = Channel::new(&dep, ChannelConfig::default(), 7);
        assert_eq!(ch.rx_power(0, 1, Slot(9)), ch.rx_power(1, 0, Slot(9)));
        assert_eq!(ch.mean_rx_power(0, 1), ch.mean_rx_power(1, 0));
    }

    #[test]
    fn fading_fluctuates_but_mean_does_not() {
        let dep = two_devices(30.0);
        let ch = Channel::new(&dep, ChannelConfig::default(), 7);
        let m0 = ch.mean_rx_power(0, 1);
        let mut distinct = std::collections::HashSet::new();
        for s in (0..2000).step_by(20) {
            distinct.insert(ch.rx_power(0, 1, Slot(s)).0.to_bits());
            assert_eq!(ch.mean_rx_power(0, 1), m0);
        }
        assert!(distinct.len() > 50, "fading should vary across blocks");
    }

    #[test]
    fn audible_neighbors_sorted_strongest_first() {
        let dep = Deployment::from_positions(
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(30.0, 0.0),
                Position::new(80.0, 0.0),
                Position::new(300.0, 0.0), // out of range
            ],
            Meters(400.0),
            Meters(400.0),
        );
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        let nbrs = ch.audible_neighbors(0);
        let ids: Vec<DeviceId> = nbrs.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(nbrs[0].1 > nbrs[1].1 && nbrs[1].1 > nbrs[2].1);
    }

    #[test]
    fn no_self_links() {
        let dep = two_devices(5.0);
        let ch = Channel::new(&dep, ChannelConfig::ideal(), 1);
        assert!(!ch.link_exists(0, 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let dep = two_devices(25.0);
        let a = Channel::new(&dep, ChannelConfig::default(), 5).rx_power(0, 1, Slot(3));
        let b = Channel::new(&dep, ChannelConfig::default(), 5).rx_power(0, 1, Slot(3));
        let c = Channel::new(&dep, ChannelConfig::default(), 6).rx_power(0, 1, Slot(3));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn worst_case_ranges_dominate_every_realisation() {
        // Ideal channel: no slack, the audible range IS the nominal one.
        let ideal = ChannelConfig::ideal();
        assert_eq!(ideal.fade_headroom_db(), 0.0);
        assert_eq!(ideal.max_shadowing_boost_db(), 0.0);
        assert_eq!(ideal.max_audible_range().0, ideal.nominal_range().0);
        assert_eq!(ideal.max_mean_link_range().0, ideal.nominal_range().0);

        // Table-I channel: every sampled power at a distance beyond the
        // worst-case audible range must sit below the threshold.
        let cfg = ChannelConfig::default();
        let r = cfg.max_audible_range().0;
        assert!(r > cfg.nominal_range().0);
        let dep = two_devices(r + 1.0);
        for seed in 0..50u64 {
            let ch = Channel::new(&dep, cfg.clone(), seed);
            for s in 0..40 {
                assert!(
                    ch.rx_power(0, 1, Slot(s)) < cfg.detection_threshold,
                    "audible beyond the provable radius (seed {seed})"
                );
            }
            assert!(ch.mean_rx_power(0, 1) < cfg.detection_threshold);
        }
    }

    #[test]
    fn batched_means_match_the_facade_bit_for_bit() {
        let dep = Deployment::from_positions(
            (0..12)
                .map(|i| Position::new((i * 13 % 90) as f64, (i * 29 % 70) as f64))
                .collect(),
            Meters(200.0),
            Meters(200.0),
        );
        for cfg in [ChannelConfig::default(), ChannelConfig::ideal()] {
            let ch = Channel::new(&dep, cfg, 42);
            let receivers: Vec<DeviceId> = (0..12).collect();
            for sender in 0..12u32 {
                let mut batch = Vec::new();
                ch.mean_rx_power_batch(sender, &receivers, &mut batch);
                assert_eq!(batch.len(), receivers.len());
                for (&r, &m) in receivers.iter().zip(&batch) {
                    if r == sender {
                        assert_eq!(m, f64::NEG_INFINITY, "self-pair sentinel");
                    } else {
                        assert_eq!(
                            m.to_bits(),
                            ch.mean_rx_power(sender, r).get().to_bits(),
                            "link {sender}->{r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rx_power_from_batched_mean_matches_direct_sampling() {
        let dep = two_devices(42.0);
        let ch = Channel::new(&dep, ChannelConfig::default(), 7);
        let mut means = Vec::new();
        ch.mean_rx_power_batch(0, &[1], &mut means);
        for slot in [0u64, 3, 19, 400] {
            assert_eq!(
                ch.rx_power_from_mean(means[0], 0, 1, Slot(slot)),
                ch.rx_power(0, 1, Slot(slot)),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn shadowing_moves_the_mean() {
        let dep = two_devices(25.0);
        let ideal = Channel::new(&dep, ChannelConfig::ideal(), 5).mean_rx_power(0, 1);
        let shadowed = Channel::new(&dep, ChannelConfig::default(), 5).mean_rx_power(0, 1);
        assert_ne!(ideal, shadowed);
    }
}
