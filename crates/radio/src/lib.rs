//! # ffd2d-radio — radio channel substrate
//!
//! Implements the complete propagation model of the paper's Table I and
//! §III, from scratch:
//!
//! * [`units`] — strongly-typed dB/dBm/milliwatt algebra. The paper's
//!   eq. (8) (`p_l = 10·log10(p_l / p_l')`) is the dBm definition; the
//!   types here make it impossible to add two absolute powers or take a
//!   ratio of two gains by accident.
//! * [`pathloss`] — deterministic distance-dependent loss. The paper's
//!   outdoor model (Table I) is piecewise:
//!   `PL(d) = 4.35 + 25·log10(d)` for `d < 6 m`, else
//!   `PL(d) = 40.0 + 40·log10(d)`; the general log-distance model of
//!   eq. (7) (`p** = p* + 10·n·log10(r/r0)`) and free-space loss are also
//!   provided for ablations.
//! * [`shadowing`] — per-link log-normal (Gaussian-in-dB) shadowing with
//!   the Table-I standard deviation of 10 dB; symmetric and constant per
//!   link within a trial, derived deterministically from the trial seed.
//! * [`fading`] — UMi-NLOS fast fading as Rayleigh block fading (and a
//!   Rician variant for LOS ablations), one power draw per link per
//!   coherence block.
//! * [`rssi`] — the paper's ranging model, eqs. (6)–(12): distance
//!   estimation by path-loss inversion and the closed-form relative
//!   error `ε = 10^{x/(10·n)} − 1` under shadowing `x`.
//! * [`channel`] — the per-trial [`channel::Channel`] facade: sample the
//!   received power of any link at any slot, decide audibility against
//!   the −95 dBm threshold, compute the expected (fading-free) proximity
//!   signal strength used as spanning-tree edge weight.
//!
//! Every sampled quantity is a pure function of
//! `(seed, link, coherence block)`, so trials replay bit-identically on
//! any platform and thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod fading;
pub mod pathloss;
pub mod rssi;
pub mod shadowing;
pub mod units;

pub use channel::{Channel, ChannelConfig, LinkSample};
pub use fading::FadingModel;
pub use pathloss::PathLoss;
pub use rssi::{ranging_error_stats, RangingEstimate};
pub use shadowing::ShadowingField;
pub use units::{Db, Dbm, MilliWatt};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::channel::{Channel, ChannelConfig, LinkSample};
    pub use crate::fading::FadingModel;
    pub use crate::pathloss::PathLoss;
    pub use crate::rssi::RangingEstimate;
    pub use crate::shadowing::ShadowingField;
    pub use crate::units::{Db, Dbm, MilliWatt};
}
