//! Strongly-typed power and gain units.
//!
//! Radio link budgets mix two kinds of decibel quantities that must not
//! be confused:
//!
//! * **Absolute power** ([`Dbm`], [`MilliWatt`]) — "23 dBm transmit
//!   power", "−95 dBm detection threshold" (Table I).
//! * **Relative gain/loss** ([`Db`]) — path loss, shadowing, fading.
//!
//! The algebra is deliberately restricted: `Dbm ± Db → Dbm` (applying a
//! gain), `Dbm − Dbm → Db` (a link budget), `Db ± Db → Db`, but
//! `Dbm + Dbm` does not exist (adding absolute powers requires going
//! through linear [`MilliWatt`] first, eq. (8) of the paper).

use serde::{Deserialize, Serialize};

/// A relative gain (positive) or loss (negative) in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(pub f64);

/// An absolute power level in dB-milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(pub f64);

/// An absolute power in linear milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MilliWatt(pub f64);

impl Db {
    /// The zero gain.
    pub const ZERO: Db = Db(0.0);

    /// Raw decibel value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The linear power ratio `10^(dB/10)`.
    #[inline]
    pub fn as_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Build from a linear power ratio.
    #[inline]
    pub fn from_linear(ratio: f64) -> Db {
        assert!(ratio > 0.0, "power ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }
}

impl Dbm {
    /// Raw dBm value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Convert to linear milliwatts: `p[mW] = 10^(dBm/10)`.
    #[inline]
    pub fn to_milliwatt(self) -> MilliWatt {
        MilliWatt(10f64.powf(self.0 / 10.0))
    }
}

impl MilliWatt {
    /// Raw milliwatt value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Convert to dBm (the paper's eq. (8) with a 1 mW reference).
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        assert!(self.0 > 0.0, "power must be positive to express in dBm");
        Dbm(10.0 * self.0.log10())
    }
}

// --- gain algebra -----------------------------------------------------

impl core::ops::Add<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl core::ops::Sub<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl core::ops::Sub<Dbm> for Dbm {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl core::ops::Add for Db {
    type Output = Db;
    #[inline]
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Db {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl core::ops::Neg for Db {
    type Output = Db;
    #[inline]
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl core::ops::Add for MilliWatt {
    type Output = MilliWatt;
    #[inline]
    fn add(self, rhs: MilliWatt) -> MilliWatt {
        MilliWatt(self.0 + rhs.0)
    }
}

impl core::fmt::Display for Db {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl core::fmt::Display for Dbm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl core::fmt::Display for MilliWatt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.4} mW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_round_trip() {
        for v in [-95.0, -30.0, 0.0, 23.0] {
            let back = Dbm(v).to_milliwatt().to_dbm();
            assert!((back.0 - v).abs() < 1e-9, "{v} -> {back:?}");
        }
    }

    #[test]
    fn known_conversions() {
        // 0 dBm = 1 mW, 23 dBm ≈ 199.5 mW (Table I device power).
        assert!((Dbm(0.0).to_milliwatt().0 - 1.0).abs() < 1e-12);
        assert!((Dbm(23.0).to_milliwatt().0 - 199.526).abs() < 1e-3);
        assert!((Dbm(10.0).to_milliwatt().0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn link_budget_algebra() {
        let tx = Dbm(23.0);
        let pl = Db(118.0);
        let rx = tx - pl;
        assert!((rx.0 - -95.0).abs() < 1e-12);
        // Budget: tx − threshold = available path loss.
        let budget = tx - Dbm(-95.0);
        assert!((budget.0 - 118.0).abs() < 1e-12);
    }

    #[test]
    fn db_linear_round_trip() {
        for v in [-20.0, -3.0, 0.0, 3.0, 20.0] {
            let back = Db::from_linear(Db(v).as_linear());
            assert!((back.0 - v).abs() < 1e-9);
        }
        assert!((Db(3.0103).as_linear() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn gain_composition() {
        let g = Db(10.0) + Db(-4.0) - Db(6.0);
        assert!((g.0 - 0.0).abs() < 1e-12);
        assert_eq!(-Db(5.0), Db(-5.0));
    }

    #[test]
    fn linear_power_sum() {
        let total = Dbm(0.0).to_milliwatt() + Dbm(0.0).to_milliwatt();
        assert!((total.to_dbm().0 - 3.0103).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_milliwatt_has_no_dbm() {
        let _ = MilliWatt(0.0).to_dbm();
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dbm(23.0).to_string(), "23.00 dBm");
        assert_eq!(Db(-3.5).to_string(), "-3.50 dB");
    }
}
