//! RSSI ranging and its error model (eqs. (6)–(12)).
//!
//! A device receiving a proximity signal at power `p` from a neighbour
//! transmitting at `p_tx` observes an implied loss `p_tx − p` and, by
//! inverting the path-loss model, an estimated distance `r*`. Shadowing
//! `x ~ N(0, σ²)` dB (eq. (9)) perturbs the implied loss, so the
//! estimate relates to the true distance `r` by the paper's eq. (11):
//!
//! ```text
//! r* = r · 10^(x / (10·n))
//! ```
//!
//! giving the multiplicative relative error of eq. (12):
//!
//! ```text
//! ε = r*/r − 1 = 10^(x / (10·n)) − 1  ∈ [−1, +∞)   (eq. (6))
//! ```
//!
//! Because `x` is Gaussian in dB, `1 + ε` is **log-normal**, with closed
//! form moments — [`ranging_error_stats`] returns them so experiments
//! can check measured error distributions against theory (experiment E5
//! of DESIGN.md).

use serde::{Deserialize, Serialize};

use crate::pathloss::PathLoss;
use crate::units::{Db, Dbm};
use ffd2d_sim::deployment::Meters;

/// The outcome of one RSSI ranging measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangingEstimate {
    /// Estimated distance `r*` (eq. (11)).
    pub distance: Meters,
    /// Received power the estimate was derived from.
    pub rx_power: Dbm,
    /// Implied loss `p_tx − p_rx` inverted through the model.
    pub implied_loss: Db,
}

impl RangingEstimate {
    /// Estimate distance from a received proximity signal.
    ///
    /// `tx_power` is known a priori (all devices are of the same type,
    /// assumption (I) of §IV; Table I fixes it to 23 dBm).
    pub fn from_rx(tx_power: Dbm, rx_power: Dbm, model: &PathLoss) -> RangingEstimate {
        let implied_loss = tx_power - rx_power;
        RangingEstimate {
            distance: model.invert(implied_loss),
            rx_power,
            implied_loss,
        }
    }

    /// Relative error against a known true distance (eq. (6)):
    /// `ε = r*/r − 1`.
    pub fn relative_error(&self, true_distance: Meters) -> f64 {
        assert!(true_distance.0 > 0.0, "true distance must be positive");
        self.distance.0 / true_distance.0 - 1.0
    }
}

/// The relative ranging error implied by a shadowing draw `x` dB under
/// path-loss exponent `n` — the paper's eq. (12) in closed form.
#[inline]
pub fn relative_error_from_shadowing(x_db: f64, exponent: f64) -> f64 {
    10f64.powf(x_db / (10.0 * exponent)) - 1.0
}

/// Theoretical moments of the ranging error distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangingErrorStats {
    /// `E[1 + ε]` — mean multiplicative bias of the estimate.
    pub mean_ratio: f64,
    /// Median of `1 + ε` (always exactly 1: shadowing is symmetric in dB).
    pub median_ratio: f64,
    /// Standard deviation of `1 + ε`.
    pub std_ratio: f64,
}

/// Closed-form moments of `1 + ε = 10^(x/(10n))`, `x ~ N(0, σ²)`.
///
/// Substituting `y = x·ln10/(10n)` makes `1 + ε = e^y` log-normal with
/// `μ_y = 0`, `σ_y = σ·ln10/(10n)`, so `E = e^{σ_y²/2}`,
/// `Var = (e^{σ_y²} − 1)·e^{σ_y²}`.
pub fn ranging_error_stats(sigma_db: f64, exponent: f64) -> RangingErrorStats {
    assert!(sigma_db >= 0.0 && exponent > 0.0);
    let sigma_y = sigma_db * core::f64::consts::LN_10 / (10.0 * exponent);
    let s2 = sigma_y * sigma_y;
    RangingErrorStats {
        mean_ratio: (s2 / 2.0).exp(),
        median_ratio: 1.0,
        std_ratio: ((s2.exp() - 1.0) * s2.exp()).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadowing::ShadowingField;

    const TX: Dbm = Dbm(23.0);

    #[test]
    fn perfect_channel_gives_exact_distance() {
        let m = PathLoss::PaperPiecewise;
        for d in [2.0, 10.0, 50.0, 88.0] {
            let rx = TX - m.loss(Meters(d));
            let est = RangingEstimate::from_rx(TX, rx, &m);
            assert!(
                (est.distance.0 - d).abs() / d < 1e-9,
                "d={d} est={:?}",
                est.distance
            );
            assert!(est.relative_error(Meters(d)).abs() < 1e-9);
        }
    }

    #[test]
    fn shadowing_maps_to_eq12_error() {
        // A +x dB shadowing on the link inflates implied loss by x, so
        // the estimate must match eq. (11): r* = r · 10^(x/(10n)).
        let m = PathLoss::outdoor_log_distance();
        let n = m.ranging_exponent();
        let d = 30.0;
        for x in [-12.0, -3.0, 0.0, 3.0, 12.0] {
            let rx = TX - m.loss(Meters(d)) - Db(x);
            let est = RangingEstimate::from_rx(TX, rx, &m);
            let expected = d * 10f64.powf(x / (10.0 * n));
            assert!(
                (est.distance.0 - expected).abs() / expected < 1e-9,
                "x={x}: est {} vs {expected}",
                est.distance.0
            );
            let eps = est.relative_error(Meters(d));
            let eq12 = relative_error_from_shadowing(x, n);
            assert!((eps - eq12).abs() < 1e-9);
        }
    }

    #[test]
    fn error_bounds_match_eq6() {
        // ε ∈ [−1, +∞): even an absurdly deep shadow cannot push the
        // ratio below zero.
        for x in [-200.0, -50.0, 0.0, 50.0, 200.0] {
            let eps = relative_error_from_shadowing(x, 4.0);
            assert!(eps >= -1.0);
        }
        assert!((relative_error_from_shadowing(0.0, 4.0)).abs() < 1e-12);
    }

    #[test]
    fn stats_closed_form_sanity() {
        // σ = 10 dB, n = 4 (Table I outdoor): σ_y = 10·ln10/40 ≈ 0.5756.
        let stats = ranging_error_stats(10.0, 4.0);
        assert!((stats.mean_ratio - (0.5756f64.powi(2) / 2.0).exp()).abs() < 1e-3);
        assert_eq!(stats.median_ratio, 1.0);
        assert!(stats.std_ratio > 0.0);
        // Zero shadowing → no error.
        let clean = ranging_error_stats(0.0, 4.0);
        assert_eq!(clean.mean_ratio, 1.0);
        assert_eq!(clean.std_ratio, 0.0);
    }

    #[test]
    fn empirical_error_matches_theory() {
        // Monte-Carlo over the actual ShadowingField against the closed
        // form — this is experiment E5 in miniature.
        let sigma = 10.0;
        let m = PathLoss::outdoor_log_distance();
        let n_exp = m.ranging_exponent();
        let field = ShadowingField::new(99, sigma);
        let d = 40.0;
        let trials = 20_000u32;
        let mut sum = 0.0;
        for i in 0..trials {
            let x = field.sample(i, i + 100_000);
            let rx = TX - m.loss(Meters(d)) - x;
            let est = RangingEstimate::from_rx(TX, rx, &m);
            sum += est.distance.0 / d;
        }
        let mean_ratio = sum / trials as f64;
        let theory = ranging_error_stats(sigma, n_exp).mean_ratio;
        assert!(
            (mean_ratio - theory).abs() < 0.05,
            "measured {mean_ratio} theory {theory}"
        );
    }

    #[test]
    fn higher_exponent_means_smaller_ranging_error() {
        // §III: outdoor n=4 halves the dB-to-distance error sensitivity
        // versus indoor n=2.
        let indoor = ranging_error_stats(10.0, 2.0);
        let outdoor = ranging_error_stats(10.0, 4.0);
        assert!(outdoor.std_ratio < indoor.std_ratio);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_true_distance_rejected() {
        let m = PathLoss::PaperPiecewise;
        let est = RangingEstimate::from_rx(TX, Dbm(-60.0), &m);
        let _ = est.relative_error(Meters(0.0));
    }
}
