//! Property-based tests for the radio substrate.

use proptest::prelude::*;

use ffd2d_radio::fading::FadingModel;
use ffd2d_radio::pathloss::PathLoss;
use ffd2d_radio::rssi::{ranging_error_stats, relative_error_from_shadowing, RangingEstimate};
use ffd2d_radio::shadowing::ShadowingField;
use ffd2d_radio::units::{Db, Dbm, MilliWatt};
use ffd2d_sim::deployment::Meters;
use ffd2d_sim::time::Slot;

fn models() -> impl Strategy<Value = PathLoss> {
    prop_oneof![
        Just(PathLoss::PaperPiecewise),
        (20.0..60.0f64, 1.5..5.0f64).prop_map(|(pl0, exponent)| PathLoss::LogDistance {
            pl0,
            exponent,
            r0: 1.0
        }),
        (0.5..6.0f64).prop_map(|freq_ghz| PathLoss::FreeSpace { freq_ghz }),
    ]
}

proptest! {
    /// dBm ↔ mW conversion round-trips over the full realistic range.
    #[test]
    fn power_conversion_round_trip(dbm in -150.0f64..50.0) {
        let back = Dbm(dbm).to_milliwatt().to_dbm();
        prop_assert!((back.get() - dbm).abs() < 1e-9);
    }

    /// Linear power addition is order-independent and ≥ max component.
    #[test]
    fn milliwatt_sum(a in -100.0f64..30.0, b in -100.0f64..30.0) {
        let s1 = Dbm(a).to_milliwatt() + Dbm(b).to_milliwatt();
        let s2 = Dbm(b).to_milliwatt() + Dbm(a).to_milliwatt();
        prop_assert!((s1.get() - s2.get()).abs() < 1e-15);
        prop_assert!(s1.to_dbm().get() >= a.max(b) - 1e-9);
        let _ = MilliWatt(s1.get());
    }

    /// Every path-loss model is monotone non-decreasing in distance and
    /// inverts exactly outside the piecewise seam.
    #[test]
    fn pathloss_monotone_and_invertible(model in models(), d1 in 0.2f64..500.0, d2 in 0.2f64..500.0) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.loss(Meters(lo)).get() <= model.loss(Meters(hi)).get() + 1e-12);
        // Round trip (the paper model's seam (≈23.8, ≈71.1) dB is not in
        // the image of loss(), so every image point inverts exactly).
        let back = model.invert(model.loss(Meters(d1)));
        prop_assert!((back.0 - d1).abs() / d1 < 1e-6, "model {model:?} d {d1} -> {back:?}");
    }

    /// Ranging: the estimate responds to shadowing exactly per eq. (11),
    /// for any true distance beyond the breakpoint.
    #[test]
    fn ranging_matches_eq11(d in 6.0f64..200.0, x in -30.0f64..30.0) {
        let model = PathLoss::outdoor_log_distance();
        let n = model.ranging_exponent();
        let tx = Dbm(23.0);
        let rx = tx - model.loss(Meters(d)) - Db(x);
        let est = RangingEstimate::from_rx(tx, rx, &model);
        let expected = d * 10f64.powf(x / (10.0 * n));
        prop_assert!((est.distance.0 - expected).abs() / expected < 1e-9);
        let eps = est.relative_error(Meters(d));
        prop_assert!(eps >= -1.0, "eq. (6) lower bound violated");
        prop_assert!((eps - relative_error_from_shadowing(x, n)).abs() < 1e-9);
    }

    /// Closed-form error stats: mean ≥ median = 1 and both grow with σ.
    #[test]
    fn error_stats_ordering(s1 in 0.0f64..20.0, s2 in 0.0f64..20.0, n in 1.5f64..5.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let a = ranging_error_stats(lo, n);
        let b = ranging_error_stats(hi, n);
        prop_assert!(a.mean_ratio >= a.median_ratio - 1e-12);
        prop_assert!(b.mean_ratio >= a.mean_ratio - 1e-12);
        prop_assert!(b.std_ratio >= a.std_ratio - 1e-12);
    }

    /// Shadowing is symmetric, deterministic, and scales linearly in σ.
    #[test]
    fn shadowing_properties(seed in any::<u64>(), a in 0u32..500, b in 0u32..500, scale in 0.1f64..4.0) {
        prop_assume!(a != b);
        let f1 = ShadowingField::new(seed, 10.0);
        prop_assert_eq!(f1.sample(a, b), f1.sample(b, a));
        let f2 = ShadowingField::new(seed, 10.0 * scale);
        let r = f2.sample(a, b).get() / f1.sample(a, b).get();
        if f1.sample(a, b).get().abs() > 1e-9 {
            prop_assert!((r - scale).abs() < 1e-9);
        }
    }

    /// Fading is symmetric and block-constant for any block length.
    #[test]
    fn fading_block_structure(seed in any::<u64>(), a in 0u32..100, b in 0u32..100, coh in 1u64..50, slot in 0u64..10_000) {
        prop_assume!(a != b);
        let f = FadingModel::Rayleigh { coherence_slots: coh };
        let g = f.gain(seed, a, b, Slot(slot));
        prop_assert_eq!(g, f.gain(seed, b, a, Slot(slot)));
        let block_start = (slot / coh) * coh;
        prop_assert_eq!(g, f.gain(seed, a, b, Slot(block_start)));
    }
}
