//! Per-device protocol state.
//!
//! A [`Device`] bundles what one UE carries through a trial: its
//! oscillator (eqs. (3)–(5)), its neighbour table, its service interest,
//! and its view of the spanning structure (fragment id, fragment head,
//! tree parent/children). The coupling policy ([`CouplingMode`]) is the
//! single behavioural difference between the baseline FST (mesh: apply
//! the PRC to every decoded fire) and the proposed ST after tree
//! construction (tree: apply it only to tree neighbours) — §IV's
//! "instead of considering whole graph for each node, we create sub
//! tree to reduce control message overhead".

use serde::{Deserialize, Serialize};

use ffd2d_osc::oscillator::PhaseOscillator;
use ffd2d_osc::prc::Prc;
use ffd2d_phy::codec::ServiceClass;
use ffd2d_sim::deployment::DeviceId;

use crate::discovery::NeighborTable;

/// Which decoded fires couple into the oscillator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CouplingMode {
    /// No coupling (discovery phase: free-run and listen).
    Isolated,
    /// Couple to every decoded fire (FST baseline behaviour).
    Mesh,
    /// Couple only to fires from tree neighbours (ST after merge).
    TreeOnly,
}

/// One UE's protocol state.
#[derive(Debug, Clone)]
pub struct Device {
    /// Device id (index into the deployment).
    pub id: DeviceId,
    /// The firefly oscillator.
    pub osc: PhaseOscillator,
    /// Advertised service interest.
    pub service: ServiceClass,
    /// Neighbour & service discovery state.
    pub table: NeighborTable,
    /// Current fragment identifier (`S_v` membership).
    pub fragment: DeviceId,
    /// Current fragment head.
    pub head: DeviceId,
    /// Tree parent toward the head (`None` at the head).
    pub parent: Option<DeviceId>,
    /// Tree children.
    pub children: Vec<DeviceId>,
    /// Active coupling policy.
    pub coupling: CouplingMode,
}

impl Device {
    /// A fresh device: own fragment, own head, no tree edges.
    pub fn new(
        id: DeviceId,
        n: usize,
        initial_phase: f64,
        period_slots: u32,
        refractory_slots: u32,
        service: ServiceClass,
    ) -> Device {
        Device {
            id,
            osc: PhaseOscillator::new(initial_phase, period_slots, refractory_slots),
            service,
            table: NeighborTable::new(n),
            fragment: id,
            head: id,
            parent: None,
            children: Vec::new(),
            coupling: CouplingMode::Isolated,
        }
    }

    /// True if this device heads its fragment.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.head == self.id
    }

    /// All tree neighbours (parent + children).
    pub fn tree_neighbors(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.parent.into_iter().chain(self.children.iter().copied())
    }

    /// True if `other` is a tree neighbour.
    pub fn is_tree_neighbor(&self, other: DeviceId) -> bool {
        self.parent == Some(other) || self.children.contains(&other)
    }

    /// Attach a tree edge toward `child`.
    pub fn add_child(&mut self, child: DeviceId) {
        debug_assert!(!self.children.contains(&child), "duplicate child {child}");
        self.children.push(child);
    }

    /// Should a decoded fire from `sender` affect the oscillator under
    /// the current policy?
    pub fn couples_to(&self, sender: DeviceId) -> bool {
        match self.coupling {
            CouplingMode::Isolated => false,
            CouplingMode::Mesh => true,
            // Tree mode: timing flows down the tree from the fragment
            // head; only the parent's pulses matter.
            CouplingMode::TreeOnly => self.parent == Some(sender),
        }
    }

    /// Apply a decoded fire from `sender`, emitted `age` slots ago.
    /// Returns `true` if this device is absorbed (fires now).
    ///
    /// * `Mesh` — symmetric Mirollo–Strogatz pulse coupling through the
    ///   PRC (the FST baseline's behaviour; convergence per [19]).
    /// * `TreeOnly` — master–slave alignment: a pulse from the tree
    ///   parent makes this device adopt the parent's timing exactly
    ///   (the fragment head is the timing reference, which is how the
    ///   tree-sync argument of Chao et al. [17] is realised). Pulses
    ///   from any other device are ignored.
    pub fn hear_fire_delayed(&mut self, sender: DeviceId, prc: &Prc, age: u32) -> bool {
        match self.coupling {
            CouplingMode::Isolated => false,
            CouplingMode::Mesh => self.osc.on_pulse_delayed(prc, age),
            CouplingMode::TreeOnly => {
                if self.parent == Some(sender) {
                    self.osc.align_to_fire(age);
                }
                false
            }
        }
    }

    /// Apply a decoded same-slot fire from `sender` (zero age).
    pub fn hear_fire(&mut self, sender: DeviceId, prc: &Prc) -> bool {
        self.hear_fire_delayed(sender, prc, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(id: DeviceId) -> Device {
        Device::new(id, 10, 0.5, 100, 2, ServiceClass::KEEP_ALIVE)
    }

    #[test]
    fn fresh_device_is_its_own_fragment_and_head() {
        let d = device(3);
        assert_eq!(d.fragment, 3);
        assert!(d.is_head());
        assert_eq!(d.tree_neighbors().count(), 0);
        assert_eq!(d.coupling, CouplingMode::Isolated);
    }

    #[test]
    fn tree_neighbor_bookkeeping() {
        let mut d = device(0);
        d.parent = Some(7);
        d.add_child(3);
        d.add_child(5);
        let nbrs: Vec<DeviceId> = d.tree_neighbors().collect();
        assert_eq!(nbrs, vec![7, 3, 5]);
        assert!(d.is_tree_neighbor(7));
        assert!(d.is_tree_neighbor(5));
        assert!(!d.is_tree_neighbor(9));
    }

    #[test]
    fn coupling_policy_gates_pulses() {
        let prc = Prc::standard();
        let mut d = device(0);
        d.parent = Some(1);

        d.coupling = CouplingMode::Isolated;
        let p0 = d.osc.phase();
        assert!(!d.hear_fire(1, &prc));
        assert_eq!(d.osc.phase(), p0);

        d.coupling = CouplingMode::TreeOnly;
        assert!(!d.couples_to(2), "non-parent ignored");
        assert!(d.couples_to(1), "parent couples");
        d.hear_fire_delayed(1, &prc, 3);
        assert!(
            (d.osc.phase() - 0.03).abs() < 1e-12,
            "adopted parent timing"
        );

        d.coupling = CouplingMode::Mesh;
        assert!(d.couples_to(2));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate child")]
    fn duplicate_child_rejected() {
        let mut d = device(0);
        d.add_child(1);
        d.add_child(1);
    }
}
