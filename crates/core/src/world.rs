//! The per-trial world and its fast shared medium.
//!
//! [`World`] instantiates one trial of a scenario: the deployment, a
//! spatial-grid neighbor index over it, the ground-truth proximity graph
//! of §IV (edges where the long-term PS strength clears the −95 dBm
//! threshold, weighted by that strength; built lazily on first use) and
//! the per-device service interests.
//!
//! ## Why a second medium implementation
//!
//! `ffd2d_phy::Medium` is the reference resolver: it re-samples the
//! channel per (tx, rx) pair through the full `Channel` stack and is
//! exactly right for protocol-correctness tests. The figure sweeps,
//! however, run populations of thousands of devices for tens of
//! thousands of slots — the hot loop is `(transmissions × receivers)`
//! per slot. [`FastMedium`] implements the *same*
//! decode/collision/capture semantics with three optimisations:
//!
//! 1. **Spatial pruning.** Devices are bucketed into a
//!    [`SpatialGrid`] whose cell side is the worst-case audibility
//!    radius — the distance at which even the most favourable
//!    shadowing/fading realisation cannot reach the detection threshold
//!    (`ChannelConfig::max_audible_range`). Collision resolution is
//!    batched per grid cell: each transmission is posted to the cells
//!    its audibility disc covers, then receivers are walked cell by
//!    cell. Pairs outside the disc are *provably* inaudible, so —
//!    unlike a statistical fade margin — pruning changes no decode
//!    decision, for any seed.
//! 2. **Lazy link gains.** There is no `n × n` gain matrix: mean link
//!    powers are computed on demand and memoised in a bounded
//!    per-device LRU of hot links, so memory stays O(n) at any scale.
//! 3. **Epoch-stamped accumulators.** Per-(receiver, codec) collision
//!    state is slot-stamped, so a slot costs O(candidates) with zero
//!    allocation, and delivery order is fixed by sorting touched keys.
//!
//! Counters are reconstructed exactly: a detected pair increments the
//! accumulator, and the below-threshold tally is recovered as
//! `(#transmissions × #non-transmitting receivers) − #detected`, which
//! is what the reference resolver counts pair by pair. Equivalence with
//! the reference resolver is pinned by tests in this module and by the
//! `medium_equivalence` integration harness.

use std::sync::OnceLock;
use std::time::Instant;

use rand::Rng;

use ffd2d_graph::adjacency::WeightedGraph;
use ffd2d_graph::spatial::SpatialGrid;
use ffd2d_graph::weight::W;
use ffd2d_parallel::sharded_for_each;
use ffd2d_phy::codec::{RachCodec, ServiceClass};
use ffd2d_phy::frame::ProximitySignal;
use ffd2d_radio::channel::{Channel, ChannelConfig};
use ffd2d_radio::fading::FadingModel;
use ffd2d_radio::pathloss::PathLoss;
use ffd2d_radio::shadowing::ShadowingField;
use ffd2d_radio::units::Dbm;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::{Deployment, DeviceId, Meters, Position};
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::Slot;
use ffd2d_telemetry::{NullRecorder, Recorder};
use ffd2d_trace::{NullSink, TraceEvent, TraceSink};

use crate::scenario::ScenarioConfig;

/// Floor on the grid cell side relative to the arena: at most 256×256
/// cells, so degenerate configurations (tiny radius in a huge arena)
/// cannot blow up cell-index memory.
const MAX_CELLS_PER_AXIS: f64 = 256.0;

/// One trial's fully-instantiated world.
#[derive(Debug, Clone)]
pub struct World {
    cfg: ScenarioConfig,
    deployment: Deployment,
    /// Spatial index over device positions; cell side = worst-case
    /// audibility radius (clamped to the arena diagonal).
    grid: SpatialGrid,
    /// Ground-truth §IV proximity graph, built lazily on first access
    /// via the grid (construction is O(n · occupancy), not O(n²)).
    graph: OnceLock<WeightedGraph>,
    /// Per-device service interests.
    services: Vec<ServiceClass>,
    // Decomposed channel state, so mean powers are computable on demand
    // without re-borrowing the deployment through a `Channel`.
    tx_power: Dbm,
    pathloss: PathLoss,
    shadowing: ShadowingField,
    fading: FadingModel,
    fading_seed: u64,
    threshold_dbm: f64,
    capture_margin_db: f64,
    /// Provable fading headroom: mean below `threshold − headroom` can
    /// never be detected.
    fade_headroom_db: f64,
    /// Worst-case audibility radius (any realisation), clamped to the
    /// arena diagonal — the medium's grid-query radius.
    audible_range_m: f64,
    /// Worst-case *mean*-link radius (shadowing only) — the proximity
    /// graph's candidate radius.
    mean_link_range_m: f64,
    /// Bumped by every re-bucketing; media drop their link caches when
    /// it moves.
    version: u64,
}

impl World {
    /// Instantiate the world for `cfg` (deterministic in `cfg.sim.seed`).
    pub fn new(cfg: &ScenarioConfig) -> World {
        cfg.validate().expect("invalid scenario");
        let seed = cfg.sim.seed;
        let n = cfg.sim.n_devices;
        let mut dep_rng = StreamRng::new(seed, 0, StreamId::Deployment);
        let deployment =
            Deployment::uniform(n, cfg.sim.area_width, cfg.sim.area_height, &mut dep_rng);

        let (w, h) = (cfg.sim.area_width.get(), cfg.sim.area_height.get());
        let diagonal = (w * w + h * h).sqrt();
        let audible_range_m = cfg.channel.max_audible_range().get().min(diagonal);
        let mean_link_range_m = cfg.channel.max_mean_link_range().get().min(diagonal);
        let cell = audible_range_m.max(w.max(h) / MAX_CELLS_PER_AXIS);
        let grid = SpatialGrid::new(w, h, cell, &deployment.coords());

        let mut svc_rng = StreamRng::new(seed, 0, StreamId::Services);
        let services = (0..n)
            .map(|_| ServiceClass::new(svc_rng.gen_range(0..cfg.protocol.service_classes)))
            .collect();

        World {
            deployment,
            grid,
            graph: OnceLock::new(),
            services,
            tx_power: cfg.channel.tx_power,
            pathloss: cfg.channel.pathloss,
            // Mirrors `Channel::new` exactly, so on-demand means are
            // bit-identical to `Channel::mean_rx_power`.
            shadowing: ShadowingField::new(seed ^ 0x5AD0, cfg.channel.shadowing_sigma_db),
            fading: cfg.channel.fading,
            fading_seed: seed ^ 0xFAD0,
            threshold_dbm: cfg.channel.detection_threshold.get(),
            capture_margin_db: 6.0,
            fade_headroom_db: cfg.channel.fade_headroom_db(),
            audible_range_m,
            mean_link_range_m,
            version: 0,
            cfg: cfg.clone(),
        }
    }

    /// Number of devices.
    #[inline]
    pub fn n(&self) -> usize {
        self.deployment.len()
    }

    /// The scenario this world was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The spatial neighbor index over the current positions.
    pub fn spatial_grid(&self) -> &SpatialGrid {
        &self.grid
    }

    /// Ground-truth proximity graph (edges = long-term audible links,
    /// weights = mean PS strength in dBm). Built lazily on first call;
    /// candidate pairs come from the spatial grid at the worst-case
    /// mean-link radius, so construction never scans inaudible pairs.
    pub fn proximity_graph(&self) -> &WeightedGraph {
        self.graph.get_or_init(|| self.build_proximity_graph())
    }

    fn build_proximity_graph(&self) -> WeightedGraph {
        let n = self.n();
        let mut g = WeightedGraph::new(n);
        let mut candidates: Vec<DeviceId> = Vec::new();
        for a in 0..n as DeviceId {
            let p = self.deployment.position(a);
            candidates.clear();
            self.grid
                .within(p.x, p.y, self.mean_link_range_m, &mut candidates);
            // `within` returns ids ascending, so edges are inserted in
            // the same (a asc, b asc) order as a dense double loop.
            for &b in &candidates {
                if b > a {
                    let w = self.mean_rx_dbm(a, b);
                    if w >= self.threshold_dbm {
                        g.add_edge(a, b, W::new(w));
                    }
                }
            }
        }
        g
    }

    /// Per-device service interests.
    pub fn services(&self) -> &[ServiceClass] {
        &self.services
    }

    /// Detection threshold in dBm.
    #[inline]
    pub fn threshold_dbm(&self) -> f64 {
        self.threshold_dbm
    }

    /// Provable fading headroom in dB (`FadingModel::max_gain_db`).
    #[inline]
    pub fn fade_headroom_db(&self) -> f64 {
        self.fade_headroom_db
    }

    /// Worst-case audibility radius in meters — the spatial-grid query
    /// radius used by the medium.
    #[inline]
    pub fn audible_range_m(&self) -> f64 {
        self.audible_range_m
    }

    /// Candidate receivers of `tx`: every device within the worst-case
    /// audibility radius, ascending, excluding `tx` itself. A device
    /// outside this set can never detect `tx`, for any seed.
    pub fn audible_candidates(&self, tx: DeviceId) -> Vec<DeviceId> {
        let p = self.deployment.position(tx);
        let mut out = Vec::new();
        self.grid.within(p.x, p.y, self.audible_range_m, &mut out);
        out.retain(|&b| b != tx);
        out
    }

    /// Long-term mean received power of link `a → b` in dBm, computed
    /// on demand (path loss + shadowing; bit-identical to
    /// `Channel::mean_rx_power`). `NEG_INFINITY` on the diagonal.
    #[inline]
    pub fn mean_rx_dbm(&self, a: DeviceId, b: DeviceId) -> f64 {
        if a == b {
            return f64::NEG_INFINITY;
        }
        let d = self.deployment.distance(a, b);
        (self.tx_power - self.pathloss.loss(d) + self.shadowing.sample(a, b)).get()
    }

    /// Instantaneous received power (mean + block fading) in dBm.
    #[inline]
    pub fn rx_dbm(&self, a: DeviceId, b: DeviceId, slot: Slot) -> f64 {
        self.mean_rx_dbm(a, b) + self.fading.gain(self.fading_seed, a, b, slot).get()
    }

    /// True distance between two devices.
    pub fn distance(&self, a: DeviceId, b: DeviceId) -> Meters {
        self.deployment.distance(a, b)
    }

    /// The channel config in force.
    pub fn channel_config(&self) -> &ChannelConfig {
        &self.cfg.channel
    }

    /// Rebuild the reference channel (borrowing this world's
    /// deployment) — for tests that cross-check the fast path.
    pub fn reference_channel(&self) -> Channel<'_> {
        Channel::new(
            &self.deployment,
            self.cfg.channel.clone(),
            self.cfg.sim.seed,
        )
    }

    /// Monotone re-bucketing counter: attached media invalidate their
    /// link caches when this moves.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Move every device (e.g. to a `MobilityField` snapshot): clamps
    /// into the arena, re-buckets the spatial grid in O(n), drops the
    /// lazily-built proximity graph and bumps [`World::version`] so
    /// attached [`FastMedium`]s discard their memoised link gains.
    ///
    /// The shadowing field is positional only through the path loss (a
    /// per-link draw, the standard correlated-shadowing simplification),
    /// so mean powers after the move remain bit-identical to a fresh
    /// `Channel` over the moved deployment.
    pub fn update_positions(&mut self, positions: &[Position]) {
        self.deployment.set_positions(positions);
        self.grid.rebucket(&self.deployment.coords());
        self.graph = OnceLock::new();
        self.version += 1;
    }
}

/// Associativity of the per-device link-gain LRU in [`FastMedium`].
const LINK_CACHE_WAYS: usize = 8;

/// Epoch-stamped slot resolver with the same semantics as
/// [`ffd2d_phy::Medium`]: per receiver and codec, a lone above-threshold
/// signal decodes; several collide unless the strongest beats the
/// runner-up by the capture margin; transmitters are half-duplex deaf.
///
/// A `FastMedium` is bound to the [`World`] it first resolves against:
/// its memoised link gains are keyed by device ids and invalidated via
/// [`World::version`]. Do not share one across worlds.
///
/// ## Intra-run parallelism
///
/// When the world's [`ScenarioConfig::parallelism`] engages, the
/// accumulation phase shards the (sorted) touched-cell list into
/// contiguous chunks, one scoped worker per chunk, each with its own
/// persistent [`ShardScratch`]. A receiver lives in exactly one grid
/// cell, so its `(receiver, codec)` accumulators are written by exactly
/// one shard, in the same cell-ascending / submission order the
/// sequential loop uses — the accumulated `best`/`second`/`count` are
/// bit-identical for any worker count. Delivery (counters, trace
/// events, the `deliver` callback) then runs sequentially over all
/// shards' touched keys in globally sorted order, which is exactly the
/// sequential resolver's order — so traced runs are byte-identical too.
#[derive(Debug)]
pub struct FastMedium {
    n: usize,
    /// Per-shard accumulators and link caches; `shards[0]` doubles as
    /// the sequential path. Grown on demand, never shrunk.
    shards: Vec<ShardScratch>,
    /// Per-device transmit epoch (half-duplex tracking).
    tx_stamp: Vec<u64>,
    epoch: u64,
    /// Per-cell transmission batches (epoch-stamped, allocation reused).
    cell_stamp: Vec<u64>,
    cell_txs: Vec<Vec<u32>>,
    touched_cells: Vec<u32>,
    /// `(key, shard)` pairs gathered per slot for globally-ordered
    /// delivery (allocation reused).
    delivery: Vec<(u32, u32)>,
    /// `world.version() + 1` the link caches are valid for (0 = none).
    cache_world_version: u64,
}

/// One shard's private accumulation state, persistent across slots:
/// epoch-stamped per-`(receiver, codec)` collision accumulators plus a
/// per-receiver LRU of memoised mean link gains. Each shard owns its
/// LRU outright (hits, victims and the logical clock stay private), so
/// workers never contend — and the sequential path is just shard 0.
#[derive(Debug, Clone)]
struct ShardScratch {
    /// Per `(receiver, codec)` accumulator epoch (slot-stamped).
    stamp: Vec<u64>,
    best: Vec<f64>,
    second: Vec<f64>,
    best_tx: Vec<u32>,
    count: Vec<u32>,
    touched: Vec<u32>,
    /// Per-receiver LRU of mean link gains: `LINK_CACHE_WAYS` ways per
    /// device. `u32::MAX` marks an empty way.
    cache_peer: Vec<u32>,
    cache_mean: Vec<f64>,
    cache_used: Vec<u64>,
    tick: u64,
    /// Above-threshold (detected) pairs seen this slot.
    detected: u64,
    // --- Telemetry (written only when the resolving recorder is
    // enabled; the disabled path never touches these) ---
    /// Wall-clock nanoseconds this shard spent accumulating this slot.
    busy_ns: u64,
    /// Link-gain LRU hits this slot.
    lru_hits: u64,
    /// Link-gain LRU misses (full `mean_rx_dbm` recomputations).
    lru_misses: u64,
}

/// Read-only per-slot inputs shared by every accumulation shard.
struct SlotCtx<'a> {
    world: &'a World,
    transmissions: &'a [ProximitySignal],
    slot: Slot,
    epoch: u64,
    /// Per-cell transmission batches (only cells stamped this epoch
    /// appear in the shard's cell list).
    cell_txs: &'a [Vec<u32>],
    /// Per-device transmit epoch (half-duplex tracking).
    tx_stamp: &'a [u64],
    threshold: f64,
    mean_floor: f64,
    /// Receiver liveness under churn; `None` = everyone listens (the
    /// exact fault-free path).
    active: Option<&'a [bool]>,
    /// Per-transmission power droop in dB (fault injection); `None`
    /// when no droop window is open this slot.
    droop: Option<&'a [f64]>,
}

impl ShardScratch {
    fn new(n: usize) -> ShardScratch {
        ShardScratch {
            stamp: vec![0; n * 2],
            best: vec![f64::NEG_INFINITY; n * 2],
            second: vec![f64::NEG_INFINITY; n * 2],
            best_tx: vec![0; n * 2],
            count: vec![0; n * 2],
            touched: Vec::with_capacity(64),
            cache_peer: vec![u32::MAX; n * LINK_CACHE_WAYS],
            cache_mean: vec![f64::NEG_INFINITY; n * LINK_CACHE_WAYS],
            cache_used: vec![0; n * LINK_CACHE_WAYS],
            tick: 0,
            detected: 0,
            busy_ns: 0,
            lru_hits: 0,
            lru_misses: 0,
        }
    }

    /// Invalidate every memoised link gain (the world re-bucketed).
    fn drop_link_cache(&mut self) {
        self.cache_peer.iter_mut().for_each(|p| *p = u32::MAX);
    }

    /// Mean link gain `sender → receiver` through the per-receiver LRU.
    /// `TELEM` additionally tallies hit/miss counts; `false` compiles
    /// to the bare lookup.
    #[inline]
    fn mean_cached<const TELEM: bool>(
        &mut self,
        world: &World,
        sender: DeviceId,
        receiver: DeviceId,
    ) -> f64 {
        let base = receiver as usize * LINK_CACHE_WAYS;
        self.tick += 1;
        let mut victim = base;
        for way in base..base + LINK_CACHE_WAYS {
            if self.cache_peer[way] == sender {
                self.cache_used[way] = self.tick;
                if TELEM {
                    self.lru_hits += 1;
                }
                return self.cache_mean[way];
            }
            if self.cache_used[way] < self.cache_used[victim] {
                victim = way;
            }
        }
        if TELEM {
            self.lru_misses += 1;
        }
        let mean = world.mean_rx_dbm(sender, receiver);
        self.cache_peer[victim] = sender;
        self.cache_mean[victim] = mean;
        self.cache_used[victim] = self.tick;
        mean
    }

    /// Accumulate one contiguous chunk of touched cells: cells in the
    /// given (ascending) order, receivers ascending within a cell,
    /// transmissions in submission order — the sequential loop's exact
    /// visit order, so the per-key results cannot depend on how cells
    /// were chunked across shards.
    fn accumulate<const TELEM: bool>(&mut self, ctx: &SlotCtx<'_>, cells: &[u32]) {
        for &cell in cells {
            let cell = cell as usize;
            let txs_here = &ctx.cell_txs[cell];
            for &r in ctx.world.grid.cell_items(cell) {
                if ctx.tx_stamp[r as usize] == ctx.epoch {
                    continue; // half-duplex: transmitting receivers are deaf
                }
                if let Some(active) = ctx.active {
                    if !active[r as usize] {
                        continue; // departed devices hear nothing
                    }
                }
                for &ti in txs_here {
                    let tx = &ctx.transmissions[ti as usize];
                    let mean = self.mean_cached::<TELEM>(ctx.world, tx.sender, r);
                    if mean < ctx.mean_floor {
                        // Provably below threshold for any fading draw;
                        // tallied by the closed-form reconstruction.
                        // Droops only weaken a signal further, so the
                        // prune stays conservative under fault plans.
                        continue;
                    }
                    let mut p = mean
                        + ctx
                            .world
                            .fading
                            .gain(ctx.world.fading_seed, tx.sender, r, ctx.slot)
                            .get();
                    if let Some(droop) = ctx.droop {
                        p -= droop[ti as usize];
                    }
                    if p < ctx.threshold {
                        continue;
                    }
                    self.detected += 1;
                    let k = r as usize * 2 + FastMedium::codec_index(tx.codec());
                    if self.stamp[k] != ctx.epoch {
                        self.stamp[k] = ctx.epoch;
                        self.best[k] = f64::NEG_INFINITY;
                        self.second[k] = f64::NEG_INFINITY;
                        self.count[k] = 0;
                        self.touched.push(k as u32);
                    }
                    self.count[k] += 1;
                    if p > self.best[k] {
                        self.second[k] = self.best[k];
                        self.best[k] = p;
                        self.best_tx[k] = ti;
                    } else if p > self.second[k] {
                        self.second[k] = p;
                    }
                }
            }
        }
    }
}

impl FastMedium {
    /// A resolver for `n` devices.
    pub fn new(n: usize) -> FastMedium {
        FastMedium {
            n,
            shards: vec![ShardScratch::new(n)],
            tx_stamp: vec![0; n],
            epoch: 0,
            cell_stamp: Vec::new(),
            cell_txs: Vec::new(),
            touched_cells: Vec::new(),
            delivery: Vec::with_capacity(64),
            cache_world_version: 0,
        }
    }

    #[inline]
    fn codec_index(codec: RachCodec) -> usize {
        match codec {
            RachCodec::Rach1 => 0,
            RachCodec::Rach2 => 1,
        }
    }

    /// Size scratch state to `world` and drop the link caches if the
    /// world re-bucketed since the last slot.
    fn sync_with(&mut self, world: &World) {
        let cells = world.grid.cell_count();
        if self.cell_stamp.len() != cells {
            self.cell_stamp = vec![0; cells];
            self.cell_txs = vec![Vec::new(); cells];
        }
        if self.cache_world_version != world.version() + 1 {
            self.cache_world_version = world.version() + 1;
            for shard in &mut self.shards {
                shard.drop_link_cache();
            }
        }
    }

    /// Resolve one slot: every decoded `(receiver, signal, rx_dbm)`
    /// triple is fed to `deliver` (the received power is what RSSI
    /// ranging consumes), and `counters` tallies transmissions and
    /// reception outcomes. Every device is a potential receiver, as with
    /// the reference resolver over the full receiver set.
    pub fn resolve<F: FnMut(DeviceId, &ProximitySignal, f64)>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        counters: &mut Counters,
        mut deliver: F,
    ) {
        self.resolve_traced(
            world,
            slot,
            transmissions,
            counters,
            &mut NullSink,
            |r, sig, p, _| deliver(r, sig, p),
        )
    }

    /// [`FastMedium::resolve`] with per-event tracing: every
    /// transmission, decode and collision is reported to `sink`, plus
    /// one aggregate below-threshold count per slot (the fast path
    /// reconstructs that tally in closed form and never visits the
    /// individual inaudible pairs). The sink is also threaded into
    /// `deliver` so callers can emit follow-on events (e.g. oscillator
    /// adjustments) without a second borrow. With a disabled sink this
    /// monomorphizes to exactly the untraced resolver.
    pub fn resolve_traced<S, F>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        counters: &mut Counters,
        sink: &mut S,
        deliver: F,
    ) where
        S: TraceSink,
        F: FnMut(DeviceId, &ProximitySignal, f64, &mut S),
    {
        self.resolve_masked(world, slot, transmissions, None, counters, sink, deliver)
    }

    /// [`FastMedium::resolve_traced`] under churn: receivers whose
    /// `active` entry is `false` hear nothing (they left the arena), and
    /// the closed-form below-threshold reconstruction counts only the
    /// live population. Transmit-power droops from the world's
    /// [`ScenarioConfig::faults`] plan are subtracted per transmission
    /// before the threshold test. `active = None` and an empty droop
    /// schedule reproduce the fault-free resolver bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_masked<S, F>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        active: Option<&[bool]>,
        counters: &mut Counters,
        sink: &mut S,
        deliver: F,
    ) where
        S: TraceSink,
        F: FnMut(DeviceId, &ProximitySignal, f64, &mut S),
    {
        self.resolve_instrumented(
            world,
            slot,
            transmissions,
            active,
            counters,
            sink,
            &mut NullRecorder,
            deliver,
        )
    }

    /// [`FastMedium::resolve_masked`] with performance telemetry: an
    /// enabled [`Recorder`] gets the slot's resolution wall clock,
    /// candidate-pair count, per-shard busy time (plus a max-over-mean
    /// imbalance ratio when sharded) and link-LRU hit/miss tallies.
    /// Telemetry is strictly observational — it draws no randomness and
    /// feeds nothing back into resolution, so counters, trace events,
    /// deliveries and their order are bit-identical to an unrecorded
    /// slot; with [`NullRecorder`] this monomorphizes to exactly
    /// [`FastMedium::resolve_masked`].
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_instrumented<S, R, F>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        active: Option<&[bool]>,
        counters: &mut Counters,
        sink: &mut S,
        rec: &mut R,
        mut deliver: F,
    ) where
        S: TraceSink,
        R: Recorder,
        F: FnMut(DeviceId, &ProximitySignal, f64, &mut S),
    {
        if transmissions.is_empty() {
            return;
        }
        let t_resolve = rec.start();
        let faults = &world.config().faults;
        let droops: Option<Vec<f64>> = if faults.droop.is_empty() {
            None
        } else {
            Some(
                transmissions
                    .iter()
                    .map(|tx| faults.droop_db_at(tx.sender, slot.0))
                    .collect(),
            )
        };
        self.sync_with(world);
        self.epoch += 1;
        let epoch = self.epoch;
        self.touched_cells.clear();

        let mut distinct_senders = 0u64;
        for tx in transmissions {
            match tx.codec() {
                RachCodec::Rach1 => counters.rach1_tx += 1,
                RachCodec::Rach2 => counters.rach2_tx += 1,
            }
            if S::ENABLED {
                sink.event(&TraceEvent::Tx {
                    slot: slot.0,
                    sender: tx.sender,
                    codec: tx.codec().trace_codec(),
                    kind: tx.kind.trace_label(),
                });
            }
            let s = tx.sender as usize;
            if self.tx_stamp[s] != epoch {
                self.tx_stamp[s] = epoch;
                distinct_senders += 1;
            }
        }

        // Post each transmission to every cell its audibility disc
        // covers; cells keep tx indices in transmission order.
        let radius = world.audible_range_m();
        for (ti, tx) in transmissions.iter().enumerate() {
            let p = world.deployment.position(tx.sender);
            for cell in world.grid.cells_intersecting_disc(p.x, p.y, radius) {
                if self.cell_stamp[cell] != epoch {
                    self.cell_stamp[cell] = epoch;
                    self.cell_txs[cell].clear();
                    self.touched_cells.push(cell as u32);
                }
                self.cell_txs[cell].push(ti as u32);
            }
        }
        // Batched, deterministic resolution: cells ascending, receivers
        // ascending within a cell, transmissions in submission order.
        self.touched_cells.sort_unstable();

        // Shard the (sorted) cell list when the configured parallelism
        // engages on this slot's workload. A receiver's accumulators
        // live with its home cell's shard, so any chunking yields
        // bit-identical per-key results (see the struct docs).
        let pairs: u64 = self
            .touched_cells
            .iter()
            .map(|&c| {
                self.cell_txs[c as usize].len() as u64
                    * world.grid.cell_items(c as usize).len() as u64
            })
            .sum();
        let workers = world
            .config()
            .parallelism
            .workers_for(pairs)
            .min(self.touched_cells.len().max(1));
        if self.shards.len() < workers {
            let n = self.n;
            self.shards.resize_with(workers, || ShardScratch::new(n));
        }
        for shard in &mut self.shards[..workers] {
            shard.detected = 0;
            shard.touched.clear();
            if R::ENABLED {
                shard.busy_ns = 0;
                shard.lru_hits = 0;
                shard.lru_misses = 0;
            }
        }

        let threshold = world.threshold_dbm();
        let mean_floor = threshold - world.fade_headroom_db();
        let ctx = SlotCtx {
            world,
            transmissions,
            slot,
            epoch,
            cell_txs: &self.cell_txs,
            tx_stamp: &self.tx_stamp,
            threshold,
            mean_floor,
            active,
            droop: droops.as_deref(),
        };
        if R::ENABLED {
            // Timed accumulation: each shard clocks its own busy window
            // on its own thread (the recorder itself stays on this
            // thread and is flushed after the join).
            sharded_for_each(
                &self.touched_cells,
                &mut self.shards[..workers],
                |_, cells, shard| {
                    let t0 = Instant::now();
                    shard.accumulate::<true>(&ctx, cells);
                    shard.busy_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                },
            );
        } else {
            sharded_for_each(
                &self.touched_cells,
                &mut self.shards[..workers],
                |_, cells, shard| shard.accumulate::<false>(&ctx, cells),
            );
        }

        // Gather every shard's touched keys for globally-ordered
        // delivery. Keys are unique across shards (one home cell per
        // receiver), so sorting the pairs sorts by key.
        let mut detected = 0u64;
        self.delivery.clear();
        for (si, shard) in self.shards[..workers].iter().enumerate() {
            detected += shard.detected;
            for &k in &shard.touched {
                self.delivery.push((k, si as u32));
            }
        }
        self.delivery.sort_unstable();

        // Exact counter reconstruction: the reference walks every
        // (transmission, non-transmitting receiver) pair and counts it
        // either as detected (rx_ok + rx_collision below) or as below
        // threshold — so the latter is the complement. Under churn only
        // the live population counts as receivers.
        let population = match active {
            Some(mask) => mask.iter().filter(|&&a| a).count() as u64,
            None => world.n() as u64,
        };
        let receivers = population - distinct_senders;
        let below_threshold = transmissions.len() as u64 * receivers - detected;
        counters.rx_below_threshold += below_threshold;
        if S::ENABLED && below_threshold > 0 {
            sink.event(&TraceEvent::RxBelowThreshold {
                slot: slot.0,
                count: below_threshold,
            });
        }

        // Deterministic delivery order regardless of tx iteration
        // pattern or sharding: keys ascending, exactly the sequential
        // resolver's order.
        for i in 0..self.delivery.len() {
            let (k32, si) = self.delivery[i];
            let k = k32 as usize;
            let shard = &self.shards[si as usize];
            let receiver = (k / 2) as DeviceId;
            let n_signals = shard.count[k];
            let decoded = if n_signals == 1 {
                true
            } else {
                shard.best[k] >= shard.second[k] + world.capture_margin_db
            };
            if decoded {
                counters.rx_ok += 1;
                counters.rx_collision += (n_signals - 1) as u64;
                let sig = transmissions[shard.best_tx[k] as usize];
                if S::ENABLED {
                    sink.event(&TraceEvent::RxDecode {
                        slot: slot.0,
                        receiver,
                        sender: sig.sender,
                        codec: sig.codec().trace_codec(),
                        rx_dbm: shard.best[k],
                    });
                    if n_signals > 1 {
                        sink.event(&TraceEvent::RxCollision {
                            slot: slot.0,
                            receiver,
                            codec: sig.codec().trace_codec(),
                            signals: n_signals - 1,
                        });
                    }
                }
                deliver(receiver, &sig, shard.best[k], sink);
            } else {
                counters.rx_collision += n_signals as u64;
                if S::ENABLED {
                    let codec = if k.is_multiple_of(2) {
                        ffd2d_trace::Codec::Rach1
                    } else {
                        ffd2d_trace::Codec::Rach2
                    };
                    sink.event(&TraceEvent::RxCollision {
                        slot: slot.0,
                        receiver,
                        codec,
                        signals: n_signals,
                    });
                }
            }
        }

        if R::ENABLED {
            rec.add("medium.slots_resolved", 1);
            rec.add("medium.transmissions", transmissions.len() as u64);
            rec.observe("medium.pairs_per_slot", pairs);
            rec.observe("medium.workers_per_slot", workers as u64);
            let (mut hits, mut misses) = (0u64, 0u64);
            let (mut busy_max, mut busy_sum) = (0u64, 0u64);
            for shard in &self.shards[..workers] {
                hits += shard.lru_hits;
                misses += shard.lru_misses;
                busy_max = busy_max.max(shard.busy_ns);
                busy_sum += shard.busy_ns;
                rec.record_ns("medium.shard_busy_ns", shard.busy_ns);
            }
            rec.add("medium.lru_hits", hits);
            rec.add("medium.lru_misses", misses);
            if workers > 1 && busy_sum > 0 {
                // Shard imbalance: slowest shard over the mean, in
                // percent (100 = perfectly balanced).
                let mean = (busy_sum / workers as u64).max(1);
                rec.observe("medium.shard_imbalance_pct", busy_max * 100 / mean);
            }
            rec.stop("medium.resolve_ns", t_resolve);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_phy::frame::FrameKind;
    use ffd2d_phy::medium::{Medium, Transmission};
    use ffd2d_sim::time::SlotDuration;

    fn small_cfg(n: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(SlotDuration(1000))
    }

    fn fire(sender: u32) -> ProximitySignal {
        ProximitySignal {
            sender,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: sender,
                age: 0,
            },
        }
    }

    /// Drive the fast and reference media through the same slot and
    /// assert identical decode pairs and counters.
    fn assert_media_agree(w: &World, fast: &mut FastMedium, slot: u64, txs: &[ProximitySignal]) {
        let ch = w.reference_channel();
        let reference = Medium::default();
        let receivers: Vec<u32> = (0..w.n() as u32).collect();
        let transmissions: Vec<Transmission> = txs.iter().map(|&s| Transmission::new(s)).collect();

        let mut ref_counters = Counters::new();
        let ref_reports = reference.resolve(
            &ch,
            Slot(slot),
            &transmissions,
            &receivers,
            &mut ref_counters,
        );
        let mut ref_pairs: Vec<(u32, u32)> = Vec::new();
        for (r, report) in receivers.iter().zip(&ref_reports) {
            for sig in &report.decoded {
                ref_pairs.push((*r, sig.sender));
            }
        }
        ref_pairs.sort();

        let mut fast_counters = Counters::new();
        let mut fast_pairs: Vec<(u32, u32)> = Vec::new();
        fast.resolve(w, Slot(slot), txs, &mut fast_counters, |r, sig, p| {
            assert!(p >= w.threshold_dbm());
            fast_pairs.push((r, sig.sender));
        });
        fast_pairs.sort();

        assert_eq!(fast_pairs, ref_pairs, "decode pairs, slot {slot}");
        assert_eq!(
            fast_counters.rx_ok, ref_counters.rx_ok,
            "rx_ok, slot {slot}"
        );
        assert_eq!(
            fast_counters.rx_collision, ref_counters.rx_collision,
            "rx_collision, slot {slot}"
        );
        assert_eq!(
            fast_counters.rx_below_threshold, ref_counters.rx_below_threshold,
            "rx_below_threshold, slot {slot}"
        );
        assert_eq!(fast_counters.total_tx(), ref_counters.total_tx());
    }

    #[test]
    fn world_is_deterministic_per_seed() {
        let a = World::new(&small_cfg(20, 7));
        let b = World::new(&small_cfg(20, 7));
        assert_eq!(a.deployment().positions(), b.deployment().positions());
        assert_eq!(a.services(), b.services());
        assert_eq!(a.mean_rx_dbm(0, 1), b.mean_rx_dbm(0, 1));
        let c = World::new(&small_cfg(20, 8));
        assert_ne!(a.deployment().positions(), c.deployment().positions());
    }

    #[test]
    fn mean_power_matches_reference_channel() {
        let w = World::new(&small_cfg(15, 3));
        let ch = w.reference_channel();
        for a in 0..15u32 {
            for b in 0..15u32 {
                if a != b {
                    assert_eq!(w.mean_rx_dbm(a, b), ch.mean_rx_power(a, b).get());
                }
            }
        }
    }

    #[test]
    fn instantaneous_power_matches_reference_channel() {
        let w = World::new(&small_cfg(10, 4));
        let ch = w.reference_channel();
        for slot in [0u64, 7, 35, 1000] {
            for a in 0..10u32 {
                for b in 0..10u32 {
                    if a != b {
                        let fast = w.rx_dbm(a, b, Slot(slot));
                        let reference = ch.rx_power(a, b, Slot(slot)).get();
                        assert!(
                            (fast - reference).abs() < 1e-9,
                            "link {a}->{b} slot {slot}: {fast} vs {reference}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn graph_edges_follow_threshold() {
        let w = World::new(&small_cfg(25, 5));
        let g = w.proximity_graph();
        for a in 0..25u32 {
            for b in (a + 1)..25u32 {
                let linked = w.mean_rx_dbm(a, b) >= w.threshold_dbm();
                assert_eq!(g.has_edge(a, b), linked, "edge {{{a},{b}}}");
                if let Some(wt) = g.weight(a, b) {
                    assert_eq!(wt.get(), w.mean_rx_dbm(a, b));
                }
            }
        }
    }

    #[test]
    fn audible_candidates_cover_every_possible_receiver() {
        // Anything the grid prunes must have a mean below the provable
        // detectability floor — the exactness contract of the index.
        let w = World::new(&small_cfg(40, 9));
        let floor = w.threshold_dbm() - w.fade_headroom_db();
        for a in 0..40u32 {
            let cands = w.audible_candidates(a);
            assert!(!cands.contains(&a));
            assert!(cands.windows(2).all(|p| p[0] < p[1]), "sorted, unique");
            for b in 0..40u32 {
                if b != a && !cands.contains(&b) {
                    assert!(
                        w.mean_rx_dbm(a, b) < floor,
                        "pruned pair {a}->{b} is not provably inaudible"
                    );
                }
            }
        }
    }

    #[test]
    fn table1_area_is_fully_connected_without_shadowing() {
        // 89 m nominal range in a 100 m × 100 m area: the ideal-channel
        // proximity graph is (almost surely) connected and dense.
        let cfg = small_cfg(50, 1).ideal_channel();
        let w = World::new(&cfg);
        assert!(ffd2d_graph::connectivity::is_connected(w.proximity_graph()));
        let avg_degree = 2.0 * w.proximity_graph().m() as f64 / 50.0;
        assert!(avg_degree > 30.0, "avg degree {avg_degree}");
    }

    #[test]
    fn fast_medium_agrees_with_reference_medium() {
        // Same transmissions, same slot: identical decode decisions and
        // identical counters (Table-I channel: shadowing + fading).
        let cfg = small_cfg(30, 11);
        let w = World::new(&cfg);
        let mut fast = FastMedium::new(30);
        for slot in [0u64, 3, 21, 40, 77] {
            let txs = vec![
                fire(slot as u32 % 30),
                fire((slot as u32 + 7) % 30),
                fire((slot as u32 + 19) % 30),
            ];
            assert_media_agree(&w, &mut fast, slot, &txs);
        }
    }

    #[test]
    fn fast_medium_agrees_in_sparse_arena_with_real_pruning() {
        // A 2 km arena under the ideal channel: the audibility radius
        // (89 m) is far below the diagonal, so the grid actually prunes
        // — and the decode reports must still be bit-identical.
        let mut cfg = small_cfg(60, 23).ideal_channel();
        cfg.sim.area_width = Meters(2000.0);
        cfg.sim.area_height = Meters(2000.0);
        let w = World::new(&cfg);
        assert!(
            w.spatial_grid().cols() >= 20,
            "expected a fine grid, got {}x{}",
            w.spatial_grid().cols(),
            w.spatial_grid().rows()
        );
        let mut fast = FastMedium::new(60);
        for slot in [0u64, 5, 9] {
            let txs: Vec<ProximitySignal> = (0..6)
                .map(|k| fire((slot as u32 * 11 + k * 13) % 60))
                .collect();
            assert_media_agree(&w, &mut fast, slot, &txs);
        }
    }

    #[test]
    fn fast_medium_tracks_mobility_rebucketing() {
        let mut cfg = small_cfg(40, 31).ideal_channel();
        cfg.sim.area_width = Meters(1000.0);
        cfg.sim.area_height = Meters(1000.0);
        let mut w = World::new(&cfg);
        let mut fast = FastMedium::new(40);
        assert_media_agree(&w, &mut fast, 0, &[fire(1), fire(17), fire(33)]);

        // Shift everyone: the medium must re-bucket (via version) and
        // still agree with a reference channel over the moved positions.
        let moved: Vec<Position> = w
            .deployment()
            .positions()
            .iter()
            .map(|p| Position::new((p.x + 400.0).min(1000.0), (p.y * 0.5).max(0.0)))
            .collect();
        let before = w.version();
        w.update_positions(&moved);
        assert_eq!(w.version(), before + 1);
        assert_media_agree(&w, &mut fast, 1, &[fire(1), fire(17), fire(33)]);
        // The lazily-rebuilt graph reflects the new geometry too.
        let g = w.proximity_graph();
        for a in 0..40u32 {
            for b in (a + 1)..40u32 {
                assert_eq!(g.has_edge(a, b), w.mean_rx_dbm(a, b) >= w.threshold_dbm());
            }
        }
    }

    #[test]
    fn sharded_fast_medium_is_bit_identical_to_sequential() {
        // Same seeded world resolved under Off / Fixed{1, 2, 8, 64}:
        // delivered (receiver, sender, power-bits) triples, counters and
        // the full trace-event stream must match exactly. Fixed(64) at
        // n=48 exercises the clamp to the touched-cell count.
        use ffd2d_parallel::Parallelism;
        use ffd2d_trace::BufferSink;
        let base = small_cfg(48, 17);
        let txs: Vec<ProximitySignal> = (0..10).map(|k| fire(k * 5)).collect();

        let run = |parallelism: Parallelism| {
            let cfg = base.clone().with_parallelism(parallelism);
            let w = World::new(&cfg);
            let mut fast = FastMedium::new(48);
            let mut counters = Counters::new();
            let mut sink = BufferSink::new();
            let mut delivered: Vec<(u32, u32, u64)> = Vec::new();
            for slot in [0u64, 2, 9, 30] {
                fast.resolve_traced(
                    &w,
                    Slot(slot),
                    &txs,
                    &mut counters,
                    &mut sink,
                    |r, sig, p, _| delivered.push((r, sig.sender, p.to_bits())),
                );
            }
            (delivered, counters, sink.events)
        };

        let baseline = run(Parallelism::Off);
        assert!(baseline.1.rx_ok > 0, "scenario must exercise decodes");
        for workers in [1, 2, 8, 64] {
            let sharded = run(Parallelism::Fixed(workers));
            assert_eq!(sharded.0, baseline.0, "deliveries, {workers} workers");
            assert_eq!(sharded.1, baseline.1, "counters, {workers} workers");
            assert_eq!(sharded.2, baseline.2, "events, {workers} workers");
        }
        // Auto at this tiny n stays sequential and must agree too.
        let auto = run(Parallelism::Auto);
        assert_eq!(auto.0, baseline.0);
        assert_eq!(auto.1, baseline.1);
    }

    #[test]
    fn fast_medium_empty_slot_is_free() {
        let w = World::new(&small_cfg(5, 1));
        let mut fast = FastMedium::new(5);
        let mut counters = Counters::new();
        fast.resolve(&w, Slot(0), &[], &mut counters, |_, _, _| {
            panic!("nothing to deliver")
        });
        assert_eq!(counters.total_tx(), 0);
    }

    #[test]
    fn services_cover_configured_classes() {
        let mut cfg = small_cfg(200, 2);
        cfg.protocol.service_classes = 4;
        let w = World::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        for s in w.services() {
            assert!(s.0 < 4);
            seen.insert(s.0);
        }
        assert_eq!(seen.len(), 4, "all classes should appear at n=200");
    }
}
