//! The per-trial world and its fast shared medium.
//!
//! [`World`] instantiates one trial of a scenario: the deployment, a
//! spatial-grid neighbor index over it, the ground-truth proximity graph
//! of §IV (edges where the long-term PS strength clears the −95 dBm
//! threshold, weighted by that strength; built lazily on first use) and
//! the per-device service interests.
//!
//! ## Why a second medium implementation
//!
//! `ffd2d_phy::Medium` is the reference resolver: it re-samples the
//! channel per (tx, rx) pair through the full `Channel` stack and is
//! exactly right for protocol-correctness tests. The figure sweeps,
//! however, run populations of thousands of devices for tens of
//! thousands of slots — the hot loop is `(transmissions × receivers)`
//! per slot. [`FastMedium`] implements the *same*
//! decode/collision/capture semantics with three optimisations:
//!
//! 1. **Spatial pruning.** Devices are bucketed into a
//!    [`SpatialGrid`] whose cell side is the worst-case audibility
//!    radius — the distance at which even the most favourable
//!    shadowing/fading realisation cannot reach the detection threshold
//!    (`ChannelConfig::max_audible_range`). Collision resolution is
//!    batched per grid cell: each transmission is posted to the cells
//!    its audibility disc covers, then receivers are walked cell by
//!    cell. Pairs outside the disc are *provably* inaudible, so —
//!    unlike a statistical fade margin — pruning changes no decode
//!    decision, for any seed.
//! 2. **Epoch-keyed link-state cache.** There is no up-front `n × n`
//!    gain matrix: mean link powers (path loss + shadowing) are pure
//!    functions of device positions, so they are computed **once per
//!    mobility epoch** by a batched kernel — one row per (sender, grid
//!    cell), aligned with the cell's occupant list — and reused across
//!    every subsequent slot of the epoch. Fading remains the only
//!    per-slot keyed draw, so caching is provably bit-identical: no RNG
//!    stream is touched. The cache is flushed when
//!    [`World::mobility_epoch`] moves (re-bucketing); engine-reported
//!    churn ([`FastMedium::note_churn_of`]) stales only the churned
//!    senders' rows via per-row membership stamps, which refill in
//!    place on next use. Memory is one `f64`
//!    per cached directed (sender, cell-occupant) pair — proportional
//!    to the audible-pair count actually exercised, not `n²` of the
//!    whole arena (they coincide only when every device is audible to
//!    every other and every device transmits).
//! 3. **Epoch-stamped accumulators.** Per-(receiver, codec) collision
//!    state is slot-stamped, so a slot costs O(candidates) with zero
//!    allocation, and delivery order is fixed by sorting touched keys.
//!
//! Counters are reconstructed exactly: a detected pair increments the
//! accumulator, and the below-threshold tally is recovered as
//! `(#transmissions × #non-transmitting receivers) − #detected`, which
//! is what the reference resolver counts pair by pair. Equivalence with
//! the reference resolver is pinned by tests in this module and by the
//! `medium_equivalence` integration harness.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

use rand::Rng;

use ffd2d_graph::adjacency::WeightedGraph;
use ffd2d_graph::spatial::SpatialGrid;
use ffd2d_graph::weight::W;
use ffd2d_parallel::sharded_for_each_weighted;
use ffd2d_phy::codec::{RachCodec, ServiceClass};
use ffd2d_phy::frame::ProximitySignal;
use ffd2d_radio::channel::{Channel, ChannelConfig};
use ffd2d_radio::fading::FadingModel;
use ffd2d_radio::pathloss::PathLoss;
use ffd2d_radio::shadowing::ShadowingField;
use ffd2d_radio::units::Dbm;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::{Deployment, DeviceId, Meters, Position};
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::Slot;
use ffd2d_telemetry::{NullRecorder, Recorder};
use ffd2d_trace::{NullSink, TraceEvent, TraceSink};

use crate::scenario::{GainCacheMode, ScenarioConfig};

/// Floor on the grid cell side relative to the arena: at most 256×256
/// cells, so degenerate configurations (tiny radius in a huge arena)
/// cannot blow up cell-index memory.
const MAX_CELLS_PER_AXIS: f64 = 256.0;

/// One trial's fully-instantiated world.
#[derive(Debug, Clone)]
pub struct World {
    cfg: ScenarioConfig,
    deployment: Deployment,
    /// Spatial index over device positions; cell side = worst-case
    /// audibility radius (clamped to the arena diagonal).
    grid: SpatialGrid,
    /// Ground-truth §IV proximity graph, built lazily on first access
    /// via the grid (construction is O(n · occupancy), not O(n²)).
    graph: OnceLock<WeightedGraph>,
    /// Per-device service interests.
    services: Vec<ServiceClass>,
    // Decomposed channel state, so mean powers are computable on demand
    // without re-borrowing the deployment through a `Channel`.
    tx_power: Dbm,
    pathloss: PathLoss,
    shadowing: ShadowingField,
    fading: FadingModel,
    fading_seed: u64,
    threshold_dbm: f64,
    capture_margin_db: f64,
    /// Provable fading headroom: mean below `threshold − headroom` can
    /// never be detected.
    fade_headroom_db: f64,
    /// Worst-case audibility radius (any realisation), clamped to the
    /// arena diagonal — the medium's grid-query radius.
    audible_range_m: f64,
    /// Worst-case *mean*-link radius (shadowing only) — the proximity
    /// graph's candidate radius.
    mean_link_range_m: f64,
}

impl World {
    /// Instantiate the world for `cfg` (deterministic in `cfg.sim.seed`).
    pub fn new(cfg: &ScenarioConfig) -> World {
        // ffd2d-lint: allow(panic-discipline) — constructor precondition: an invalid scenario must abort at startup, before any trial state exists; this never runs in the per-slot path
        cfg.validate().expect("invalid scenario");
        let seed = cfg.sim.seed;
        let n = cfg.sim.n_devices;
        let mut dep_rng = StreamRng::new(seed, 0, StreamId::Deployment);
        let deployment =
            Deployment::uniform(n, cfg.sim.area_width, cfg.sim.area_height, &mut dep_rng);

        let (w, h) = (cfg.sim.area_width.get(), cfg.sim.area_height.get());
        let diagonal = (w * w + h * h).sqrt();
        let audible_range_m = cfg.channel.max_audible_range().get().min(diagonal);
        let mean_link_range_m = cfg.channel.max_mean_link_range().get().min(diagonal);
        let cell = audible_range_m.max(w.max(h) / MAX_CELLS_PER_AXIS);
        let grid = SpatialGrid::new(w, h, cell, &deployment.coords());

        let mut svc_rng = StreamRng::new(seed, 0, StreamId::Services);
        let services = (0..n)
            .map(|_| ServiceClass::new(svc_rng.gen_range(0..cfg.protocol.service_classes)))
            .collect();

        World {
            deployment,
            grid,
            graph: OnceLock::new(),
            services,
            tx_power: cfg.channel.tx_power,
            pathloss: cfg.channel.pathloss,
            // Mirrors `Channel::new` exactly, so on-demand means are
            // bit-identical to `Channel::mean_rx_power`.
            // ffd2d-lint: allow(rng-discipline) — domain-separation tags mirroring Channel::new byte for byte; routing through a helper would decouple the two copies the comment above ties together
            shadowing: ShadowingField::new(seed ^ 0x5AD0, cfg.channel.shadowing_sigma_db),
            fading: cfg.channel.fading,
            fading_seed: seed ^ 0xFAD0, // ffd2d-lint: allow(rng-discipline) — same Channel::new mirror as the shadowing tag above
            threshold_dbm: cfg.channel.detection_threshold.get(),
            capture_margin_db: 6.0,
            fade_headroom_db: cfg.channel.fade_headroom_db(),
            audible_range_m,
            mean_link_range_m,
            cfg: cfg.clone(),
        }
    }

    /// Number of devices.
    #[inline]
    pub fn n(&self) -> usize {
        self.deployment.len()
    }

    /// The scenario this world was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The spatial neighbor index over the current positions.
    pub fn spatial_grid(&self) -> &SpatialGrid {
        &self.grid
    }

    /// Ground-truth proximity graph (edges = long-term audible links,
    /// weights = mean PS strength in dBm). Built lazily on first call;
    /// candidate pairs come from the spatial grid at the worst-case
    /// mean-link radius, so construction never scans inaudible pairs.
    pub fn proximity_graph(&self) -> &WeightedGraph {
        self.graph.get_or_init(|| self.build_proximity_graph())
    }

    fn build_proximity_graph(&self) -> WeightedGraph {
        let n = self.n();
        let mut g = WeightedGraph::new(n);
        let mut candidates: Vec<DeviceId> = Vec::new();
        for a in 0..n as DeviceId {
            let p = self.deployment.position(a);
            candidates.clear();
            self.grid
                .within(p.x, p.y, self.mean_link_range_m, &mut candidates);
            // `within` returns ids ascending, so edges are inserted in
            // the same (a asc, b asc) order as a dense double loop.
            for &b in &candidates {
                if b > a {
                    let w = self.mean_rx_dbm(a, b);
                    if w >= self.threshold_dbm {
                        g.add_edge(a, b, W::new(w));
                    }
                }
            }
        }
        g
    }

    /// Per-device service interests.
    pub fn services(&self) -> &[ServiceClass] {
        &self.services
    }

    /// Detection threshold in dBm.
    #[inline]
    pub fn threshold_dbm(&self) -> f64 {
        self.threshold_dbm
    }

    /// Provable fading headroom in dB (`FadingModel::max_gain_db`).
    #[inline]
    pub fn fade_headroom_db(&self) -> f64 {
        self.fade_headroom_db
    }

    /// Worst-case audibility radius in meters — the spatial-grid query
    /// radius used by the medium.
    #[inline]
    pub fn audible_range_m(&self) -> f64 {
        self.audible_range_m
    }

    /// Candidate receivers of `tx`: every device within the worst-case
    /// audibility radius, ascending, excluding `tx` itself. A device
    /// outside this set can never detect `tx`, for any seed.
    pub fn audible_candidates(&self, tx: DeviceId) -> Vec<DeviceId> {
        let p = self.deployment.position(tx);
        let mut out = Vec::new();
        self.grid.within(p.x, p.y, self.audible_range_m, &mut out);
        out.retain(|&b| b != tx);
        out
    }

    /// Long-term mean received power of link `a → b` in dBm, computed
    /// on demand (path loss + shadowing; bit-identical to
    /// `Channel::mean_rx_power`). `NEG_INFINITY` on the diagonal.
    #[inline]
    pub fn mean_rx_dbm(&self, a: DeviceId, b: DeviceId) -> f64 {
        if a == b {
            return f64::NEG_INFINITY;
        }
        let d = self.deployment.distance(a, b);
        (self.tx_power - self.pathloss.loss(d) + self.shadowing.sample(a, b)).get()
    }

    /// Batched [`World::mean_rx_dbm`]: append the mean link gain
    /// `sender → r` for every `r` in `receivers` to `out`, in order, in
    /// one pass over positions. Delegates to the radio layer's
    /// [`ffd2d_radio::channel::fill_mean_rx_dbm`] kernel — the same
    /// code path [`Channel::mean_rx_power_batch`] uses — so element `j`
    /// is bit-identical to `mean_rx_dbm(sender, receivers[j])`,
    /// including the `NEG_INFINITY` self-pair sentinel.
    pub fn fill_mean_rx_dbm(&self, sender: DeviceId, receivers: &[DeviceId], out: &mut Vec<f64>) {
        ffd2d_radio::channel::fill_mean_rx_dbm(
            &self.deployment,
            self.tx_power,
            self.pathloss,
            &self.shadowing,
            sender,
            receivers,
            out,
        );
    }

    /// Instantaneous received power (mean + block fading) in dBm.
    #[inline]
    pub fn rx_dbm(&self, a: DeviceId, b: DeviceId, slot: Slot) -> f64 {
        self.mean_rx_dbm(a, b) + self.fading.gain(self.fading_seed, a, b, slot).get()
    }

    /// True distance between two devices.
    pub fn distance(&self, a: DeviceId, b: DeviceId) -> Meters {
        self.deployment.distance(a, b)
    }

    /// The channel config in force.
    pub fn channel_config(&self) -> &ChannelConfig {
        &self.cfg.channel
    }

    /// Rebuild the reference channel (borrowing this world's
    /// deployment) — for tests that cross-check the fast path.
    pub fn reference_channel(&self) -> Channel<'_> {
        Channel::new(
            &self.deployment,
            self.cfg.channel.clone(),
            self.cfg.sim.seed,
        )
    }

    /// Monotone mobility epoch: advances exactly when device positions
    /// are (re-)bucketed into the spatial grid — at construction and on
    /// every [`World::update_positions`]. Attached media key their
    /// link-state caches on this value: mean link gains are pure
    /// functions of positions, so entries are valid for precisely as
    /// long as the epoch stands still.
    #[inline]
    pub fn mobility_epoch(&self) -> u64 {
        self.grid.generation()
    }

    /// Move every device (e.g. to a `MobilityField` snapshot): clamps
    /// into the arena, re-buckets the spatial grid in O(n) (which
    /// advances [`World::mobility_epoch`], so attached [`FastMedium`]s
    /// discard their cached link state) and drops the lazily-built
    /// proximity graph.
    ///
    /// The shadowing field is positional only through the path loss (a
    /// per-link draw, the standard correlated-shadowing simplification),
    /// so mean powers after the move remain bit-identical to a fresh
    /// `Channel` over the moved deployment.
    pub fn update_positions(&mut self, positions: &[Position]) {
        self.deployment.set_positions(positions);
        self.grid.rebucket(&self.deployment.coords());
        self.graph = OnceLock::new();
    }
}

/// Mobility-epoch-keyed link-state cache: one row of mean link gains
/// (dBm) per `(sender, grid cell)`, aligned element-for-element with
/// `SpatialGrid::cell_items(cell)` so the accumulation inner loop reads
/// `row[j]` by the receiver's position in its cell — no per-pair hashing
/// or probing. Rows are filled by the batched kernel
/// ([`World::fill_mean_rx_dbm`]) the first time a sender's disc touches
/// a cell within an epoch, then reused by every later slot; the whole
/// store is flushed when the validity key (mobility epoch, churn
/// generation) moves. Values are pure functions of positions, so a
/// cached read is bit-identical to recomputation by construction.
#[derive(Debug, Default)]
struct GainCache {
    /// [`World::mobility_epoch`] the entries are valid for. `0` never
    /// matches a live world (its first bucketing already advanced the
    /// epoch to 1), so a fresh cache syncs on first use. Position
    /// changes re-bucket the grid, so they flush the whole store;
    /// population churn is handled per sender via `device_gen`.
    valid_for: u64,
    /// `(sender << 32) | cell` → index into `rows`. Lookup-only (never
    /// iterated), so map order cannot leak into results.
    // ffd2d-lint: allow(ordered-iteration) — lookup-only by construction: the only reads are `get` in row_for/publish; no iteration exists for hash order to escape through
    index: HashMap<u64, u32>,
    rows: Vec<Vec<f64>>,
    /// Per-row membership stamp, parallel to `rows`: the sender's
    /// `device_gen` at fill time. A row is served only while the stamps
    /// still agree; otherwise it is refilled in place.
    row_gen: Vec<u64>,
    /// Per-sender churn stamp: bumped by [`FastMedium::note_churn_of`]
    /// for exactly the devices a join/leave touched, so rows of
    /// unaffected senders survive churn. Sized lazily to the world.
    device_gen: Vec<u64>,
    /// Monotone churn-event counter feeding `device_gen` stamps.
    churn_gen: u64,
}

impl GainCache {
    /// Flush every entry and stamp the store valid for mobility epoch
    /// `key`. Membership stamps persist — they are monotone and only
    /// compared for equality, so surviving them is harmless.
    fn reset(&mut self, key: u64) {
        self.valid_for = key;
        self.index.clear();
        self.rows.clear();
        self.row_gen.clear();
    }

    /// The membership stamp rows by `sender` must carry to be served.
    #[inline]
    fn sender_gen(&self, sender: DeviceId) -> u64 {
        self.device_gen.get(sender as usize).copied().unwrap_or(0)
    }
}

/// Where an accumulation row lives: the shared epoch cache (read-only
/// under sharding) or the shard's private fills from this slot.
#[derive(Clone, Copy)]
enum RowRef {
    Shared(u32),
    Local(u32),
}

/// Epoch-stamped slot resolver with the same semantics as
/// [`ffd2d_phy::Medium`]: per receiver and codec, a lone above-threshold
/// signal decodes; several collide unless the strongest beats the
/// runner-up by the capture margin; transmitters are half-duplex deaf.
///
/// A `FastMedium` is bound to the [`World`] it first resolves against:
/// its cached link state is keyed by device ids and grid cells and
/// invalidated via [`World::mobility_epoch`]. Do not share one across
/// worlds.
///
/// ## Intra-run parallelism
///
/// When the world's [`ScenarioConfig::parallelism`] engages, the
/// accumulation phase shards the (sorted) touched-cell list into
/// contiguous chunks balanced by candidate-pair weight (transmissions ×
/// occupants per cell, so one hot cell cannot serialize the slot), one
/// scoped worker per chunk, each with its own
/// persistent [`ShardScratch`]. A receiver lives in exactly one grid
/// cell, so its `(receiver, codec)` accumulators are written by exactly
/// one shard, in the same cell-ascending / submission order the
/// sequential loop uses — the accumulated `best`/`second`/`count` are
/// bit-identical for any worker count. Delivery (counters, trace
/// events, the `deliver` callback) then runs sequentially over all
/// shards' touched keys in globally sorted order, which is exactly the
/// sequential resolver's order — so traced runs are byte-identical too.
#[derive(Debug)]
pub struct FastMedium {
    n: usize,
    /// Per-shard accumulators and link caches; `shards[0]` doubles as
    /// the sequential path. Grown on demand, never shrunk.
    shards: Vec<ShardScratch>,
    /// Per-device transmit epoch (half-duplex tracking).
    tx_stamp: Vec<u64>,
    epoch: u64,
    /// Per-cell transmission batches (epoch-stamped, allocation reused).
    cell_stamp: Vec<u64>,
    cell_txs: Vec<Vec<u32>>,
    touched_cells: Vec<u32>,
    /// Per-touched-cell candidate-pair weights (txs × occupants),
    /// parallel to `touched_cells` after the sort; drives the
    /// occupancy-weighted shard split (allocation reused).
    cell_weights: Vec<u64>,
    /// `(key, shard)` pairs gathered per slot for globally-ordered
    /// delivery (allocation reused).
    delivery: Vec<(u32, u32)>,
    /// Shared epoch-keyed link-state cache (see [`GainCache`]): shards
    /// read it concurrently, publish their fills after the join.
    gains: GainCache,
}

/// One shard's private accumulation state, persistent across slots:
/// epoch-stamped per-`(receiver, codec)` collision accumulators plus the
/// shard's gain-cache fills from the current slot. Shards read the
/// shared [`GainCache`] concurrently but never write it — rows missing
/// from it are computed into `fill_rows` and published into the shared
/// store after the join, in shard order, so workers never contend — and
/// the sequential path is just shard 0.
#[derive(Debug, Clone)]
struct ShardScratch {
    /// Per `(receiver, codec)` accumulator epoch (slot-stamped).
    stamp: Vec<u64>,
    best: Vec<f64>,
    second: Vec<f64>,
    best_tx: Vec<u32>,
    count: Vec<u32>,
    touched: Vec<u32>,
    /// Gain-cache keys this shard filled this slot (drained into the
    /// shared store after the join).
    fill_keys: Vec<u64>,
    /// The filled rows, parallel to `fill_keys`.
    fill_rows: Vec<Vec<f64>>,
    /// Per-slot dedup of local fills (the same sender can post two
    /// transmissions into one cell in one slot). Cleared on publish.
    // ffd2d-lint: allow(ordered-iteration) — lookup-only dedup map; publish drains the parallel `fill_keys`/`fill_rows` vectors (insertion order), never this map's iteration order
    fill_index: HashMap<u64, u32>,
    /// Above-threshold (detected) pairs seen this slot.
    detected: u64,
    // --- Telemetry (written only when the resolving recorder is
    // enabled; the disabled path never touches these) ---
    /// Wall-clock nanoseconds this shard spent accumulating this slot.
    busy_ns: u64,
    /// Rows served from the shared epoch cache this slot.
    rows_hit: u64,
    /// Rows this shard had to fill this slot (batched-kernel runs).
    rows_filled: u64,
    /// Wall-clock nanoseconds spent inside the fill kernel this slot.
    fill_ns: u64,
}

/// Read-only per-slot inputs shared by every accumulation shard.
struct SlotCtx<'a> {
    world: &'a World,
    transmissions: &'a [ProximitySignal],
    slot: Slot,
    epoch: u64,
    /// Per-cell transmission batches (only cells stamped this epoch
    /// appear in the shard's cell list).
    cell_txs: &'a [Vec<u32>],
    /// Per-device transmit epoch (half-duplex tracking).
    tx_stamp: &'a [u64],
    threshold: f64,
    mean_floor: f64,
    /// Receiver liveness under churn; `None` = everyone listens (the
    /// exact fault-free path).
    active: Option<&'a [bool]>,
    /// Per-transmission power droop in dB (fault injection); `None`
    /// when no droop window is open this slot.
    droop: Option<&'a [f64]>,
    /// The shared epoch-keyed gain cache, read-only during
    /// accumulation; `None` disables caching
    /// ([`crate::GainCacheMode::Off`]) and means are recomputed
    /// per pair.
    gains: Option<&'a GainCache>,
}

impl ShardScratch {
    fn new(n: usize) -> ShardScratch {
        ShardScratch {
            stamp: vec![0; n * 2],
            best: vec![f64::NEG_INFINITY; n * 2],
            second: vec![f64::NEG_INFINITY; n * 2],
            best_tx: vec![0; n * 2],
            count: vec![0; n * 2],
            touched: Vec::with_capacity(64),
            fill_keys: Vec::new(),
            fill_rows: Vec::new(),
            // ffd2d-lint: allow(ordered-iteration) — see the field's proof comment: lookup-only dedup map
            fill_index: HashMap::new(),
            detected: 0,
            busy_ns: 0,
            rows_hit: 0,
            rows_filled: 0,
            fill_ns: 0,
        }
    }

    /// Admit one candidate pair given its mean link gain: floor prune,
    /// fading draw, droop, threshold test, then the per-key
    /// best/second/count accumulation. Shared verbatim by the cached
    /// and direct paths, so the two cannot drift.
    #[inline]
    fn admit(&mut self, ctx: &SlotCtx<'_>, ti: u32, r: DeviceId, mean: f64) {
        if mean < ctx.mean_floor {
            // Provably below threshold for any fading draw; tallied by
            // the closed-form reconstruction. Droops only weaken a
            // signal further, so the prune stays conservative under
            // fault plans.
            return;
        }
        let tx = &ctx.transmissions[ti as usize];
        let mut p = mean
            + ctx
                .world
                .fading
                .gain(ctx.world.fading_seed, tx.sender, r, ctx.slot)
                .get();
        if let Some(droop) = ctx.droop {
            p -= droop[ti as usize];
        }
        if p < ctx.threshold {
            return;
        }
        self.detected += 1;
        let k = r as usize * 2 + FastMedium::codec_index(tx.codec());
        if self.stamp[k] != ctx.epoch {
            self.stamp[k] = ctx.epoch;
            self.best[k] = f64::NEG_INFINITY;
            self.second[k] = f64::NEG_INFINITY;
            self.count[k] = 0;
            self.touched.push(k as u32);
        }
        self.count[k] += 1;
        if p > self.best[k] {
            self.second[k] = self.best[k];
            self.best[k] = p;
            self.best_tx[k] = ti;
        } else if p > self.second[k] {
            self.second[k] = p;
        }
    }

    /// Accumulate one contiguous chunk of touched cells. Dispatches on
    /// the world's caching mode; both paths produce bit-identical
    /// per-key state (locked by `tests/gain_cache.rs`): for any one
    /// `(receiver, codec)` key the transmissions are visited in
    /// submission order either way, and `admit` is order-insensitive
    /// across keys.
    fn accumulate<const TELEM: bool>(&mut self, ctx: &SlotCtx<'_>, cells: &[u32]) {
        match ctx.gains {
            Some(gains) => self.accumulate_cached::<TELEM>(ctx, gains, cells),
            None => self.accumulate_direct(ctx, cells),
        }
    }

    /// Uncached accumulation: recompute the mean gain per candidate
    /// pair. Receivers ascending within a cell, transmissions in
    /// submission order — the original sequential visit order.
    fn accumulate_direct(&mut self, ctx: &SlotCtx<'_>, cells: &[u32]) {
        for &cell in cells {
            let cell = cell as usize;
            let txs_here = &ctx.cell_txs[cell];
            for &r in ctx.world.grid.cell_items(cell) {
                if ctx.tx_stamp[r as usize] == ctx.epoch {
                    continue; // half-duplex: transmitting receivers are deaf
                }
                if let Some(active) = ctx.active {
                    if !active[r as usize] {
                        continue; // departed devices hear nothing
                    }
                }
                for &ti in txs_here {
                    let sender = ctx.transmissions[ti as usize].sender;
                    let mean = ctx.world.mean_rx_dbm(sender, r);
                    self.admit(ctx, ti, r, mean);
                }
            }
        }
    }

    /// Cached accumulation: per transmission, resolve the `(sender,
    /// cell)` row — shared cache first, then this slot's local fills,
    /// else run the batched kernel once for the whole cell — and sweep
    /// the cell's receivers reading `row[j]` by occupant index. The
    /// tx-outer sweep visits each `(receiver, codec)` key's
    /// transmissions in the same submission order as the
    /// receiver-outer direct loop, so accumulated state is identical.
    fn accumulate_cached<const TELEM: bool>(
        &mut self,
        ctx: &SlotCtx<'_>,
        gains: &GainCache,
        cells: &[u32],
    ) {
        for &cell in cells {
            let cell = cell as usize;
            let txs_here = &ctx.cell_txs[cell];
            if txs_here.is_empty() {
                continue;
            }
            let items = ctx.world.grid.cell_items(cell);
            for &ti in txs_here {
                let sender = ctx.transmissions[ti as usize].sender;
                let key = ((sender as u64) << 32) | cell as u64;
                // A shared row is served only while its membership
                // stamp matches the sender's: churn stales exactly the
                // churned senders' rows, which then refill below.
                let shared = gains
                    .index
                    .get(&key)
                    .copied()
                    .filter(|&i| gains.row_gen[i as usize] == gains.sender_gen(sender));
                let row = if let Some(i) = shared {
                    if TELEM {
                        self.rows_hit += 1;
                    }
                    RowRef::Shared(i)
                } else if let Some(&i) = self.fill_index.get(&key) {
                    RowRef::Local(i)
                } else {
                    // ffd2d-lint: allow(wall-clock) — telemetry-gated fill-kernel timing; compiled out under NullRecorder, feeds metrics only
                    let t0 = TELEM.then(Instant::now);
                    let mut filled = Vec::new();
                    ctx.world.fill_mean_rx_dbm(sender, items, &mut filled);
                    if let Some(t0) = t0 {
                        self.rows_filled += 1;
                        self.fill_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    }
                    let i = self.fill_rows.len() as u32;
                    self.fill_index.insert(key, i);
                    self.fill_keys.push(key);
                    self.fill_rows.push(filled);
                    RowRef::Local(i)
                };
                for (j, &r) in items.iter().enumerate() {
                    if ctx.tx_stamp[r as usize] == ctx.epoch {
                        continue; // half-duplex: transmitting receivers are deaf
                    }
                    if let Some(active) = ctx.active {
                        if !active[r as usize] {
                            continue; // departed devices hear nothing
                        }
                    }
                    let mean = match row {
                        RowRef::Shared(i) => gains.rows[i as usize][j],
                        RowRef::Local(i) => self.fill_rows[i as usize][j],
                    };
                    self.admit(ctx, ti, r, mean);
                }
            }
        }
    }
}

impl FastMedium {
    /// A resolver for `n` devices.
    pub fn new(n: usize) -> FastMedium {
        FastMedium {
            n,
            shards: vec![ShardScratch::new(n)],
            tx_stamp: vec![0; n],
            epoch: 0,
            cell_stamp: Vec::new(),
            cell_txs: Vec::new(),
            touched_cells: Vec::new(),
            cell_weights: Vec::new(),
            delivery: Vec::with_capacity(64),
            gains: GainCache::default(),
        }
    }

    /// Record that the driving engine applied churn (join/leave) to an
    /// unknown set of devices: every sender's membership stamp advances,
    /// so the whole link-state cache is lazily refilled. Prefer
    /// [`FastMedium::note_churn_of`], which invalidates only the rows
    /// the event actually touched.
    pub fn note_churn(&mut self) {
        self.gains.churn_gen += 1;
        let gen = self.gains.churn_gen;
        if self.gains.device_gen.len() < self.n {
            self.gains.device_gen.resize(self.n, 0);
        }
        self.gains.device_gen.iter_mut().for_each(|g| *g = gen);
    }

    /// Record that the driving engine applied churn (join/leave) to
    /// exactly `devices` — called by the protocol engines whenever a
    /// fault plan's churn events take effect. Only those devices'
    /// membership stamps advance, so cached rows of unaffected senders
    /// keep serving; the churned senders' rows are refilled in place on
    /// next use. Positions do not change under churn, so even that
    /// refill is value-identical — the narrow invalidation keeps the
    /// honest contract ("a population event invalidates the state of
    /// the devices it touched") without the full-cache flush the
    /// coarse generation key used to force.
    pub fn note_churn_of(&mut self, devices: &[DeviceId]) {
        if devices.is_empty() {
            return;
        }
        self.gains.churn_gen += 1;
        let gen = self.gains.churn_gen;
        for &d in devices {
            let d = d as usize;
            if d >= self.gains.device_gen.len() {
                self.gains.device_gen.resize(self.n.max(d + 1), 0);
            }
            self.gains.device_gen[d] = gen;
        }
    }

    #[inline]
    fn codec_index(codec: RachCodec) -> usize {
        match codec {
            RachCodec::Rach1 => 0,
            RachCodec::Rach2 => 1,
        }
    }

    /// Size scratch state to `world` and flush the link-state cache if
    /// the world re-bucketed (mobility epoch) since the last slot.
    /// Churn does not flush here: it only advances the churned senders'
    /// membership stamps, leaving everyone else's rows hot.
    fn sync_with(&mut self, world: &World) {
        let cells = world.grid.cell_count();
        if self.cell_stamp.len() != cells {
            self.cell_stamp = vec![0; cells];
            self.cell_txs = vec![Vec::new(); cells];
        }
        let key = world.mobility_epoch();
        if self.gains.valid_for != key {
            self.gains.reset(key);
        }
    }

    /// Resolve one slot: every decoded `(receiver, signal, rx_dbm)`
    /// triple is fed to `deliver` (the received power is what RSSI
    /// ranging consumes), and `counters` tallies transmissions and
    /// reception outcomes. Every device is a potential receiver, as with
    /// the reference resolver over the full receiver set.
    pub fn resolve<F: FnMut(DeviceId, &ProximitySignal, f64)>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        counters: &mut Counters,
        mut deliver: F,
    ) {
        self.resolve_traced(
            world,
            slot,
            transmissions,
            counters,
            &mut NullSink,
            |r, sig, p, _| deliver(r, sig, p),
        )
    }

    /// [`FastMedium::resolve`] with per-event tracing: every
    /// transmission, decode and collision is reported to `sink`, plus
    /// one aggregate below-threshold count per slot (the fast path
    /// reconstructs that tally in closed form and never visits the
    /// individual inaudible pairs). The sink is also threaded into
    /// `deliver` so callers can emit follow-on events (e.g. oscillator
    /// adjustments) without a second borrow. With a disabled sink this
    /// monomorphizes to exactly the untraced resolver.
    pub fn resolve_traced<S, F>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        counters: &mut Counters,
        sink: &mut S,
        deliver: F,
    ) where
        S: TraceSink,
        F: FnMut(DeviceId, &ProximitySignal, f64, &mut S),
    {
        self.resolve_masked(world, slot, transmissions, None, counters, sink, deliver)
    }

    /// [`FastMedium::resolve_traced`] under churn: receivers whose
    /// `active` entry is `false` hear nothing (they left the arena), and
    /// the closed-form below-threshold reconstruction counts only the
    /// live population. Transmit-power droops from the world's
    /// [`ScenarioConfig::faults`] plan are subtracted per transmission
    /// before the threshold test. `active = None` and an empty droop
    /// schedule reproduce the fault-free resolver bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_masked<S, F>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        active: Option<&[bool]>,
        counters: &mut Counters,
        sink: &mut S,
        deliver: F,
    ) where
        S: TraceSink,
        F: FnMut(DeviceId, &ProximitySignal, f64, &mut S),
    {
        self.resolve_instrumented(
            world,
            slot,
            transmissions,
            active,
            counters,
            sink,
            &mut NullRecorder,
            deliver,
        )
    }

    /// [`FastMedium::resolve_masked`] with performance telemetry: an
    /// enabled [`Recorder`] gets the slot's resolution wall clock,
    /// candidate-pair count, per-shard busy time (plus a max-over-mean
    /// imbalance ratio when sharded) and epoch-cache row hit/fill
    /// tallies with the fill kernel's wall clock.
    /// Telemetry is strictly observational — it draws no randomness and
    /// feeds nothing back into resolution, so counters, trace events,
    /// deliveries and their order are bit-identical to an unrecorded
    /// slot; with [`NullRecorder`] this monomorphizes to exactly
    /// [`FastMedium::resolve_masked`].
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_instrumented<S, R, F>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        active: Option<&[bool]>,
        counters: &mut Counters,
        sink: &mut S,
        rec: &mut R,
        mut deliver: F,
    ) where
        S: TraceSink,
        R: Recorder,
        F: FnMut(DeviceId, &ProximitySignal, f64, &mut S),
    {
        if transmissions.is_empty() {
            return;
        }
        let t_resolve = rec.start();
        let faults = &world.config().faults;
        let droops: Option<Vec<f64>> = if faults.droop.is_empty() {
            None
        } else {
            Some(
                transmissions
                    .iter()
                    .map(|tx| faults.droop_db_at(tx.sender, slot.0))
                    .collect(),
            )
        };
        self.sync_with(world);
        self.epoch += 1;
        let epoch = self.epoch;
        self.touched_cells.clear();

        let mut distinct_senders = 0u64;
        for tx in transmissions {
            match tx.codec() {
                RachCodec::Rach1 => counters.add_rach1_tx(1),
                RachCodec::Rach2 => counters.add_rach2_tx(1),
            }
            if S::ENABLED {
                sink.event(&TraceEvent::Tx {
                    slot: slot.0,
                    sender: tx.sender,
                    codec: tx.codec().trace_codec(),
                    kind: tx.kind.trace_label(),
                });
            }
            let s = tx.sender as usize;
            if self.tx_stamp[s] != epoch {
                self.tx_stamp[s] = epoch;
                distinct_senders += 1;
            }
        }

        // Post each transmission to every cell its audibility disc
        // covers; cells keep tx indices in transmission order.
        let radius = world.audible_range_m();
        for (ti, tx) in transmissions.iter().enumerate() {
            let p = world.deployment.position(tx.sender);
            for cell in world.grid.cells_intersecting_disc(p.x, p.y, radius) {
                if self.cell_stamp[cell] != epoch {
                    self.cell_stamp[cell] = epoch;
                    self.cell_txs[cell].clear();
                    self.touched_cells.push(cell as u32);
                }
                self.cell_txs[cell].push(ti as u32);
            }
        }
        // Batched, deterministic resolution: cells ascending, receivers
        // ascending within a cell, transmissions in submission order.
        self.touched_cells.sort_unstable();

        // Shard the (sorted) cell list when the configured parallelism
        // engages on this slot's workload. A receiver's accumulators
        // live with its home cell's shard, so any chunking yields
        // bit-identical per-key results (see the struct docs). Chunk
        // boundaries balance candidate pairs, not cell counts: one hot
        // cell in a clustered deployment can carry most of the slot's
        // work, and an even cell split would leave every other shard
        // idle behind it.
        self.cell_weights.clear();
        let mut pairs = 0u64;
        for &c in &self.touched_cells {
            let w = self.cell_txs[c as usize].len() as u64
                * world.grid.cell_items(c as usize).len() as u64;
            self.cell_weights.push(w);
            pairs += w;
        }
        let workers = world
            .config()
            .parallelism
            .workers_for(pairs)
            .min(self.touched_cells.len().max(1));
        if self.shards.len() < workers {
            let n = self.n;
            self.shards.resize_with(workers, || ShardScratch::new(n));
        }
        for shard in &mut self.shards[..workers] {
            shard.detected = 0;
            shard.touched.clear();
            if R::ENABLED {
                shard.busy_ns = 0;
                shard.rows_hit = 0;
                shard.rows_filled = 0;
                shard.fill_ns = 0;
            }
        }

        let cached = world.config().gain_cache == GainCacheMode::Epoch;
        let threshold = world.threshold_dbm();
        let mean_floor = threshold - world.fade_headroom_db();
        let ctx = SlotCtx {
            world,
            transmissions,
            slot,
            epoch,
            cell_txs: &self.cell_txs,
            tx_stamp: &self.tx_stamp,
            threshold,
            mean_floor,
            active,
            droop: droops.as_deref(),
            gains: cached.then_some(&self.gains),
        };
        if R::ENABLED {
            // Timed accumulation: each shard clocks its own busy window
            // on its own thread (the recorder itself stays on this
            // thread and is flushed after the join).
            sharded_for_each_weighted(
                &self.touched_cells,
                &self.cell_weights,
                &mut self.shards[..workers],
                |_, cells, shard| {
                    // ffd2d-lint: allow(wall-clock) — recorder-gated shard busy-window; this closure only runs when R::ENABLED and writes telemetry fields alone
                    let t0 = Instant::now();
                    shard.accumulate::<true>(&ctx, cells);
                    shard.busy_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                },
            );
        } else {
            sharded_for_each_weighted(
                &self.touched_cells,
                &self.cell_weights,
                &mut self.shards[..workers],
                |_, cells, shard| shard.accumulate::<false>(&ctx, cells),
            );
        }

        // Gather every shard's touched keys for globally-ordered
        // delivery. Keys are unique across shards (one home cell per
        // receiver), so sorting the pairs sorts by key.
        let mut detected = 0u64;
        self.delivery.clear();
        for (si, shard) in self.shards[..workers].iter().enumerate() {
            detected += shard.detected;
            for &k in &shard.touched {
                self.delivery.push((k, si as u32));
            }
        }
        self.delivery.sort_unstable();

        // Publish this slot's per-shard fills into the shared gain
        // cache, in shard order. Fill keys are unique across shards
        // within a slot (a touched cell is owned by exactly one shard
        // and local fills dedup per sender), and rows are pure
        // functions of positions — so the merged store is identical
        // for any worker count. A key already present means the old
        // row went stale under churn: it is replaced in place and
        // re-stamped with the sender's current membership generation.
        if cached {
            for shard in &mut self.shards[..workers] {
                if shard.fill_keys.is_empty() {
                    continue;
                }
                shard.fill_index.clear();
                for (key, row) in shard.fill_keys.drain(..).zip(shard.fill_rows.drain(..)) {
                    let gen = self.gains.sender_gen((key >> 32) as DeviceId);
                    match self.gains.index.entry(key) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let i = *e.get() as usize;
                            debug_assert_ne!(
                                self.gains.row_gen[i], gen,
                                "refilled a still-valid gain-cache row, key {key}"
                            );
                            self.gains.rows[i] = row;
                            self.gains.row_gen[i] = gen;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(self.gains.rows.len() as u32);
                            self.gains.rows.push(row);
                            self.gains.row_gen.push(gen);
                        }
                    }
                }
            }
        }

        // Exact counter reconstruction: the reference walks every
        // (transmission, non-transmitting receiver) pair and counts it
        // either as detected (rx_ok + rx_collision below) or as below
        // threshold — so the latter is the complement. Under churn only
        // the live population counts as receivers.
        let population = match active {
            Some(mask) => mask.iter().filter(|&&a| a).count() as u64,
            None => world.n() as u64,
        };
        let receivers = population - distinct_senders;
        let below_threshold = transmissions.len() as u64 * receivers - detected;
        counters.add_rx_below_threshold(below_threshold);
        if S::ENABLED && below_threshold > 0 {
            sink.event(&TraceEvent::RxBelowThreshold {
                slot: slot.0,
                count: below_threshold,
            });
        }

        // Deterministic delivery order regardless of tx iteration
        // pattern or sharding: keys ascending, exactly the sequential
        // resolver's order.
        for i in 0..self.delivery.len() {
            let (k32, si) = self.delivery[i];
            let k = k32 as usize;
            let shard = &self.shards[si as usize];
            let receiver = (k / 2) as DeviceId;
            let n_signals = shard.count[k];
            let decoded = if n_signals == 1 {
                true
            } else {
                shard.best[k] >= shard.second[k] + world.capture_margin_db
            };
            if decoded {
                counters.add_rx_ok(1);
                counters.add_rx_collision((n_signals - 1) as u64);
                let sig = transmissions[shard.best_tx[k] as usize];
                if S::ENABLED {
                    sink.event(&TraceEvent::RxDecode {
                        slot: slot.0,
                        receiver,
                        sender: sig.sender,
                        codec: sig.codec().trace_codec(),
                        rx_dbm: shard.best[k],
                    });
                    if n_signals > 1 {
                        sink.event(&TraceEvent::RxCollision {
                            slot: slot.0,
                            receiver,
                            codec: sig.codec().trace_codec(),
                            signals: n_signals - 1,
                        });
                    }
                }
                deliver(receiver, &sig, shard.best[k], sink);
            } else {
                counters.add_rx_collision(n_signals as u64);
                if S::ENABLED {
                    let codec = if k.is_multiple_of(2) {
                        ffd2d_trace::Codec::Rach1
                    } else {
                        ffd2d_trace::Codec::Rach2
                    };
                    sink.event(&TraceEvent::RxCollision {
                        slot: slot.0,
                        receiver,
                        codec,
                        signals: n_signals,
                    });
                }
            }
        }

        if R::ENABLED {
            rec.add("medium.slots_resolved", 1);
            rec.add("medium.transmissions", transmissions.len() as u64);
            rec.observe("medium.pairs_per_slot", pairs);
            rec.observe("medium.workers_per_slot", workers as u64);
            let (mut hits, mut filled) = (0u64, 0u64);
            let (mut busy_max, mut busy_sum) = (0u64, 0u64);
            for shard in &self.shards[..workers] {
                hits += shard.rows_hit;
                filled += shard.rows_filled;
                busy_max = busy_max.max(shard.busy_ns);
                busy_sum += shard.busy_ns;
                rec.record_ns("medium.shard_busy_ns", shard.busy_ns);
                if shard.fill_ns > 0 {
                    rec.record_ns("medium.gain_fill_ns", shard.fill_ns);
                }
            }
            if cached {
                // Row granularity: a hit serves a whole (sender, cell)
                // row from the epoch cache; a miss runs the batched
                // fill kernel once. Absent entirely under
                // `GainCacheMode::Off` (perf_inspect renders `n/a`).
                rec.add("medium.gain_cache_hits", hits);
                rec.add("medium.gain_cache_misses", filled);
            }
            if workers > 1 && busy_sum > 0 {
                // Shard imbalance: slowest shard over the mean, in
                // percent (100 = perfectly balanced).
                let mean = (busy_sum / workers as u64).max(1);
                rec.observe("medium.shard_imbalance_pct", busy_max * 100 / mean);
            }
            rec.stop("medium.resolve_ns", t_resolve);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_phy::frame::FrameKind;
    use ffd2d_phy::medium::{Medium, Transmission};
    use ffd2d_sim::time::SlotDuration;

    fn small_cfg(n: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(SlotDuration(1000))
    }

    fn fire(sender: u32) -> ProximitySignal {
        ProximitySignal {
            sender,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: sender,
                age: 0,
            },
        }
    }

    /// Drive the fast and reference media through the same slot and
    /// assert identical decode pairs and counters.
    fn assert_media_agree(w: &World, fast: &mut FastMedium, slot: u64, txs: &[ProximitySignal]) {
        let ch = w.reference_channel();
        let reference = Medium::default();
        let receivers: Vec<u32> = (0..w.n() as u32).collect();
        let transmissions: Vec<Transmission> = txs.iter().map(|&s| Transmission::new(s)).collect();

        let mut ref_counters = Counters::new();
        let ref_reports = reference.resolve(
            &ch,
            Slot(slot),
            &transmissions,
            &receivers,
            &mut ref_counters,
        );
        let mut ref_pairs: Vec<(u32, u32)> = Vec::new();
        for (r, report) in receivers.iter().zip(&ref_reports) {
            for sig in &report.decoded {
                ref_pairs.push((*r, sig.sender));
            }
        }
        ref_pairs.sort();

        let mut fast_counters = Counters::new();
        let mut fast_pairs: Vec<(u32, u32)> = Vec::new();
        fast.resolve(w, Slot(slot), txs, &mut fast_counters, |r, sig, p| {
            assert!(p >= w.threshold_dbm());
            fast_pairs.push((r, sig.sender));
        });
        fast_pairs.sort();

        assert_eq!(fast_pairs, ref_pairs, "decode pairs, slot {slot}");
        assert_eq!(
            fast_counters.rx_ok, ref_counters.rx_ok,
            "rx_ok, slot {slot}"
        );
        assert_eq!(
            fast_counters.rx_collision, ref_counters.rx_collision,
            "rx_collision, slot {slot}"
        );
        assert_eq!(
            fast_counters.rx_below_threshold, ref_counters.rx_below_threshold,
            "rx_below_threshold, slot {slot}"
        );
        assert_eq!(fast_counters.total_tx(), ref_counters.total_tx());
    }

    #[test]
    fn world_is_deterministic_per_seed() {
        let a = World::new(&small_cfg(20, 7));
        let b = World::new(&small_cfg(20, 7));
        assert_eq!(a.deployment().positions(), b.deployment().positions());
        assert_eq!(a.services(), b.services());
        assert_eq!(a.mean_rx_dbm(0, 1), b.mean_rx_dbm(0, 1));
        let c = World::new(&small_cfg(20, 8));
        assert_ne!(a.deployment().positions(), c.deployment().positions());
    }

    #[test]
    fn mean_power_matches_reference_channel() {
        let w = World::new(&small_cfg(15, 3));
        let ch = w.reference_channel();
        for a in 0..15u32 {
            for b in 0..15u32 {
                if a != b {
                    assert_eq!(w.mean_rx_dbm(a, b), ch.mean_rx_power(a, b).get());
                }
            }
        }
    }

    #[test]
    fn instantaneous_power_matches_reference_channel() {
        let w = World::new(&small_cfg(10, 4));
        let ch = w.reference_channel();
        for slot in [0u64, 7, 35, 1000] {
            for a in 0..10u32 {
                for b in 0..10u32 {
                    if a != b {
                        let fast = w.rx_dbm(a, b, Slot(slot));
                        let reference = ch.rx_power(a, b, Slot(slot)).get();
                        assert!(
                            (fast - reference).abs() < 1e-9,
                            "link {a}->{b} slot {slot}: {fast} vs {reference}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn graph_edges_follow_threshold() {
        let w = World::new(&small_cfg(25, 5));
        let g = w.proximity_graph();
        for a in 0..25u32 {
            for b in (a + 1)..25u32 {
                let linked = w.mean_rx_dbm(a, b) >= w.threshold_dbm();
                assert_eq!(g.has_edge(a, b), linked, "edge {{{a},{b}}}");
                if let Some(wt) = g.weight(a, b) {
                    assert_eq!(wt.get(), w.mean_rx_dbm(a, b));
                }
            }
        }
    }

    #[test]
    fn audible_candidates_cover_every_possible_receiver() {
        // Anything the grid prunes must have a mean below the provable
        // detectability floor — the exactness contract of the index.
        let w = World::new(&small_cfg(40, 9));
        let floor = w.threshold_dbm() - w.fade_headroom_db();
        for a in 0..40u32 {
            let cands = w.audible_candidates(a);
            assert!(!cands.contains(&a));
            assert!(cands.windows(2).all(|p| p[0] < p[1]), "sorted, unique");
            for b in 0..40u32 {
                if b != a && !cands.contains(&b) {
                    assert!(
                        w.mean_rx_dbm(a, b) < floor,
                        "pruned pair {a}->{b} is not provably inaudible"
                    );
                }
            }
        }
    }

    #[test]
    fn table1_area_is_fully_connected_without_shadowing() {
        // 89 m nominal range in a 100 m × 100 m area: the ideal-channel
        // proximity graph is (almost surely) connected and dense.
        let cfg = small_cfg(50, 1).ideal_channel();
        let w = World::new(&cfg);
        assert!(ffd2d_graph::connectivity::is_connected(w.proximity_graph()));
        let avg_degree = 2.0 * w.proximity_graph().m() as f64 / 50.0;
        assert!(avg_degree > 30.0, "avg degree {avg_degree}");
    }

    #[test]
    fn fast_medium_agrees_with_reference_medium() {
        // Same transmissions, same slot: identical decode decisions and
        // identical counters (Table-I channel: shadowing + fading).
        let cfg = small_cfg(30, 11);
        let w = World::new(&cfg);
        let mut fast = FastMedium::new(30);
        for slot in [0u64, 3, 21, 40, 77] {
            let txs = vec![
                fire(slot as u32 % 30),
                fire((slot as u32 + 7) % 30),
                fire((slot as u32 + 19) % 30),
            ];
            assert_media_agree(&w, &mut fast, slot, &txs);
        }
    }

    #[test]
    fn fast_medium_agrees_in_sparse_arena_with_real_pruning() {
        // A 2 km arena under the ideal channel: the audibility radius
        // (89 m) is far below the diagonal, so the grid actually prunes
        // — and the decode reports must still be bit-identical.
        let mut cfg = small_cfg(60, 23).ideal_channel();
        cfg.sim.area_width = Meters(2000.0);
        cfg.sim.area_height = Meters(2000.0);
        let w = World::new(&cfg);
        assert!(
            w.spatial_grid().cols() >= 20,
            "expected a fine grid, got {}x{}",
            w.spatial_grid().cols(),
            w.spatial_grid().rows()
        );
        let mut fast = FastMedium::new(60);
        for slot in [0u64, 5, 9] {
            let txs: Vec<ProximitySignal> = (0..6)
                .map(|k| fire((slot as u32 * 11 + k * 13) % 60))
                .collect();
            assert_media_agree(&w, &mut fast, slot, &txs);
        }
    }

    #[test]
    fn fast_medium_tracks_mobility_rebucketing() {
        let mut cfg = small_cfg(40, 31).ideal_channel();
        cfg.sim.area_width = Meters(1000.0);
        cfg.sim.area_height = Meters(1000.0);
        let mut w = World::new(&cfg);
        let mut fast = FastMedium::new(40);
        assert_media_agree(&w, &mut fast, 0, &[fire(1), fire(17), fire(33)]);

        // Shift everyone: the medium must re-bucket (via version) and
        // still agree with a reference channel over the moved positions.
        let moved: Vec<Position> = w
            .deployment()
            .positions()
            .iter()
            .map(|p| Position::new((p.x + 400.0).min(1000.0), (p.y * 0.5).max(0.0)))
            .collect();
        let before = w.mobility_epoch();
        w.update_positions(&moved);
        assert_eq!(w.mobility_epoch(), before + 1);
        assert_media_agree(&w, &mut fast, 1, &[fire(1), fire(17), fire(33)]);
        // The lazily-rebuilt graph reflects the new geometry too.
        let g = w.proximity_graph();
        for a in 0..40u32 {
            for b in (a + 1)..40u32 {
                assert_eq!(g.has_edge(a, b), w.mean_rx_dbm(a, b) >= w.threshold_dbm());
            }
        }
    }

    #[test]
    fn sharded_fast_medium_is_bit_identical_to_sequential() {
        // Same seeded world resolved under Off / Fixed{1, 2, 8, 64}:
        // delivered (receiver, sender, power-bits) triples, counters and
        // the full trace-event stream must match exactly. Fixed(64) at
        // n=48 exercises the clamp to the touched-cell count.
        use ffd2d_parallel::Parallelism;
        use ffd2d_trace::BufferSink;
        let base = small_cfg(48, 17);
        let txs: Vec<ProximitySignal> = (0..10).map(|k| fire(k * 5)).collect();

        let run = |parallelism: Parallelism| {
            let cfg = base.clone().with_parallelism(parallelism);
            let w = World::new(&cfg);
            let mut fast = FastMedium::new(48);
            let mut counters = Counters::new();
            let mut sink = BufferSink::new();
            let mut delivered: Vec<(u32, u32, u64)> = Vec::new();
            for slot in [0u64, 2, 9, 30] {
                fast.resolve_traced(
                    &w,
                    Slot(slot),
                    &txs,
                    &mut counters,
                    &mut sink,
                    |r, sig, p, _| delivered.push((r, sig.sender, p.to_bits())),
                );
            }
            (delivered, counters, sink.events)
        };

        let baseline = run(Parallelism::Off);
        assert!(baseline.1.rx_ok > 0, "scenario must exercise decodes");
        for workers in [1, 2, 8, 64] {
            let sharded = run(Parallelism::Fixed(workers));
            assert_eq!(sharded.0, baseline.0, "deliveries, {workers} workers");
            assert_eq!(sharded.1, baseline.1, "counters, {workers} workers");
            assert_eq!(sharded.2, baseline.2, "events, {workers} workers");
        }
        // Auto at this tiny n stays sequential and must agree too.
        let auto = run(Parallelism::Auto);
        assert_eq!(auto.0, baseline.0);
        assert_eq!(auto.1, baseline.1);
    }

    #[test]
    fn gain_cache_off_is_bit_identical_to_epoch_caching() {
        // Same seeded world, same transmissions, cache on vs. off:
        // delivered (receiver, sender, power-bits) triples and counters
        // must match exactly — across enough slots that the cached arm
        // actually reuses rows.
        use crate::GainCacheMode;
        let base = small_cfg(48, 29);
        let txs: Vec<ProximitySignal> = (0..8).map(|k| fire(k * 6)).collect();
        let run = |mode: GainCacheMode| {
            let cfg = base.clone().with_gain_cache(mode);
            let w = World::new(&cfg);
            let mut fast = FastMedium::new(48);
            let mut counters = Counters::new();
            let mut delivered: Vec<(u32, u32, u64)> = Vec::new();
            for slot in 0..20u64 {
                fast.resolve(&w, Slot(slot), &txs, &mut counters, |r, sig, p| {
                    delivered.push((r, sig.sender, p.to_bits()))
                });
            }
            (delivered, counters)
        };
        let cached = run(GainCacheMode::Epoch);
        let direct = run(GainCacheMode::Off);
        assert!(cached.1.rx_ok > 0, "scenario must exercise decodes");
        assert_eq!(cached.0, direct.0, "deliveries");
        assert_eq!(cached.1, direct.1, "counters");
    }

    #[test]
    fn gain_cache_survives_slots_but_not_position_updates_or_churn() {
        use ffd2d_telemetry::Telemetry;
        let mut cfg = small_cfg(40, 13).ideal_channel();
        cfg.sim.area_width = Meters(1000.0);
        cfg.sim.area_height = Meters(1000.0);
        let mut w = World::new(&cfg);
        let mut fast = FastMedium::new(40);
        let txs = [fire(2), fire(11), fire(27)];
        let resolve = |fast: &mut FastMedium, w: &World, slot: u64| {
            let mut rec = Telemetry::new();
            let mut counters = Counters::new();
            fast.resolve_instrumented(
                w,
                Slot(slot),
                &txs,
                None,
                &mut counters,
                &mut NullSink,
                &mut rec,
                |_, _, _, _| {},
            );
            (
                rec.counter("medium.gain_cache_hits"),
                rec.counter("medium.gain_cache_misses"),
            )
        };
        let (h0, m0) = resolve(&mut fast, &w, 0);
        assert_eq!(h0, 0, "first slot of the epoch cannot hit");
        assert!(m0 > 0, "first slot must fill rows");
        let (h1, m1) = resolve(&mut fast, &w, 1);
        assert_eq!(m1, 0, "same epoch, same senders: no refill");
        assert_eq!(h1, m0, "every filled row is reused");

        // A position update advances the mobility epoch: full flush.
        let moved: Vec<Position> = w.deployment().positions().to_vec();
        w.update_positions(&moved);
        let (h2, m2) = resolve(&mut fast, &w, 2);
        assert_eq!(h2, 0, "mobility epoch moved: cache must flush");
        assert_eq!(m2, m0);

        // Coarse engine-reported churn stales every row, positions
        // unchanged.
        fast.note_churn();
        let (h3, m3) = resolve(&mut fast, &w, 3);
        assert_eq!(h3, 0, "churn generation moved: cache must flush");
        assert_eq!(m3, m0);
        let (h4, m4) = resolve(&mut fast, &w, 4);
        assert_eq!(m4, 0, "cache is warm again");
        assert_eq!(h4, m0);

        // Narrow churn: only the churned sender's rows go stale and
        // refill in place; everyone else's keep serving.
        fast.note_churn_of(&[2]);
        let (h5, m5) = resolve(&mut fast, &w, 5);
        assert!(m5 > 0, "the churned sender's rows refill");
        assert!(h5 > 0, "other senders' rows keep serving");
        assert_eq!(h5 + m5, m0, "per-row staleness, not a full flush");

        // Churn of a device that never transmits stales no row at all.
        fast.note_churn_of(&[0]);
        let (h6, m6) = resolve(&mut fast, &w, 6);
        assert_eq!(m6, 0, "non-sender churn leaves every row valid");
        assert_eq!(h6, m0);
    }

    #[test]
    fn fast_medium_empty_slot_is_free() {
        let w = World::new(&small_cfg(5, 1));
        let mut fast = FastMedium::new(5);
        let mut counters = Counters::new();
        fast.resolve(&w, Slot(0), &[], &mut counters, |_, _, _| {
            panic!("nothing to deliver")
        });
        assert_eq!(counters.total_tx(), 0);
    }

    #[test]
    fn services_cover_configured_classes() {
        let mut cfg = small_cfg(200, 2);
        cfg.protocol.service_classes = 4;
        let w = World::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        for s in w.services() {
            assert!(s.0 < 4);
            seen.insert(s.0);
        }
        assert_eq!(seen.len(), 4, "all classes should appear at n=200");
    }
}
