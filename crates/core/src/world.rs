//! The per-trial world and its fast shared medium.
//!
//! [`World`] instantiates one trial of a scenario: the deployment, the
//! composed channel (with all per-link randomness cached), the
//! ground-truth proximity graph of §IV (edges where the long-term PS
//! strength clears the −95 dBm threshold, weighted by that strength) and
//! the per-device service interests.
//!
//! ## Why a second medium implementation
//!
//! `ffd2d_phy::Medium` is the reference resolver: it re-samples the
//! channel per (tx, rx) pair through the full `Channel` stack and is
//! exactly right for protocol-correctness tests. The figure sweeps,
//! however, run populations of up to 1000 devices for tens of thousands
//! of slots — the hot loop is `(transmissions × audible receivers)` per
//! slot. [`FastMedium`] implements the *same* decode/collision/capture
//! semantics against cached mean link powers plus the deterministic
//! fading draw, with epoch-stamped per-receiver accumulators so a slot
//! costs O(candidates) with zero allocation. Equivalence with the
//! reference resolver is pinned by tests in this module.

use rand::Rng;

use ffd2d_phy::codec::{RachCodec, ServiceClass};
use ffd2d_phy::frame::ProximitySignal;
use ffd2d_radio::channel::{Channel, ChannelConfig};
use ffd2d_radio::fading::FadingModel;
use ffd2d_graph::adjacency::WeightedGraph;
use ffd2d_graph::weight::W;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::{Deployment, DeviceId, Meters};
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::Slot;

use crate::scenario::ScenarioConfig;

/// Fading headroom used when precomputing candidate receiver lists: a
/// link whose mean power is below `threshold − margin` is treated as
/// never audible. P(Rayleigh power gain > 9 dB) ≈ 3·10⁻⁴, so the
/// truncation is negligible.
const FADE_MARGIN_DB: f64 = 9.0;

/// One trial's fully-instantiated world.
#[derive(Debug, Clone)]
pub struct World {
    cfg: ScenarioConfig,
    deployment: Deployment,
    /// Row-major `n × n` mean received power in dBm (`NEG_INFINITY` on
    /// the diagonal).
    mean_dbm: Vec<f64>,
    /// Per-device candidate receivers (mean power within fade margin of
    /// the threshold).
    audible: Vec<Vec<DeviceId>>,
    /// Ground-truth §IV proximity graph (long-term links, PS-strength
    /// weights).
    graph: WeightedGraph,
    /// Per-device service interests.
    services: Vec<ServiceClass>,
    fading: FadingModel,
    fading_seed: u64,
    threshold_dbm: f64,
    capture_margin_db: f64,
}

impl World {
    /// Instantiate the world for `cfg` (deterministic in `cfg.sim.seed`).
    pub fn new(cfg: &ScenarioConfig) -> World {
        cfg.validate().expect("invalid scenario");
        let seed = cfg.sim.seed;
        let n = cfg.sim.n_devices;
        let mut dep_rng = StreamRng::new(seed, 0, StreamId::Deployment);
        let deployment = Deployment::uniform(n, cfg.sim.area_width, cfg.sim.area_height, &mut dep_rng);

        // Cache long-term link powers through the reference channel.
        let channel = Channel::new(&deployment, cfg.channel.clone(), seed);
        let threshold_dbm = cfg.channel.detection_threshold.get();
        let mut mean_dbm = vec![f64::NEG_INFINITY; n * n];
        let mut graph = WeightedGraph::new(n);
        let mut audible: Vec<Vec<DeviceId>> = vec![Vec::new(); n];
        for a in 0..n as DeviceId {
            for b in 0..n as DeviceId {
                if a == b {
                    continue;
                }
                let p = channel.mean_rx_power(a, b).get();
                mean_dbm[a as usize * n + b as usize] = p;
                if p >= threshold_dbm - FADE_MARGIN_DB {
                    audible[a as usize].push(b);
                }
                if a < b && p >= threshold_dbm {
                    graph.add_edge(a, b, W::new(p));
                }
            }
        }

        let mut svc_rng = StreamRng::new(seed, 0, StreamId::Services);
        let services = (0..n)
            .map(|_| ServiceClass::new(svc_rng.gen_range(0..cfg.protocol.service_classes)))
            .collect();

        World {
            cfg: cfg.clone(),
            deployment,
            mean_dbm,
            audible,
            graph,
            services,
            fading: cfg.channel.fading,
            fading_seed: seed ^ 0xFAD0,
            threshold_dbm,
            capture_margin_db: 6.0,
        }
    }

    /// Number of devices.
    #[inline]
    pub fn n(&self) -> usize {
        self.deployment.len()
    }

    /// The scenario this world was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Ground-truth proximity graph (edges = long-term audible links,
    /// weights = mean PS strength in dBm).
    pub fn proximity_graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// Per-device service interests.
    pub fn services(&self) -> &[ServiceClass] {
        &self.services
    }

    /// Detection threshold in dBm.
    #[inline]
    pub fn threshold_dbm(&self) -> f64 {
        self.threshold_dbm
    }

    /// Candidate receivers of `tx` (within fade margin).
    #[inline]
    pub fn audible_candidates(&self, tx: DeviceId) -> &[DeviceId] {
        &self.audible[tx as usize]
    }

    /// Long-term mean received power of link `a → b` in dBm.
    #[inline]
    pub fn mean_rx_dbm(&self, a: DeviceId, b: DeviceId) -> f64 {
        self.mean_dbm[a as usize * self.n() + b as usize]
    }

    /// Instantaneous received power (mean + block fading) in dBm.
    #[inline]
    pub fn rx_dbm(&self, a: DeviceId, b: DeviceId, slot: Slot) -> f64 {
        self.mean_rx_dbm(a, b) + self.fading.gain(self.fading_seed, a, b, slot).get()
    }

    /// True distance between two devices.
    pub fn distance(&self, a: DeviceId, b: DeviceId) -> Meters {
        self.deployment.distance(a, b)
    }

    /// The channel config in force.
    pub fn channel_config(&self) -> &ChannelConfig {
        &self.cfg.channel
    }

    /// Rebuild the reference channel (borrowing this world's
    /// deployment) — for tests that cross-check the fast path.
    pub fn reference_channel(&self) -> Channel<'_> {
        Channel::new(&self.deployment, self.cfg.channel.clone(), self.cfg.sim.seed)
    }
}

/// Epoch-stamped slot resolver with the same semantics as
/// [`ffd2d_phy::Medium`]: per receiver and codec, a lone above-threshold
/// signal decodes; several collide unless the strongest beats the
/// runner-up by the capture margin; transmitters are half-duplex deaf.
#[derive(Debug)]
pub struct FastMedium {
    /// Per `(receiver, codec)` accumulator epoch (slot-stamped).
    stamp: Vec<u64>,
    best: Vec<f64>,
    second: Vec<f64>,
    best_tx: Vec<u32>,
    count: Vec<u32>,
    touched: Vec<u32>,
    /// Per-device transmit epoch (half-duplex tracking).
    tx_stamp: Vec<u64>,
    epoch: u64,
}

impl FastMedium {
    /// A resolver for `n` devices.
    pub fn new(n: usize) -> FastMedium {
        FastMedium {
            stamp: vec![0; n * 2],
            best: vec![f64::NEG_INFINITY; n * 2],
            second: vec![f64::NEG_INFINITY; n * 2],
            best_tx: vec![0; n * 2],
            count: vec![0; n * 2],
            touched: Vec::with_capacity(64),
            tx_stamp: vec![0; n],
            epoch: 0,
        }
    }

    #[inline]
    fn codec_index(codec: RachCodec) -> usize {
        match codec {
            RachCodec::Rach1 => 0,
            RachCodec::Rach2 => 1,
        }
    }

    /// Resolve one slot: every decoded `(receiver, signal, rx_dbm)`
    /// triple is fed to `deliver` (the received power is what RSSI
    /// ranging consumes), and `counters` tallies transmissions and
    /// reception outcomes.
    pub fn resolve<F: FnMut(DeviceId, &ProximitySignal, f64)>(
        &mut self,
        world: &World,
        slot: Slot,
        transmissions: &[ProximitySignal],
        counters: &mut Counters,
        mut deliver: F,
    ) {
        if transmissions.is_empty() {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.touched.clear();

        for tx in transmissions {
            match tx.codec() {
                RachCodec::Rach1 => counters.rach1_tx += 1,
                RachCodec::Rach2 => counters.rach2_tx += 1,
            }
            self.tx_stamp[tx.sender as usize] = epoch;
        }

        for (ti, tx) in transmissions.iter().enumerate() {
            let ci = Self::codec_index(tx.codec());
            for &r in world.audible_candidates(tx.sender) {
                if self.tx_stamp[r as usize] == epoch {
                    continue; // half-duplex: transmitting receivers are deaf
                }
                let p = world.rx_dbm(tx.sender, r, slot);
                if p < world.threshold_dbm() {
                    counters.rx_below_threshold += 1;
                    continue;
                }
                let k = r as usize * 2 + ci;
                if self.stamp[k] != epoch {
                    self.stamp[k] = epoch;
                    self.best[k] = f64::NEG_INFINITY;
                    self.second[k] = f64::NEG_INFINITY;
                    self.count[k] = 0;
                    self.touched.push(k as u32);
                }
                self.count[k] += 1;
                if p > self.best[k] {
                    self.second[k] = self.best[k];
                    self.best[k] = p;
                    self.best_tx[k] = ti as u32;
                } else if p > self.second[k] {
                    self.second[k] = p;
                }
            }
        }

        // Deterministic delivery order regardless of tx iteration
        // pattern: sort touched keys.
        self.touched.sort_unstable();
        for i in 0..self.touched.len() {
            let k = self.touched[i] as usize;
            let receiver = (k / 2) as DeviceId;
            let n_signals = self.count[k];
            let decoded = if n_signals == 1 {
                true
            } else {
                self.best[k] >= self.second[k] + world.capture_margin_db
            };
            if decoded {
                counters.rx_ok += 1;
                counters.rx_collision += (n_signals - 1) as u64;
                let sig = transmissions[self.best_tx[k] as usize];
                deliver(receiver, &sig, self.best[k]);
            } else {
                counters.rx_collision += n_signals as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_phy::frame::FrameKind;
    use ffd2d_phy::medium::{Medium, Transmission};
    use ffd2d_sim::time::SlotDuration;

    fn small_cfg(n: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(SlotDuration(1000))
    }

    fn fire(sender: u32) -> ProximitySignal {
        ProximitySignal {
            sender,
            service: ServiceClass::KEEP_ALIVE,
            kind: FrameKind::Fire {
                fragment: sender,
                age: 0,
            },
        }
    }

    #[test]
    fn world_is_deterministic_per_seed() {
        let a = World::new(&small_cfg(20, 7));
        let b = World::new(&small_cfg(20, 7));
        assert_eq!(a.deployment().positions(), b.deployment().positions());
        assert_eq!(a.services(), b.services());
        assert_eq!(a.mean_rx_dbm(0, 1), b.mean_rx_dbm(0, 1));
        let c = World::new(&small_cfg(20, 8));
        assert_ne!(a.deployment().positions(), c.deployment().positions());
    }

    #[test]
    fn mean_power_matches_reference_channel() {
        let w = World::new(&small_cfg(15, 3));
        let ch = w.reference_channel();
        for a in 0..15u32 {
            for b in 0..15u32 {
                if a != b {
                    assert_eq!(w.mean_rx_dbm(a, b), ch.mean_rx_power(a, b).get());
                }
            }
        }
    }

    #[test]
    fn instantaneous_power_matches_reference_channel() {
        let w = World::new(&small_cfg(10, 4));
        let ch = w.reference_channel();
        for slot in [0u64, 7, 35, 1000] {
            for a in 0..10u32 {
                for b in 0..10u32 {
                    if a != b {
                        let fast = w.rx_dbm(a, b, Slot(slot));
                        let reference = ch.rx_power(a, b, Slot(slot)).get();
                        assert!(
                            (fast - reference).abs() < 1e-9,
                            "link {a}->{b} slot {slot}: {fast} vs {reference}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn graph_edges_follow_threshold() {
        let w = World::new(&small_cfg(25, 5));
        let g = w.proximity_graph();
        for a in 0..25u32 {
            for b in (a + 1)..25u32 {
                let linked = w.mean_rx_dbm(a, b) >= w.threshold_dbm();
                assert_eq!(g.has_edge(a, b), linked, "edge {{{a},{b}}}");
                if let Some(wt) = g.weight(a, b) {
                    assert_eq!(wt.get(), w.mean_rx_dbm(a, b));
                }
            }
        }
    }

    #[test]
    fn table1_area_is_fully_connected_without_shadowing() {
        // 89 m nominal range in a 100 m × 100 m area: the ideal-channel
        // proximity graph is (almost surely) connected and dense.
        let cfg = small_cfg(50, 1).ideal_channel();
        let w = World::new(&cfg);
        assert!(ffd2d_graph::connectivity::is_connected(w.proximity_graph()));
        let avg_degree = 2.0 * w.proximity_graph().m() as f64 / 50.0;
        assert!(avg_degree > 30.0, "avg degree {avg_degree}");
    }

    #[test]
    fn fast_medium_agrees_with_reference_medium() {
        // Same transmissions, same slot: identical decode decisions.
        let cfg = small_cfg(30, 11); // includes shadowing + fading
        let w = World::new(&cfg);
        let ch = w.reference_channel();
        let reference = Medium::default();
        let mut fast = FastMedium::new(30);
        let receivers: Vec<u32> = (0..30).collect();

        for slot in [0u64, 3, 21, 40, 77] {
            let txs: Vec<ProximitySignal> =
                vec![fire(slot as u32 % 30), fire((slot as u32 + 7) % 30), fire((slot as u32 + 19) % 30)];
            let transmissions: Vec<Transmission> =
                txs.iter().map(|&s| Transmission::new(s)).collect();

            let mut ref_counters = Counters::new();
            let ref_reports =
                reference.resolve(&ch, Slot(slot), &transmissions, &receivers, &mut ref_counters);
            let mut ref_pairs: Vec<(u32, u32)> = Vec::new();
            for (r, report) in receivers.iter().zip(&ref_reports) {
                for sig in &report.decoded {
                    ref_pairs.push((*r, sig.sender));
                }
            }
            ref_pairs.sort();

            let mut fast_counters = Counters::new();
            let mut fast_pairs: Vec<(u32, u32)> = Vec::new();
            fast.resolve(&w, Slot(slot), &txs, &mut fast_counters, |r, sig, p| {
                assert!(p >= w.threshold_dbm());
                fast_pairs.push((r, sig.sender));
            });
            fast_pairs.sort();

            assert_eq!(fast_pairs, ref_pairs, "slot {slot}");
            assert_eq!(fast_counters.rx_ok, ref_counters.rx_ok, "slot {slot}");
            assert_eq!(fast_counters.total_tx(), ref_counters.total_tx());
        }
    }

    #[test]
    fn fast_medium_empty_slot_is_free() {
        let w = World::new(&small_cfg(5, 1));
        let mut fast = FastMedium::new(5);
        let mut counters = Counters::new();
        fast.resolve(&w, Slot(0), &[], &mut counters, |_, _, _| {
            panic!("nothing to deliver")
        });
        assert_eq!(counters.total_tx(), 0);
    }

    #[test]
    fn services_cover_configured_classes() {
        let mut cfg = small_cfg(200, 2);
        cfg.protocol.service_classes = 4;
        let w = World::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        for s in w.services() {
            assert!(s.0 < 4);
            seen.insert(s.0);
        }
        assert_eq!(seen.len(), 4, "all classes should appear at n=200");
    }
}
