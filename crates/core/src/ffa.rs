//! Algorithm 3 — the firefly metaheuristic (F_F_A) and eq. (13).
//!
//! The paper layers Yang's firefly optimisation algorithm on top of the
//! synchronization machinery: fireflies (devices) carry a position
//! estimate, brightness is an objective `f(x)`, and dimmer fireflies
//! move toward brighter ones with the location update of eq. (13):
//!
//! ```text
//! x_i ← x_i + k·exp(−γ·r_ij²)·(x_j − x_i) + η·μ
//! ```
//!
//! (`k` step toward the better solution, `γ` attraction coefficient,
//! `η·μ` a Gaussian exploration term.)
//!
//! §V's complexity analysis contrasts two inner loops:
//!
//! * [`ffa_naive`] — the textbook double loop: every firefly compares
//!   against every other (`O(n²)` brightness evaluations per sweep,
//!   Algorithm 3 lines 7–12);
//! * [`ffa_ranked`] — the paper's proposal: maintain the fireflies in an
//!   ordered structure ([`BrightnessRanking`]), so each firefly finds
//!   "a brighter firefly than itself" in `O(log n)`, moving toward its
//!   next-brighter neighbour and the global best (`O(n log n)` per
//!   sweep).
//!
//! Both optimise the same objective; the tests check they reach
//! comparable solutions and that the counted comparison work separates
//! asymptotically (the bench `fig_complexity` regenerates the paper's
//! §V claim).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ranking::BrightnessRanking;

/// Parameters of eq. (13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FfaConfig {
    /// Attraction coefficient `γ` (light absorption Υ of Algorithm 3).
    pub gamma: f64,
    /// Step toward the better solution, `k`.
    pub step: f64,
    /// Exploration scale `η`.
    pub eta: f64,
    /// Sweeps over the population.
    pub iterations: u32,
}

impl Default for FfaConfig {
    fn default() -> Self {
        FfaConfig {
            // γ is scaled for arena-sized coordinates (tens of meters):
            // exp(−γ·r²) stays ≈ 0.8 at r = 50 m, so distant brighter
            // fireflies still attract.
            gamma: 1e-4,
            step: 0.5,
            eta: 0.05,
            iterations: 60,
        }
    }
}

/// Outcome of an FFA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FfaResult {
    /// Best position found.
    pub best_position: [f64; 2],
    /// Brightness of the best position.
    pub best_brightness: f64,
    /// Total pairwise brightness comparisons performed — the measured
    /// quantity behind the paper's `O(n²)` vs `O(n log n)` claim.
    pub comparisons: u64,
    /// Total position updates applied.
    pub moves: u64,
}

/// Apply eq. (13): move `xi` toward `xj`.
#[inline]
fn move_toward<R: Rng + ?Sized>(
    xi: [f64; 2],
    xj: [f64; 2],
    cfg: &FfaConfig,
    rng: &mut R,
) -> [f64; 2] {
    let r2 = (xj[0] - xi[0]).powi(2) + (xj[1] - xi[1]).powi(2);
    let attract = cfg.step * (-cfg.gamma * r2).exp();
    [
        xi[0] + attract * (xj[0] - xi[0]) + cfg.eta * gaussian(rng),
        xi[1] + attract * (xj[1] - xi[1]) + cfg.eta * gaussian(rng),
    ]
}

/// One standard-normal draw (Box–Muller on two uniforms).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

fn best_of<F: Fn([f64; 2]) -> f64>(positions: &[[f64; 2]], f: &F) -> ([f64; 2], f64) {
    let mut best = positions[0];
    let mut best_b = f(best);
    for &p in &positions[1..] {
        let b = f(p);
        if b > best_b {
            best = p;
            best_b = b;
        }
    }
    (best, best_b)
}

/// The textbook `O(n²)` firefly algorithm (Algorithm 3 as written:
/// nested loops over all pairs).
pub fn ffa_naive<F, R>(
    positions: &mut [[f64; 2]],
    objective: F,
    cfg: &FfaConfig,
    rng: &mut R,
) -> FfaResult
where
    F: Fn([f64; 2]) -> f64,
    R: Rng + ?Sized,
{
    assert!(!positions.is_empty(), "need at least one firefly");
    let n = positions.len();
    let mut comparisons = 0u64;
    let mut moves = 0u64;
    let mut brightness: Vec<f64> = positions.iter().map(|&p| objective(p)).collect();

    for _ in 0..cfg.iterations {
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                comparisons += 1;
                // "if I_j > I_i: move D_i toward D_j" (Algorithm 3).
                if brightness[j] > brightness[i] {
                    positions[i] = move_toward(positions[i], positions[j], cfg, rng);
                    brightness[i] = objective(positions[i]);
                    moves += 1;
                }
            }
        }
    }
    let (best_position, best_brightness) = best_of(positions, &objective);
    FfaResult {
        best_position,
        best_brightness,
        comparisons,
        moves,
    }
}

/// The paper's rank-ordered variant: sort the population once per sweep
/// (`O(n log n)`), then each firefly moves toward its next-brighter
/// neighbour in the order and toward the global best — `O(1)` moves per
/// firefly, `O(log n)` search work, no `O(n)` inner scan.
pub fn ffa_ranked<F, R>(
    positions: &mut [[f64; 2]],
    objective: F,
    cfg: &FfaConfig,
    rng: &mut R,
) -> FfaResult
where
    F: Fn([f64; 2]) -> f64,
    R: Rng + ?Sized,
{
    assert!(!positions.is_empty(), "need at least one firefly");
    let n = positions.len();
    let mut comparisons = 0u64;
    let mut moves = 0u64;
    let mut brightness: Vec<f64> = positions.iter().map(|&p| objective(p)).collect();

    for _ in 0..cfg.iterations {
        let ranking = BrightnessRanking::build(&brightness);
        // Account the sort as n·log2(n) comparisons (what the paper's
        // "sorting algorithm [23]" costs per sweep).
        let log2n = (usize::BITS - n.leading_zeros()).max(1) as u64;
        comparisons += n as u64 * log2n;
        let global_best = ranking.brightest().expect("non-empty population");

        for i in 0..n as u32 {
            // O(log n)-style search for a brighter firefly.
            let mut search_cmps = 0u64;
            let _ = ranking.search_rank(brightness[i as usize], &mut search_cmps);
            comparisons += search_cmps;
            if let Some(j) = ranking.next_brighter(i) {
                positions[i as usize] =
                    move_toward(positions[i as usize], positions[j as usize], cfg, rng);
                moves += 1;
                if j != global_best {
                    positions[i as usize] = move_toward(
                        positions[i as usize],
                        positions[global_best as usize],
                        cfg,
                        rng,
                    );
                    moves += 1;
                }
                brightness[i as usize] = objective(positions[i as usize]);
            }
        }
    }
    let (best_position, best_brightness) = best_of(positions, &objective);
    FfaResult {
        best_position,
        best_brightness,
        comparisons,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    type Rng64 = ffd2d_sim::rng::Xoshiro256StarStar;

    /// Maximise the negative sphere: optimum at (3, −2).
    fn sphere(p: [f64; 2]) -> f64 {
        -((p[0] - 3.0).powi(2) + (p[1] + 2.0).powi(2))
    }

    fn population(n: usize, seed: u64) -> Vec<[f64; 2]> {
        use rand::Rng;
        let mut rng = Rng64::seed_from_u64(seed);
        (0..n)
            .map(|_| [rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)])
            .collect()
    }

    #[test]
    fn naive_converges_toward_optimum() {
        let mut pop = population(30, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let res = ffa_naive(&mut pop, sphere, &FfaConfig::default(), &mut rng);
        assert!(
            res.best_brightness > -2.0,
            "best {:?} brightness {}",
            res.best_position,
            res.best_brightness
        );
        assert!(res.moves > 0);
    }

    #[test]
    fn ranked_converges_toward_optimum() {
        let mut pop = population(30, 1);
        let mut rng = Rng64::seed_from_u64(2);
        let res = ffa_ranked(&mut pop, sphere, &FfaConfig::default(), &mut rng);
        assert!(
            res.best_brightness > -2.0,
            "best {:?} brightness {}",
            res.best_position,
            res.best_brightness
        );
    }

    #[test]
    fn comparison_counts_separate_asymptotically() {
        // The measured §V claim: naive grows ~n², ranked ~n log n.
        let cfg = FfaConfig {
            iterations: 3,
            ..FfaConfig::default()
        };
        let count = |n: usize, ranked: bool| -> u64 {
            let mut pop = population(n, 5);
            let mut rng = Rng64::seed_from_u64(6);
            if ranked {
                ffa_ranked(&mut pop, sphere, &cfg, &mut rng).comparisons
            } else {
                ffa_naive(&mut pop, sphere, &cfg, &mut rng).comparisons
            }
        };
        let (naive_200, naive_800) = (count(200, false), count(800, false));
        let (ranked_200, ranked_800) = (count(200, true), count(800, true));
        // Naive: 4× population → ~16× comparisons.
        let naive_ratio = naive_800 as f64 / naive_200 as f64;
        assert!(
            naive_ratio > 12.0,
            "naive ratio {naive_ratio} not quadratic"
        );
        // Ranked: 4× population → a bit over 4× (n log n).
        let ranked_ratio = ranked_800 as f64 / ranked_200 as f64;
        assert!(
            ranked_ratio < 6.5,
            "ranked ratio {ranked_ratio} not n log n"
        );
        // And ranked does far less total work at n = 800.
        assert!(ranked_800 * 10 < naive_800);
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let run = || {
            let mut pop = population(20, 9);
            let mut rng = Rng64::seed_from_u64(10);
            ffa_ranked(&mut pop, sphere, &FfaConfig::default(), &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn eq13_pulls_toward_brighter() {
        // With η = 0 the move is a pure contraction toward x_j.
        let cfg = FfaConfig {
            eta: 0.0,
            step: 0.5,
            gamma: 0.0,
            iterations: 1,
        };
        let mut rng = Rng64::seed_from_u64(1);
        let moved = move_toward([0.0, 0.0], [10.0, 0.0], &cfg, &mut rng);
        assert!((moved[0] - 5.0).abs() < 1e-12);
        assert_eq!(moved[1], 0.0);
    }

    #[test]
    fn attraction_decays_with_distance() {
        // γ > 0: a distant brighter firefly attracts less (eq. (13)'s
        // exp(−γ r²) factor).
        let cfg = FfaConfig {
            eta: 0.0,
            step: 0.5,
            gamma: 0.1,
            iterations: 1,
        };
        let mut rng = Rng64::seed_from_u64(1);
        let near = move_toward([0.0, 0.0], [1.0, 0.0], &cfg, &mut rng)[0] / 1.0;
        let far = move_toward([0.0, 0.0], [10.0, 0.0], &cfg, &mut rng)[0] / 10.0;
        assert!(near > far, "near pull {near} vs far pull {far}");
    }

    #[test]
    #[should_panic(expected = "at least one firefly")]
    fn empty_population_rejected() {
        let mut rng = Rng64::seed_from_u64(1);
        let _ = ffa_naive(&mut [], sphere, &FfaConfig::default(), &mut rng);
    }
}
