//! Scenario configuration — the full Table I plus protocol knobs.
//!
//! A [`ScenarioConfig`] assembles the three configuration layers of the
//! workspace: deployment ([`SimConfig`]), radio ([`ChannelConfig`]) and
//! the protocol parameters of §III–IV ([`ProtocolConfig`]). The
//! defaults reproduce the paper's Table I exactly; the builders cover
//! the sweeps of Figs. 3–4 and the ablations.

use serde::{Deserialize, Serialize};

pub use ffd2d_chaos::FaultPlan;
pub use ffd2d_parallel::Parallelism;
use ffd2d_phy::codec::ServiceClass;
use ffd2d_radio::channel::ChannelConfig;
use ffd2d_sim::config::SimConfig;
use ffd2d_sim::time::SlotDuration;

/// Protocol parameters (§III–IV).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Oscillator natural period `T` in slots (eq. (3)).
    pub period_slots: u32,
    /// Post-fire refractory (deaf) window in slots.
    pub refractory_slots: u32,
    /// Dissipation factor `a` of eq. (5).
    pub dissipation: f64,
    /// Pulse coupling strength `ε` of eq. (5).
    pub coupling: f64,
    /// Discovery phase length, in oscillator periods: devices free-run
    /// and listen before the first merge round.
    pub discovery_periods: u32,
    /// RACH2 handshake contention window, in slots (Algorithm 2's
    /// broadcast/await loop).
    pub handshake_window: u32,
    /// Handshake retries within one merge round before the fragment
    /// skips the round.
    pub handshake_retries: u32,
    /// Number of distinct service interests assigned uniformly to
    /// devices (application-level discovery).
    pub service_classes: u8,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            period_slots: 100,
            refractory_slots: 12,
            dissipation: 3.0,
            coupling: 0.1,
            discovery_periods: 3,
            handshake_window: 16,
            handshake_retries: 3,
            service_classes: 4,
        }
    }
}

impl ProtocolConfig {
    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.period_slots == 0 {
            return Err("period must be positive".into());
        }
        if self.refractory_slots >= self.period_slots {
            return Err("refractory must be shorter than the period".into());
        }
        if self.dissipation <= 0.0 || self.coupling <= 0.0 {
            return Err("PRC requires a > 0 and ε > 0 (Mirollo–Strogatz)".into());
        }
        if self.discovery_periods == 0 {
            return Err("need at least one discovery period".into());
        }
        if self.handshake_window == 0 {
            return Err("handshake window must be positive".into());
        }
        if self.service_classes == 0 || self.service_classes > ServiceClass::COUNT {
            return Err(format!(
                "service classes must be in 1..={}",
                ServiceClass::COUNT
            ));
        }
        Ok(())
    }
}

/// Execution strategy for the protocol engines.
///
/// All modes produce **bit-identical** outcomes (locked down by
/// `tests/engine_equivalence.rs`); the choice is purely about wall
/// clock. Tracing sinks need per-slot statistics, so a traced run
/// always materializes every slot regardless of this setting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// Materialize every slot of the horizon (the reference loop).
    Stepped,
    /// Jump between wake-up slots (fires, deadlines, deliveries) via a
    /// coalescing slot wheel, fast-forwarding the idle stretches.
    EventDriven,
    /// Track the wake-up density over a sliding window and switch
    /// between stepped and event-driven execution per window, with
    /// hysteresis: dense cells (where someone always fires next slot)
    /// run the cheap stepped loop, sparse arenas keep the event
    /// engine's skip-ahead. The cutover decision is a pure function of
    /// already-counted scheduler state — never timing or RNG — so
    /// adaptive runs replay bit-identically.
    #[default]
    Adaptive,
}

impl EngineMode {
    /// Parse a `--engine` flag value (`stepped` / `event` /
    /// `adaptive`).
    pub fn from_flag(flag: &str) -> Option<EngineMode> {
        match flag {
            "stepped" => Some(EngineMode::Stepped),
            "event" | "event-driven" => Some(EngineMode::EventDriven),
            "adaptive" => Some(EngineMode::Adaptive),
            _ => None,
        }
    }
}

/// Link-state caching strategy for the fast medium.
///
/// Both modes produce **bit-identical** outcomes (locked down by
/// `tests/gain_cache.rs`): mean link gains are pure functions of device
/// positions, fading remains the only per-slot keyed draw, and the
/// cache is flushed whenever the world's mobility epoch or the
/// engine's churn generation moves — so the choice is purely about
/// wall clock (and memory: the cache holds one `f64` per cached
/// directed (sender, cell-occupant) pair).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GainCacheMode {
    /// Memoise mean link gains per (sender, grid cell) row, keyed by
    /// the mobility epoch, reused across every slot of the epoch.
    #[default]
    Epoch,
    /// Recompute path loss + shadowing for every candidate pair, every
    /// slot (the reference behaviour; benches use it as the baseline).
    Off,
}

impl GainCacheMode {
    /// Parse a `--gain-cache` flag value (`epoch` / `off`).
    pub fn from_flag(flag: &str) -> Option<GainCacheMode> {
        match flag {
            "epoch" | "on" => Some(GainCacheMode::Epoch),
            "off" => Some(GainCacheMode::Off),
            _ => None,
        }
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Deployment layer (devices, area, horizon, master seed).
    pub sim: SimConfig,
    /// Radio layer (powers, path loss, shadowing, fading).
    pub channel: ChannelConfig,
    /// Protocol layer (oscillator, PRC, merge machinery).
    pub protocol: ProtocolConfig,
    /// Engine execution strategy (outcome-neutral; see [`EngineMode`]).
    pub engine: EngineMode,
    /// Intra-run sharding of per-slot medium resolution
    /// (outcome-neutral; see [`Parallelism`]). `Off` by default: sweeps
    /// parallelize across trials and a second layer would oversubscribe
    /// the cores; single-run workloads (trace replays, benches,
    /// `--trials 1`) turn it on.
    pub parallelism: Parallelism,
    /// Fault-injection and churn schedule ([`FaultPlan::none`] by
    /// default — and then provably outcome-neutral, locked by
    /// `tests/chaos.rs`).
    pub faults: FaultPlan,
    /// Link-state caching strategy for the fast medium
    /// (outcome-neutral; see [`GainCacheMode`]). `Epoch` by default.
    pub gain_cache: GainCacheMode,
}

impl ScenarioConfig {
    /// The paper's Table I with `n` devices in the fixed
    /// 100 m × 100 m area (the Figs. 3–4 sweep keeps the area and scales
    /// the population).
    pub fn table1(n: usize) -> ScenarioConfig {
        ScenarioConfig {
            sim: SimConfig::with_devices(n),
            channel: ChannelConfig::default(),
            protocol: ProtocolConfig::default(),
            engine: EngineMode::default(),
            parallelism: Parallelism::default(),
            faults: FaultPlan::none(),
            gain_cache: GainCacheMode::default(),
        }
    }

    /// Builder: override the master seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Builder: override the simulation horizon.
    pub fn with_max_slots(mut self, max: SlotDuration) -> Self {
        self.sim.max_slots = max;
        self
    }

    /// Builder: idealise the channel (no shadowing, no fading) —
    /// used by tests and complexity benches.
    pub fn ideal_channel(mut self) -> Self {
        self.channel = ChannelConfig::ideal();
        self
    }

    /// Builder: override shadowing σ (ablation A1).
    pub fn with_shadowing(mut self, sigma_db: f64) -> Self {
        self.channel.shadowing_sigma_db = sigma_db;
        self
    }

    /// Builder: override coupling strength ε (ablation A2).
    pub fn with_coupling(mut self, epsilon: f64) -> Self {
        self.protocol.coupling = epsilon;
        self
    }

    /// Builder: select the engine execution strategy.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Builder: select the intra-run medium parallelism (outcome
    /// neutral; see [`Parallelism`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder: attach a fault-injection / churn schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: select the fast medium's link-state caching strategy
    /// (outcome neutral; see [`GainCacheMode`]).
    pub fn with_gain_cache(mut self, mode: GainCacheMode) -> Self {
        self.gain_cache = mode;
        self
    }

    /// Validate all layers.
    pub fn validate(&self) -> Result<(), String> {
        self.sim.validate()?;
        self.protocol.validate()?;
        if self.channel.shadowing_sigma_db < 0.0 {
            return Err("shadowing sigma must be non-negative".into());
        }
        self.faults.validate(
            self.sim.n_devices,
            self.protocol.period_slots,
            self.protocol.refractory_slots,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = ScenarioConfig::table1(50);
        assert_eq!(c.sim.n_devices, 50);
        assert_eq!(c.channel.tx_power.get(), 23.0);
        assert_eq!(c.channel.detection_threshold.get(), -95.0);
        assert_eq!(c.channel.shadowing_sigma_db, 10.0);
        assert_eq!(c.protocol.period_slots, 100);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders() {
        let c = ScenarioConfig::table1(100)
            .seeded(9)
            .ideal_channel()
            .with_coupling(0.1)
            .with_max_slots(SlotDuration(5));
        assert_eq!(c.sim.seed, 9);
        assert_eq!(c.channel.shadowing_sigma_db, 0.0);
        assert_eq!(c.protocol.coupling, 0.1);
        assert_eq!(c.sim.max_slots, SlotDuration(5));
    }

    #[test]
    fn validation_rejects_bad_protocol() {
        let mut c = ScenarioConfig::table1(10);
        c.protocol.refractory_slots = 100;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::table1(10);
        c.protocol.coupling = 0.0;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::table1(10);
        c.protocol.service_classes = 0;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::table1(10);
        c.protocol.discovery_periods = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn engine_mode_defaults_to_adaptive() {
        assert_eq!(ScenarioConfig::table1(10).engine, EngineMode::Adaptive);
        let c = ScenarioConfig::table1(10).with_engine(EngineMode::Stepped);
        assert_eq!(c.engine, EngineMode::Stepped);
        assert_eq!(EngineMode::from_flag("stepped"), Some(EngineMode::Stepped));
        assert_eq!(
            EngineMode::from_flag("event"),
            Some(EngineMode::EventDriven)
        );
        assert_eq!(
            EngineMode::from_flag("adaptive"),
            Some(EngineMode::Adaptive)
        );
        assert_eq!(EngineMode::from_flag("bogus"), None);
    }

    #[test]
    fn parallelism_defaults_to_off() {
        assert_eq!(ScenarioConfig::table1(10).parallelism, Parallelism::Off);
        let c = ScenarioConfig::table1(10).with_parallelism(Parallelism::Fixed(4));
        assert_eq!(c.parallelism, Parallelism::Fixed(4));
        assert!(c.validate().is_ok());
        assert_eq!(Parallelism::from_flag("auto"), Some(Parallelism::Auto));
    }

    #[test]
    fn gain_cache_defaults_to_epoch() {
        assert_eq!(ScenarioConfig::table1(10).gain_cache, GainCacheMode::Epoch);
        let c = ScenarioConfig::table1(10).with_gain_cache(GainCacheMode::Off);
        assert_eq!(c.gain_cache, GainCacheMode::Off);
        assert!(c.validate().is_ok());
        assert_eq!(
            GainCacheMode::from_flag("epoch"),
            Some(GainCacheMode::Epoch)
        );
        assert_eq!(GainCacheMode::from_flag("off"), Some(GainCacheMode::Off));
        assert_eq!(GainCacheMode::from_flag("bogus"), None);
    }

    #[test]
    fn faults_default_to_none_and_validate() {
        let c = ScenarioConfig::table1(10);
        assert!(c.faults.is_none());
        assert!(c.validate().is_ok());

        let mut plan = FaultPlan::none();
        plan.drop_prob = 0.5;
        let c = ScenarioConfig::table1(10).with_faults(plan);
        assert!(!c.faults.is_none());
        assert!(c.validate().is_ok());

        // Fault plans referencing devices outside the population fail.
        let bad = FaultPlan {
            churn: vec![ffd2d_chaos::ChurnEvent {
                slot: 1,
                device: 99,
                kind: ffd2d_chaos::ChurnKind::Leave,
            }],
            ..FaultPlan::none()
        };
        assert!(ScenarioConfig::table1(10)
            .with_faults(bad)
            .validate()
            .is_err());
    }

    #[test]
    fn validation_rejects_negative_shadowing() {
        let mut c = ScenarioConfig::table1(10);
        c.channel.shadowing_sigma_db = -1.0;
        assert!(c.validate().is_err());
    }
}
