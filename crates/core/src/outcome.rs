//! Measured outcome of one protocol run.
//!
//! [`RunOutcome`] is the common currency between the protocol engines
//! (ST here, FST in `ffd2d-baseline`) and the experiment harness: the
//! two quantities the paper plots (convergence time for Fig. 3, message
//! exchanges for Fig. 4) plus the diagnostics the tests and ablations
//! assert on.

use serde::{Deserialize, Serialize};

use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::DeviceId;
use ffd2d_sim::time::SlotDuration;

/// What one trial produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Slots from trial start until every device fired in one slot
    /// (`None` = horizon reached without convergence).
    pub convergence_time: Option<SlotDuration>,
    /// Transmission/reception tallies (Fig. 4 plots `total_tx`).
    pub counters: Counters,
    /// Accepted spanning-tree edges (empty for the mesh baseline).
    pub tree_edges: Vec<(DeviceId, DeviceId)>,
    /// Merge rounds executed (0 for the baseline).
    pub merge_rounds: u32,
    /// Directed neighbour-table entries established during the run.
    pub discovered_links: u64,
    /// Directed ground-truth audible links (denominator for discovery
    /// completeness).
    pub ground_truth_links: u64,
    /// Directed same-service neighbour pairs discovered.
    pub service_matches: u64,
    /// Devices in the trial.
    pub n_devices: usize,
    /// Slots from the last discrete fault (final churn event or droop
    /// window end) until the population converged again. `None` when
    /// the scenario had no discrete faults, or when the run never
    /// re-converged after the last one.
    pub reconvergence_time: Option<SlotDuration>,
    /// Tree fragments orphaned by departures: every leave that removes
    /// a tree node splits its former neighbours into components, and
    /// each component beyond the first counts as one orphaned fragment.
    pub orphaned_fragments: u32,
}

impl RunOutcome {
    /// Did the trial converge within the horizon?
    pub fn converged(&self) -> bool {
        self.convergence_time.is_some()
    }

    /// Convergence time in slots, with the horizon substituted when the
    /// trial did not converge — the censored metric plotted in Fig. 3.
    pub fn time_or(&self, horizon: SlotDuration) -> SlotDuration {
        self.convergence_time.unwrap_or(horizon)
    }

    /// Fraction of ground-truth audible links discovered (`1.0` when
    /// there were none to discover).
    pub fn discovery_completeness(&self) -> f64 {
        if self.ground_truth_links == 0 {
            1.0
        } else {
            self.discovered_links as f64 / self.ground_truth_links as f64
        }
    }

    /// Total control messages transmitted (the Fig. 4 metric).
    pub fn messages(&self) -> u64 {
        self.counters.total_tx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(time: Option<u64>) -> RunOutcome {
        RunOutcome {
            convergence_time: time.map(SlotDuration),
            counters: Counters::new(),
            tree_edges: vec![],
            merge_rounds: 0,
            discovered_links: 30,
            ground_truth_links: 40,
            service_matches: 3,
            n_devices: 10,
            reconvergence_time: None,
            orphaned_fragments: 0,
        }
    }

    #[test]
    fn fault_metrics_default_to_quiet() {
        let o = outcome(Some(5));
        assert_eq!(o.reconvergence_time, None);
        assert_eq!(o.orphaned_fragments, 0);
        assert_eq!(o.counters.fault_dropped_frames, 0);
    }

    #[test]
    fn convergence_flags() {
        assert!(outcome(Some(500)).converged());
        assert!(!outcome(None).converged());
    }

    #[test]
    fn censored_time() {
        let horizon = SlotDuration(99_999);
        assert_eq!(outcome(Some(500)).time_or(horizon), SlotDuration(500));
        assert_eq!(outcome(None).time_or(horizon), horizon);
    }

    #[test]
    fn completeness_ratio() {
        assert!((outcome(None).discovery_completeness() - 0.75).abs() < 1e-12);
        let mut o = outcome(None);
        o.ground_truth_links = 0;
        assert_eq!(o.discovery_completeness(), 1.0);
    }

    #[test]
    fn messages_mirror_counters() {
        let mut o = outcome(Some(1));
        o.counters.rach1_tx = 5;
        o.counters.rach2_tx = 2;
        o.counters.unicast_tx = 3;
        assert_eq!(o.messages(), 10);
    }
}
