//! # ffd2d-core — the paper's contribution
//!
//! The proposed **ST method** of Pratap & Misra (IPDPSW 2015): a
//! distributed, firefly-inspired algorithm that performs neighbour
//! discovery, service discovery and slot synchronization simultaneously
//! for D2D devices, organised over a maximum-PS-strength spanning tree
//! built GHS/Borůvka-style with RSSI-ranged edge weights.
//!
//! The crate has three layers:
//!
//! 1. **Sequential reference** ([`reference`], [`ffa`], [`ranking`]) —
//!    Algorithms 1–3 exactly as written: fragment merging over heavy
//!    edges ([`reference::build_spanning_tree`]), the `H_Connect`
//!    predicate, and the firefly metaheuristic (Algorithm 3 /
//!    eq. (13)) in both its naive `O(n²)` form and the proposed
//!    rank-ordered `O(n log n)` form. These pin down *what* the
//!    distributed protocol must compute.
//! 2. **Distributed engine** ([`world`], [`device`], [`discovery`],
//!    [`st_protocol`]) — the slot-driven protocol: proximity-signal
//!    broadcasts through the collision medium, RSSI ranging, per-device
//!    neighbour tables, convergecast/merge/flood rounds on the RACH1 /
//!    RACH2 codec pair, and pulse-coupled synchronization along tree
//!    edges.
//! 3. **Scenario plumbing** ([`scenario`], [`outcome`]) — Table-I
//!    configuration and the measured outcome of a run (convergence
//!    time, message counts, tree quality, service-discovery yield).
//!
//! ```
//! use ffd2d_core::{ScenarioConfig, StProtocol};
//! use ffd2d_sim::time::SlotDuration;
//!
//! let cfg = ScenarioConfig::table1(20).seeded(1).with_max_slots(SlotDuration(100_000));
//! let out = StProtocol::run(&cfg);
//! assert!(out.converged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod discovery;
pub mod ffa;
pub mod outcome;
pub mod ranking;
pub mod reference;
pub mod scenario;
pub mod st_protocol;
pub mod world;

pub use discovery::NeighborTable;
pub use outcome::RunOutcome;
pub use scenario::{
    EngineMode, FaultPlan, GainCacheMode, Parallelism, ProtocolConfig, ScenarioConfig,
};
pub use st_protocol::StProtocol;
pub use world::World;
