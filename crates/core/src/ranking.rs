//! Ordered brightness ranking — the `O(log n)` search structure.
//!
//! §V's complexity argument: the basic firefly algorithm is `O(n²)`
//! because every firefly scans all others for brighter ones; the paper
//! instead keeps the fireflies in an *ordered tree structure* so that
//! "searching in firefly for more brightness than current firefly will
//! take O(log n) time". [`BrightnessRanking`] is that structure: a
//! sorted index over (brightness, id) supporting
//!
//! * `O(n log n)` (re)construction per sweep,
//! * `O(log n)` *next-brighter* queries, and
//! * `O(log n)` global-best queries (last element),
//!
//! with every comparison counted so the complexity claim is measurable
//! (see `ffd2d-bench`).

/// A sorted index over firefly brightness.
#[derive(Debug, Clone, Default)]
pub struct BrightnessRanking {
    /// `(brightness, id)` sorted ascending; ids break ties so the order
    /// is total and deterministic.
    sorted: Vec<(f64, u32)>,
    /// Position of each id in `sorted`.
    rank_of: Vec<u32>,
}

impl BrightnessRanking {
    /// Build the ranking from per-firefly brightness values.
    ///
    /// # Panics
    ///
    /// On NaN brightness.
    pub fn build(brightness: &[f64]) -> BrightnessRanking {
        let mut sorted: Vec<(f64, u32)> = brightness
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                assert!(!b.is_nan(), "NaN brightness for firefly {i}");
                (b, i as u32)
            })
            .collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut rank_of = vec![0u32; brightness.len()];
        for (rank, &(_, id)) in sorted.iter().enumerate() {
            rank_of[id as usize] = rank as u32;
        }
        BrightnessRanking { sorted, rank_of }
    }

    /// Number of fireflies.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the ranking is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Rank of firefly `id` (0 = dimmest).
    #[inline]
    pub fn rank(&self, id: u32) -> usize {
        self.rank_of[id as usize] as usize
    }

    /// The immediately-brighter firefly than `id`, if any —
    /// the `O(log n)`-style search the paper replaces the inner loop
    /// with. (With the rank array the lookup is O(1) after the
    /// `O(n log n)` sort; the *sort* is where the `log n` lives.)
    pub fn next_brighter(&self, id: u32) -> Option<u32> {
        let r = self.rank(id);
        self.sorted.get(r + 1).map(|&(_, j)| j)
    }

    /// The brightest firefly (`None` when empty).
    pub fn brightest(&self) -> Option<u32> {
        self.sorted.last().map(|&(_, id)| id)
    }

    /// Fireflies in ascending brightness order.
    pub fn ascending(&self) -> impl Iterator<Item = u32> + '_ {
        self.sorted.iter().map(|&(_, id)| id)
    }

    /// Binary-search the rank a brightness value would insert at,
    /// counting comparisons into `comparisons`. Exposed so the
    /// complexity benches can measure the claimed `O(log n)`.
    pub fn search_rank(&self, brightness: f64, comparisons: &mut u64) -> usize {
        let mut lo = 0usize;
        let mut hi = self.sorted.len();
        while lo < hi {
            *comparisons += 1;
            let mid = (lo + hi) / 2;
            if self.sorted[mid].0 < brightness {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_consistent() {
        let b = vec![3.0, 1.0, 2.0, 5.0];
        let r = BrightnessRanking::build(&b);
        assert_eq!(r.len(), 4);
        assert_eq!(r.rank(1), 0);
        assert_eq!(r.rank(2), 1);
        assert_eq!(r.rank(0), 2);
        assert_eq!(r.rank(3), 3);
        assert_eq!(r.brightest(), Some(3));
    }

    #[test]
    fn next_brighter_chain() {
        let b = vec![3.0, 1.0, 2.0, 5.0];
        let r = BrightnessRanking::build(&b);
        assert_eq!(r.next_brighter(1), Some(2));
        assert_eq!(r.next_brighter(2), Some(0));
        assert_eq!(r.next_brighter(0), Some(3));
        assert_eq!(r.next_brighter(3), None, "brightest has no brighter");
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        let b = vec![1.0, 1.0, 1.0];
        let r = BrightnessRanking::build(&b);
        let order: Vec<u32> = r.ascending().collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(r.next_brighter(0), Some(1));
        assert_eq!(r.next_brighter(2), None);
    }

    #[test]
    fn search_rank_is_logarithmic() {
        let n = 1 << 14;
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let r = BrightnessRanking::build(&b);
        let mut comparisons = 0;
        let rank = r.search_rank(12345.5, &mut comparisons);
        assert_eq!(rank, 12346);
        assert!(comparisons <= 15, "comparisons {comparisons} > log2(n)+1");
    }

    #[test]
    fn empty_ranking() {
        let r = BrightnessRanking::build(&[]);
        assert!(r.is_empty());
        assert_eq!(r.brightest(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = BrightnessRanking::build(&[1.0, f64::NAN]);
    }
}
