//! The distributed ST protocol — Algorithms 1–3 as an event-driven,
//! slot-accurate protocol engine.
//!
//! One trial proceeds through three phases:
//!
//! 1. **Discovery** (`discovery_periods` oscillator periods): devices
//!    free-run and fire proximity signals on RACH1. Every decoded PS
//!    feeds the RSSI neighbour table (§III: neighbour + service
//!    discovery from passive listening — the ranging model is what lets
//!    the ST method skip pairwise discovery handshakes).
//! 2. **Merge** (Algorithm 1/2): GHS/Borůvka rounds paced on the slot
//!    grid. Per round, each fragment convergecasts its members' best
//!    outgoing edges to the head (`Initiate` down, `Report` up — one
//!    unicast per member each way), the head routes a `MergeCmd` to the
//!    boundary device, and the boundary runs the `H_Connect` handshake
//!    of Algorithm 2 as RACH2 broadcasts through the collision medium
//!    (random offset in a contention window, retries with backoff).
//!    Non-mutual connects are authorised by the target fragment's head
//!    (grant round-trip on the tree), which pins *at most one merge per
//!    fragment per round* — exactly the pairwise-merge discipline that
//!    keeps fragment labels consistent. Committed merges adopt the
//!    larger fragment's head (Algorithm 1's `Merge Sub Tree`) and flood
//!    the new identity through the losing side.
//! 3. **Sync**: pulse coupling (eq. (5)) along tree edges only.
//!    Convergence is declared in the first slot where *every* device
//!    fires (same-slot absorption cascades included).
//!
//! ## Modelling notes (documented deviations)
//!
//! * Tree-internal unicasts (`Initiate`/`Report`/`MergeCmd`/grants/
//!   floods) ride *scheduled* LTE-A uplink resources — delivered
//!   reliably with one-slot latency and **counted**, but not subject to
//!   RACH contention. Contention applies to everything broadcast:
//!   fires (RACH1) and `H_Connect`/`H_Accept` handshakes (RACH2).
//! * Round boundaries are paced on the common subframe clock that the
//!   cellular underlay provides (network-assisted D2D); the pace adapts
//!   to the current maximum fragment depth.
//! * Lost `H_Accept`s are healed by idempotent re-accepts and by
//!   adopting tree links implied by received floods.

use rand::Rng;
use std::collections::BTreeMap;

use ffd2d_chaos::{ChurnEvent, ChurnKind, FaultPlan, FrameFate};
use ffd2d_osc::prc::Prc;
use ffd2d_osc::predict::{Cursor, TrajectoryCache};
use ffd2d_phy::frame::{FrameKind, ProximitySignal};
use ffd2d_radio::units::Dbm;
use ffd2d_sim::counters::Counters;
use ffd2d_sim::deployment::DeviceId;
use ffd2d_sim::event::{DensityWindow, SlotWheel};
use ffd2d_sim::rng::{StreamId, StreamRng};
use ffd2d_sim::time::{Slot, SlotDuration};
use ffd2d_telemetry::{NullRecorder, Recorder};
use ffd2d_trace::{
    Codec, FaultKind, FrameLabel, NullSink, ProtoPhase, RejectReason, TraceEvent, TraceSink,
};

use crate::device::{CouplingMode, Device};
use crate::discovery::NeighborTable;
use crate::outcome::RunOutcome;
use crate::scenario::{EngineMode, ScenarioConfig};
use crate::world::{FastMedium, World};

/// Sentinel for "no device".
const NONE: DeviceId = DeviceId::MAX;
/// Slots a boundary waits for an `H_Accept` before retransmitting.
const HANDSHAKE_TIMEOUT: u64 = 8;
/// Firing transmissions are staggered uniformly over this many slots
/// (RFA-style jitter); the offset is stamped into the frame's `age`
/// field so receivers couple as if the pulse were instantaneous.
const FIRE_JITTER: u64 = 8;
/// Ring size of the pending-fire queue (must exceed `FIRE_JITTER`).
const FIRE_RING: usize = 16;
/// Convergence is probed at this slot interval during the sync phase.
const SYNC_CHECK_INTERVAL: u64 = 16;
/// `age` sentinel marking a keep-alive beacon (not a timing pulse):
/// beacons refresh neighbour tables without coupling oscillators.
const BEACON_AGE: u8 = u8::MAX;
/// Neighbour-table entries older than this many periods are not trusted
/// for merge proposals (their fragment label may be stale).
const FRESHNESS_PERIODS: u64 = 5;
/// Hop budget for tree-routed grant messages (far above any real
/// fragment depth; reached only by pathological routing loops).
const GRANT_TTL: u8 = 200;

/// The proposed tree-based firefly protocol.
pub struct StProtocol;

impl StProtocol {
    /// Run one trial of the scenario.
    pub fn run(cfg: &ScenarioConfig) -> RunOutcome {
        Self::run_traced(cfg, &mut NullSink)
    }

    /// Run one trial, reporting protocol events to `sink`. Tracing is
    /// strictly observational: it consumes no randomness and touches no
    /// protocol state, so the outcome is bit-identical to an untraced
    /// run (pinned by the `trace` integration tests), and with
    /// [`NullSink`] the emission sites compile out entirely.
    pub fn run_traced<S: TraceSink>(cfg: &ScenarioConfig, sink: &mut S) -> RunOutcome {
        let world = World::new(cfg);
        Self::run_in_traced(&world, sink)
    }

    /// Run one trial in a pre-built world (lets callers share the world
    /// across protocol variants for paired comparisons).
    pub fn run_in(world: &World) -> RunOutcome {
        Self::run_in_traced(world, &mut NullSink)
    }

    /// [`StProtocol::run_in`] with protocol-event tracing.
    ///
    /// An enabled sink consumes per-slot statistics ([`TraceEvent::
    /// SlotStats`]), which requires materializing every slot — so a
    /// traced run always executes the stepped engine, whatever
    /// [`ScenarioConfig::engine`] says. Outcomes (and therefore the
    /// JSONL logs) are bit-identical between the modes either way,
    /// locked down by `tests/engine_equivalence.rs`.
    pub fn run_in_traced<S: TraceSink>(world: &World, sink: &mut S) -> RunOutcome {
        Self::run_in_instrumented(world, sink, &mut NullRecorder)
    }

    /// Run one trial with performance telemetry: slot-loop stage
    /// timers, calendar-queue statistics, medium resolution costs and
    /// fault-application tallies land in `rec`.
    pub fn run_instrumented<R: Recorder>(cfg: &ScenarioConfig, rec: &mut R) -> RunOutcome {
        let world = World::new(cfg);
        Self::run_in_instrumented(&world, &mut NullSink, rec)
    }

    /// [`StProtocol::run_in_traced`] with performance telemetry.
    ///
    /// Telemetry is strictly observational — the recorder consumes no
    /// randomness and feeds nothing back into the protocol, so the
    /// outcome (and any trace JSONL) is bit-identical to an unrecorded
    /// run (locked by `tests/telemetry.rs`). Unlike tracing, recording
    /// does **not** force the stepped engine: the engine-mode dispatch
    /// keys on the sink alone, so the event-driven calendar queue can
    /// be profiled directly.
    pub fn run_in_instrumented<S: TraceSink, R: Recorder>(
        world: &World,
        sink: &mut S,
        rec: &mut R,
    ) -> RunOutcome {
        if !S::ENABLED && world.config().engine != EngineMode::Stepped {
            // EventDriven and Adaptive share the wake machinery; the
            // adaptive engine additionally flips between skip-ahead and
            // per-slot execution at density-window boundaries.
            Engine::<S, R, true>::new(world, sink, rec).run()
        } else {
            Engine::<S, R, false>::new(world, sink, rec).run()
        }
    }
}

/// Tree-internal unicast messages (scheduled resources).
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Head → leaves: start round `round`, re-orient the tree and
    /// re-assert the authoritative fragment identity.
    Initiate {
        round: u32,
        fragment: DeviceId,
        head: DeviceId,
    },
    /// Leaf → head: aggregated best outgoing edge + subtree size.
    Report {
        round: u32,
        best_u: DeviceId,
        best_v: DeviceId,
        best_w: f64,
        /// Fragment label of `best_v` as known at the reporting device
        /// (heads need it for fragment-level mutual detection).
        best_frag: DeviceId,
        size: u32,
    },
    /// Head → boundary: connect over your reported edge; carries the
    /// fragment size snapshot the boundary advertises in `H_Connect`.
    MergeCmd { round: u32, frag_size: u32 },
    /// Target boundary → its head: may I accept this foreign connect?
    /// `ttl` bounds tree-routed forwarding: transient orientation
    /// inconsistencies (crossing identity floods) can briefly create
    /// parent 2-cycles, and an unbounded forward would ping-pong.
    GrantReq {
        round: u32,
        origin: DeviceId,
        requester: DeviceId,
        req_fragment: DeviceId,
        req_size: u32,
        ttl: u8,
    },
    /// Head → target boundary: grant decision (carries own fragment
    /// size for the survivor rule).
    GrantResp {
        round: u32,
        origin: DeviceId,
        requester: DeviceId,
        granted: bool,
        my_size: u32,
        ttl: u8,
    },
    /// Flood into the losing fragment: adopt `head`, re-orient.
    NewFragment { head: DeviceId },
    /// Boundary → head: this round's own handshake is void (the target
    /// turned out to be in our own fragment); clear the pending request
    /// so foreign merges can be granted.
    HsFailed { round: u32 },
    /// Handshake acceptance (Algorithm 2's positive return). Unlike the
    /// contention-based `H_Connect` broadcast, the accept rides the
    /// dedicated link being established and is MAC-acknowledged, hence
    /// reliable — which is what keeps commits two-sided and the
    /// accepted edge set a forest. Counted as RACH2 signalling.
    Accept {
        fragment: DeviceId,
        fragment_size: u32,
        head: DeviceId,
    },
    /// Commit confirmation from the handshake requester, carrying the
    /// agreed surviving head (computed once, at the requester, from the
    /// two exchanged snapshots — so both sides apply the identical
    /// merge). Reliable, like `Accept`.
    Finalize { survivor: DeviceId },
}

/// Per-device, per-round merge state.
#[derive(Debug, Clone)]
struct MState {
    round: u32,
    pending_children: u32,
    best_u: DeviceId,
    best_v: DeviceId,
    best_w: f64,
    best_frag: DeviceId,
    best_provider: DeviceId,
    size: u32,
    /// Head only: this round's own merge request targets this fragment
    /// (NONE = idle). Used for fragment-level mutual detection.
    own_target: DeviceId,
    /// Boundary handshake target (NONE = no handshake).
    hs_peer: DeviceId,
    hs_retries: u32,
    hs_next_tx: u64,
    /// Fragment-size snapshot for `H_Connect` (set by `MergeCmd`).
    frag_size: u32,
    /// Committed a merge this round (stops handshake retries).
    committed: bool,
    /// Head only: granted a foreign merge this round (merge budget).
    granted_foreign: bool,
    /// Processed this round's `Initiate` (duplicate-flood guard).
    initiated: bool,
    /// Pending foreign requests awaiting head grants.
    foreign: Vec<(DeviceId, DeviceId, u32)>, // (requester, req_fragment, req_size)
    /// Breadcrumbs for routing `GrantResp` back down, keyed by
    /// (origin, requester). Ordered map: only point lookups today, but
    /// the route table is protocol state — keeping it order-stable
    /// means any future iteration (debug dumps, invariant sweeps)
    /// cannot introduce hash-order nondeterminism.
    grant_route: BTreeMap<(DeviceId, DeviceId), DeviceId>,
}

impl MState {
    fn reset(&mut self, round: u32) {
        *self = MState {
            round,
            ..MState::default()
        };
    }
}

impl Default for MState {
    fn default() -> Self {
        MState {
            round: 0,
            pending_children: 0,
            best_u: NONE,
            best_v: NONE,
            best_w: f64::NEG_INFINITY,
            best_frag: NONE,
            best_provider: NONE,
            size: 1,
            own_target: NONE,
            hs_peer: NONE,
            hs_retries: 0,
            hs_next_tx: 0,
            frag_size: 1,
            committed: false,
            granted_foreign: false,
            initiated: false,
            foreign: Vec::new(),
            grant_route: BTreeMap::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Discovery,
    Merge,
    Sync,
}

/// The slot-accurate protocol engine.
///
/// `EV` selects the execution strategy at compile time:
///
/// * `EV = false` — the **stepped** reference loop: every slot of the
///   horizon is materialized.
/// * `EV = true` — the **event-driven** loop: a calendar queue of
///   wake-up slots (next oscillator fires, phase boundaries, pending
///   unicast deliveries, handshake deadlines, beacon offsets,
///   convergence probes) decides which slots to materialize; the idle
///   stretches in between are fast-forwarded in O(1) per device via
///   memoized phase trajectories. A materialized slot runs the *same*
///   [`slot_body`](Engine::slot_body) as the stepped loop, and the
///   wake set is a superset of every slot in which anything beyond
///   pure phase ticking happens — which is what makes the two modes
///   bit-identical (locked by `tests/engine_equivalence.rs`).
struct Engine<'w, S: TraceSink, R: Recorder, const EV: bool> {
    world: &'w World,
    /// Protocol-event sink; all emission sites are gated on
    /// `S::ENABLED`, so a [`NullSink`] engine is the untraced engine.
    sink: &'w mut S,
    /// Performance recorder; sites are no-ops (and clock reads vanish)
    /// under [`NullRecorder`], so an unrecorded engine is the
    /// uninstrumented engine.
    rec: &'w mut R,
    devices: Vec<Device>,
    m: Vec<MState>,
    /// Authoritative undirected tree adjacency.
    tree: Vec<Vec<DeviceId>>,
    medium: FastMedium,
    counters: Counters,
    prc: Prc,
    rng: StreamRng,
    phase: Phase,
    round: u32,
    round_end: u64,
    /// Last slot at which new handshake activity may start this round
    /// (leaves room for the grant round-trip + accept + finalize).
    round_grace_end: u64,
    /// `MergeCmd`s issued in the current round (0 ⇒ all heads idle).
    mergecmds_this_round: u32,
    commits_total: u32,
    /// Commit count at the previous round boundary (stagnation probe).
    commits_at_round_start: u32,
    /// Consecutive rounds that requested merges but committed none.
    stagnant_rounds: u32,
    /// Unicasts in flight: sent this slot, delivered next slot.
    outbox: Vec<(DeviceId, DeviceId, Msg)>, // (from, to, msg)
    inbox: Vec<(DeviceId, DeviceId, Msg)>,
    /// RACH2 broadcasts queued for this slot.
    rach2_out: Vec<ProximitySignal>,
    /// Pending staggered fire transmissions, ring-indexed by slot.
    fire_queue: Vec<Vec<(DeviceId, u8)>>,
    /// Per-device keep-alive beacon offset within the period (merge
    /// phase only): randomly spread so synchronized fragments do not
    /// jam their own discovery refresh.
    beacon_offset: Vec<u64>,
    phases_scratch: Vec<f64>,
    /// Scratch for the per-slot distinct-fragment count (tracing only).
    frag_scratch: Vec<DeviceId>,
    /// Scratch for the per-slot on-air transmission list (reused across
    /// slots so busy slots allocate nothing).
    pending_scratch: Vec<ProximitySignal>,
    /// First slot of the merge phase (`discovery_periods × T`).
    discovery_end: u64,
    /// Merge-round safety cap (set once in `run`).
    max_rounds: u32,
    /// Completeness denominator for per-slot stats (tracing only).
    ground_truth_links: u64,
    // --- Fault injection & churn (dormant when the plan is none) ---
    /// Per-device liveness under churn (all-true without a churn plan).
    active: Vec<bool>,
    /// True iff the plan schedules churn. Gates every liveness check,
    /// so plan-free runs take exactly the pre-chaos code paths.
    churned: bool,
    /// Churn schedule sorted by `(slot, device)`, with a cursor.
    churn_events: Vec<ChurnEvent>,
    next_churn: usize,
    /// Per-device "period differs from nominal" flags (clock skew):
    /// skewed devices never join the shared trajectory cache.
    skewed: Vec<bool>,
    /// Keyed-draw seed for frame fates ([`FaultPlan::frame_fate`]).
    chaos_key: u64,
    /// Slot of the plan's last discrete fault: convergence does not end
    /// the run until a probe succeeds *after* this slot.
    last_fault_slot: Option<u64>,
    /// The merge phase may not end before this slot (extended on churn
    /// so rejoining devices get a re-discovery window before rounds
    /// stop). Zero — and therefore inert — without churn.
    merge_deadline: u64,
    /// Tree fragments orphaned by departures (see [`RunOutcome`]).
    orphaned_fragments: u32,
    // --- Event-driven machinery (dormant when `EV` is false) ---
    /// Candidate wake-up slots. Bare slot numbers, no payloads: the
    /// two-tier wheel coalesces everything landing on one slot, and a
    /// spurious wake just materializes a slot in which nothing happens,
    /// so entries need no invalidation.
    wake: SlotWheel,
    /// All slots `< synced_next` are fully processed (device state
    /// reflects every tick up to and including slot `synced_next - 1`).
    synced_next: u64,
    /// True when the run may cut between execution strategies
    /// ([`EngineMode::Adaptive`]); the pure event-driven mode pins
    /// `live_ev` to `true` forever.
    adaptive: bool,
    /// Current execution strategy: `true` ⇒ event-driven windows
    /// (skip-ahead, cursor maintenance, touched tracking); `false` ⇒
    /// stepped windows (every slot materialized, wake bookkeeping kept
    /// but cursor/touched maintenance shed — that is the saving).
    live_ev: bool,
    /// Sliding-window wake density driving the cutover (adaptive only).
    density: DensityWindow,
    /// Did any oscillator fire naturally in the slot being processed?
    /// Part of the density signal in stepped windows, where fire slots
    /// are no longer predicted into the wheel.
    fired_this_slot: bool,
    /// Devices whose oscillator phase may have changed in the current
    /// slot (fired, absorbed, or parent-aligned); drained by
    /// [`post_schedule`](Engine::post_schedule) to re-derive cursors
    /// and re-predict fires.
    touched: Vec<DeviceId>,
    /// Per-device position on a memoized phase trajectory (`None` ⇒
    /// non-canonical phase, fast-forwarded by literal ticking).
    cursors: Vec<Option<Cursor>>,
    /// Shared memoized phase ramps (all devices share one period).
    traj: TrajectoryCache,
    /// Sorted, deduplicated `beacon_offset` values — the merge-phase
    /// beacon residues mod the period.
    beacon_residues: Vec<u64>,
}

impl<'w, S: TraceSink, R: Recorder, const EV: bool> Engine<'w, S, R, EV> {
    fn new(world: &'w World, sink: &'w mut S, rec: &'w mut R) -> Self {
        let cfg = world.config();
        let n = world.n();
        let seed = cfg.sim.seed;
        let beacon_offset: Vec<u64> = {
            let period = cfg.protocol.period_slots as u64;
            let mut rng = StreamRng::new(seed, 0, StreamId::MergeBeacons);
            (0..n).map(|_| rng.gen_range(0..period)).collect()
        };
        let beacon_residues = {
            let mut r = beacon_offset.clone();
            r.sort_unstable();
            r.dedup();
            r
        };
        let faults = &cfg.faults;
        let churn_events = faults.sorted_churn();
        let skewed: Vec<bool> = (0..n as DeviceId)
            .map(|id| faults.period_for(id, cfg.protocol.period_slots) != cfg.protocol.period_slots)
            .collect();
        let mut phase_rng = StreamRng::new(seed, 0, StreamId::Phases);
        let devices: Vec<Device> = (0..n as DeviceId)
            .map(|id| {
                Device::new(
                    id,
                    n,
                    phase_rng.gen_range(0.0..1.0),
                    faults.period_for(id, cfg.protocol.period_slots),
                    cfg.protocol.refractory_slots,
                    world.services()[id as usize],
                )
            })
            .collect();
        Engine {
            world,
            sink,
            rec,
            devices,
            m: vec![MState::default(); n],
            tree: vec![Vec::new(); n],
            medium: FastMedium::new(n),
            counters: Counters::new(),
            prc: Prc::from_dissipation(cfg.protocol.dissipation, cfg.protocol.coupling),
            rng: StreamRng::new(seed, 0, StreamId::Protocol),
            phase: Phase::Discovery,
            round: 0,
            round_end: 0,
            round_grace_end: 0,
            mergecmds_this_round: 0,
            commits_total: 0,
            commits_at_round_start: 0,
            stagnant_rounds: 0,
            outbox: Vec::new(),
            inbox: Vec::new(),
            rach2_out: Vec::new(),
            fire_queue: vec![Vec::new(); FIRE_RING],
            beacon_offset,
            phases_scratch: Vec::new(),
            frag_scratch: Vec::new(),
            pending_scratch: Vec::new(),
            discovery_end: 0,
            max_rounds: 0,
            ground_truth_links: 0,
            active: faults.initial_active(n),
            churned: !churn_events.is_empty(),
            churn_events,
            next_churn: 0,
            skewed,
            chaos_key: FaultPlan::chaos_key(seed),
            last_fault_slot: faults.last_fault_slot(),
            merge_deadline: 0,
            orphaned_fragments: 0,
            wake: SlotWheel::new(),
            synced_next: 0,
            adaptive: cfg.engine == EngineMode::Adaptive,
            live_ev: true,
            density: DensityWindow::new(DensityWindow::DEFAULT_WINDOW),
            fired_this_slot: false,
            touched: Vec::new(),
            // Initial phases are arbitrary random reals — never
            // canonical — so every device starts on the literal-ticking
            // fallback and joins a shared trajectory at its first reset.
            cursors: vec![None; n],
            traj: TrajectoryCache::new(cfg.protocol.period_slots),
            beacon_residues,
        }
    }

    /// Distinct fragment labels across the live population (tracing
    /// only).
    fn fragment_count(&mut self) -> u32 {
        self.frag_scratch.clear();
        let (churned, active) = (self.churned, &self.active);
        self.frag_scratch.extend(
            self.devices
                .iter()
                .enumerate()
                .filter(|(i, _)| !churned || active[*i])
                .map(|(_, d)| d.fragment),
        );
        self.frag_scratch.sort_unstable();
        self.frag_scratch.dedup();
        self.frag_scratch.len() as u32
    }

    fn send(&mut self, from: DeviceId, to: DeviceId, msg: Msg) {
        self.counters.add_unicast_tx(1);
        self.outbox.push((from, to, msg));
    }

    /// Maximum tree depth over all fragments (for round pacing).
    fn max_depth(&self) -> u64 {
        let n = self.devices.len();
        let mut depth = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for d in &self.devices {
            if d.is_head() && (!self.churned || self.active[d.id as usize]) {
                depth[d.id as usize] = 0;
                queue.push_back(d.id);
            }
        }
        let mut max = 0;
        while let Some(v) = queue.pop_front() {
            for &u in &self.tree[v as usize] {
                if depth[u as usize] == u32::MAX {
                    depth[u as usize] = depth[v as usize] + 1;
                    max = max.max(depth[u as usize]);
                    queue.push_back(u);
                }
            }
        }
        max as u64
    }

    fn start_round(&mut self, slot: Slot) {
        if std::env::var("FFD2D_DEBUG").is_ok() && self.round > 0 {
            // Cycle check over the accepted tree edges.
            let n = self.devices.len();
            let mut uf = ffd2d_graph::UnionFind::new(n);
            for v in 0..n as u32 {
                for &u in &self.tree[v as usize] {
                    if v < u && !uf.union(v, u) {
                        eprintln!("!! CYCLE closed by edge {v}--{u} at round {}", self.round);
                    }
                    if !self.tree[u as usize].contains(&v) {
                        eprintln!("!! ASYMMETRIC link {v}->{u} at round {}", self.round);
                    }
                }
            }
            let heads = self.devices.iter().filter(|d| d.is_head()).count();
            let mut frags: Vec<u32> = self.devices.iter().map(|d| d.fragment).collect();
            frags.sort();
            frags.dedup();
            eprintln!(
                "round {} end: heads={} frags={:?} commits_total={} mergecmds={} rach2={}",
                self.round,
                heads,
                frags,
                self.commits_total,
                self.mergecmds_this_round,
                self.counters.rach2_tx
            );
        }
        self.round += 1;
        self.mergecmds_this_round = 0;
        let cfg = &self.world.config().protocol;
        // Round budget: initiate+report (2 depth hops), merge-cmd +
        // grant round-trip (2 depth), the handshake window with
        // retries, and the identity flood (depth), plus slack — floored
        // at 1.5 periods so neighbour tables refresh between rounds.
        let d = self.max_depth() + 1;
        let handshake =
            (cfg.handshake_window as u64 + HANDSHAKE_TIMEOUT) * (cfg.handshake_retries as u64 + 1);
        let budget = (5 * d + handshake + 8).max(cfg.period_slots as u64 * 3 / 2);
        self.round_end = slot.0 + budget;
        self.round_grace_end = self.round_end.saturating_sub(2 * d + 16);
        if EV {
            // The round boundary is a phase-transition point and must be
            // materialized.
            self.push_wake(self.round_end);
        }
        if S::ENABLED {
            let fragments = self.fragment_count();
            self.sink.event(&TraceEvent::RoundStart {
                slot: slot.0,
                round: self.round,
                budget,
                fragments,
            });
        }

        let round = self.round;
        for i in 0..self.devices.len() {
            self.m[i].reset(round);
        }
        // Heads initiate.
        for id in 0..self.devices.len() as DeviceId {
            if !self.devices[id as usize].is_head() {
                continue;
            }
            if self.churned && !self.active[id as usize] {
                continue; // departed ex-heads stay silent
            }
            let children: Vec<DeviceId> = self.tree[id as usize].clone();
            self.devices[id as usize].parent = None;
            self.devices[id as usize].children = children.clone();
            self.m[id as usize].pending_children = children.len() as u32;
            for c in children {
                self.send(
                    id,
                    c,
                    Msg::Initiate {
                        round,
                        fragment: id,
                        head: id,
                    },
                );
            }
            if self.m[id as usize].pending_children == 0 {
                self.aggregate_and_act(id, slot);
            }
        }
    }

    /// Fold the device's own best outgoing edge into its aggregate and
    /// either report up or (at the head) decide the round's merge.
    fn aggregate_and_act(&mut self, v: DeviceId, slot: Slot) {
        let frag = self.devices[v as usize].fragment;
        let max_age = FRESHNESS_PERIODS * self.world.config().protocol.period_slots as u64;
        if let Some((nbr, w)) = self.devices[v as usize]
            .table
            .best_outgoing_fresh(frag, slot, max_age)
        {
            let better = w > self.m[v as usize].best_w
                || (w == self.m[v as usize].best_w
                    && (v, nbr) < (self.m[v as usize].best_u, self.m[v as usize].best_v));
            if better {
                let nbr_frag = self.devices[v as usize]
                    .table
                    .get(nbr)
                    .map(|i| i.fragment)
                    .unwrap_or(NONE);
                let st = &mut self.m[v as usize];
                st.best_u = v;
                st.best_v = nbr;
                st.best_w = w;
                st.best_frag = nbr_frag;
                st.best_provider = v;
            }
        }
        let st = &self.m[v as usize];
        let (best_u, best_v, best_w, best_frag, provider, size) = (
            st.best_u,
            st.best_v,
            st.best_w,
            st.best_frag,
            st.best_provider,
            st.size,
        );
        let round = st.round;
        if self.devices[v as usize].is_head() {
            if best_v == NONE {
                return; // no outgoing edge: fragment idle this round
            }
            self.m[v as usize].own_target = best_frag;
            self.mergecmds_this_round += 1;
            if provider == v {
                self.m[v as usize].frag_size = size;
                self.begin_handshake(v, best_v, slot);
            } else {
                self.send(
                    v,
                    provider,
                    Msg::MergeCmd {
                        round,
                        frag_size: size,
                    },
                );
            }
        } else {
            let parent = self.devices[v as usize]
                .parent
                // ffd2d-lint: allow(panic-discipline) — GHS round invariant: every non-head carries a parent edge by construction (set when the fragment formed); silently skipping the report would corrupt the round, so violation must abort
                .expect("non-head device must have a parent during a round");
            self.send(
                v,
                parent,
                Msg::Report {
                    round,
                    best_u,
                    best_v,
                    best_w,
                    best_frag,
                    size,
                },
            );
        }
    }

    fn begin_handshake(&mut self, u: DeviceId, v: DeviceId, slot: Slot) {
        let cfg = &self.world.config().protocol;
        let st = &mut self.m[u as usize];
        st.hs_peer = v;
        st.hs_retries = cfg.handshake_retries;
        st.hs_next_tx = slot.0 + 1 + self.rng.gen_range(0..cfg.handshake_window as u64);
        if EV {
            let at = st.hs_next_tx;
            self.push_wake(at);
        }
    }

    fn handle_msg(&mut self, from: DeviceId, v: DeviceId, msg: Msg, slot: Slot) {
        match msg {
            Msg::Initiate {
                round,
                fragment,
                head,
            } => {
                if round != self.round || self.m[v as usize].initiated {
                    return;
                }
                if !self.tree[v as usize].contains(&from) {
                    // Tree messages are only meaningful over committed
                    // tree edges; commits are two-sided (reliable
                    // accepts), so this cannot be a missed edge.
                    return;
                }
                self.m[v as usize].initiated = true;
                self.m[v as usize].round = round;
                // The initiate flood is authoritative for identity: it
                // travelled tree edges from the head itself.
                self.devices[v as usize].fragment = fragment;
                self.devices[v as usize].head = head;
                self.devices[v as usize].parent = Some(from);
                let children: Vec<DeviceId> = self.tree[v as usize]
                    .iter()
                    .copied()
                    .filter(|&u| u != from)
                    .collect();
                self.devices[v as usize].children = children.clone();
                self.m[v as usize].pending_children = children.len() as u32;
                let round = self.round;
                for c in children {
                    self.send(
                        v,
                        c,
                        Msg::Initiate {
                            round,
                            fragment,
                            head,
                        },
                    );
                }
                if self.m[v as usize].pending_children == 0 {
                    self.aggregate_and_act(v, slot);
                }
            }
            Msg::Report {
                round,
                best_u,
                best_v,
                best_w,
                best_frag,
                size,
            } => {
                if round != self.round {
                    return;
                }
                let st = &mut self.m[v as usize];
                st.size += size;
                if best_v != NONE {
                    let better = best_w > st.best_w
                        || (best_w == st.best_w && (best_u, best_v) < (st.best_u, st.best_v));
                    if better {
                        st.best_u = best_u;
                        st.best_v = best_v;
                        st.best_w = best_w;
                        st.best_frag = best_frag;
                        st.best_provider = from;
                    }
                }
                st.pending_children = st.pending_children.saturating_sub(1);
                if st.pending_children == 0 {
                    self.aggregate_and_act(v, slot);
                }
            }
            Msg::MergeCmd { round, frag_size } => {
                if round != self.round {
                    return;
                }
                self.m[v as usize].frag_size = frag_size;
                if self.m[v as usize].best_provider == v {
                    let peer = self.m[v as usize].best_v;
                    if peer != NONE {
                        self.begin_handshake(v, peer, slot);
                    }
                } else if self.m[v as usize].best_provider != NONE {
                    self.send(
                        v,
                        self.m[v as usize].best_provider,
                        Msg::MergeCmd { round, frag_size },
                    );
                }
            }
            Msg::GrantReq {
                round,
                origin,
                requester,
                req_fragment,
                req_size,
                ttl,
            } => {
                if round != self.round || ttl == 0 {
                    return;
                }
                if self.devices[v as usize].is_head() {
                    // Matching discipline: every fragment takes part in
                    // at most ONE merge per round, which keeps each
                    // round's merge set a matching over current
                    // fragments — provably cycle-free even under stale
                    // neighbour labels. A head therefore grants iff
                    //   * the requester is a different fragment,
                    //   * it has not already granted this round, and
                    //   * it has no own request pending — except the
                    //     fragment-level mutual case (we target them,
                    //     they target us), where exactly one of the two
                    //     edges must proceed: the higher head id yields.
                    let my_frag = self.devices[v as usize].fragment;
                    let st = &self.m[v as usize];
                    let mutual = st.own_target == req_fragment;
                    let own_pending = st.own_target != NONE;
                    let granted = my_frag != req_fragment
                        && !st.granted_foreign
                        && (!own_pending || (mutual && my_frag > req_fragment));
                    if granted {
                        self.m[v as usize].granted_foreign = true;
                    } else if S::ENABLED {
                        self.sink.event(&TraceEvent::MergeReject {
                            slot: slot.0,
                            round,
                            device: v,
                            requester,
                            reason: RejectReason::GrantDenied,
                        });
                    }
                    if std::env::var("FFD2D_DEBUG").is_ok() && self.round >= 8 {
                        eprintln!("  r{} grantdecision at head {}: req_frag={} my_frag={} own_target={} mutual={} granted={}",
                            self.round, v, req_fragment, my_frag, self.m[v as usize].own_target as i64, mutual, granted);
                    }
                    let my_size = self.m[v as usize].size;
                    if origin == v {
                        self.deliver_grant(v, requester, granted, my_size, slot);
                    } else {
                        // Respond to whichever child delivered the
                        // request; breadcrumbs route the rest of the way.
                        self.send(
                            v,
                            from,
                            Msg::GrantResp {
                                round,
                                origin,
                                requester,
                                granted,
                                my_size,
                                ttl: GRANT_TTL,
                            },
                        );
                    }
                    let _ = req_size;
                } else {
                    self.m[v as usize]
                        .grant_route
                        .insert((origin, requester), from);
                    if let Some(parent) = self.devices[v as usize].parent {
                        self.send(
                            v,
                            parent,
                            Msg::GrantReq {
                                round,
                                origin,
                                requester,
                                req_fragment,
                                req_size,
                                ttl: ttl - 1,
                            },
                        );
                    }
                }
            }
            Msg::GrantResp {
                round,
                origin,
                requester,
                granted,
                my_size,
                ttl,
            } => {
                if round != self.round || ttl == 0 {
                    return;
                }
                if origin == v {
                    self.deliver_grant(v, requester, granted, my_size, slot);
                } else {
                    let back = self.m[v as usize]
                        .grant_route
                        .get(&(origin, requester))
                        .copied();
                    if let Some(back) = back {
                        self.send(
                            v,
                            back,
                            Msg::GrantResp {
                                round,
                                origin,
                                requester,
                                granted,
                                my_size,
                                ttl: ttl - 1,
                            },
                        );
                    }
                }
            }
            Msg::Accept {
                fragment,
                fragment_size,
                head,
            } => {
                self.devices[v as usize]
                    .table
                    .update_fragment(from, fragment);
                if self.m[v as usize].hs_peer == from && !self.m[v as usize].committed {
                    let same_fragment = self.devices[v as usize].head == head;
                    let linked = self.tree[v as usize].contains(&from);
                    if same_fragment && !linked {
                        // Void handshake: the target already merged into
                        // our fragment over another edge. Release the
                        // head's merge slot.
                        self.m[v as usize].hs_peer = NONE;
                        let round = self.round;
                        if S::ENABLED {
                            self.sink.event(&TraceEvent::MergeReject {
                                slot: slot.0,
                                round,
                                device: v,
                                requester: v,
                                reason: RejectReason::VoidSameFragment,
                            });
                        }
                        if self.devices[v as usize].is_head() {
                            self.m[v as usize].own_target = NONE;
                        } else if let Some(parent) = self.devices[v as usize].parent {
                            self.send(v, parent, Msg::HsFailed { round });
                        }
                    } else {
                        // Decide the surviving head once, from the two
                        // pre-merge snapshots, and share the decision so
                        // both endpoints apply the identical merge.
                        let survivor = Self::decide_survivor(
                            self.devices[v as usize].head,
                            self.m[v as usize].frag_size,
                            head,
                            fragment_size,
                        );
                        self.counters.add_rach2_tx(1);
                        if S::ENABLED {
                            // Out-of-band RACH2 handshake frame (no
                            // medium contention modelled): traced so the
                            // timeline's rach2 tally reconciles with
                            // `Counters::rach2_tx`.
                            self.sink.event(&TraceEvent::Tx {
                                slot: slot.0,
                                sender: v,
                                codec: Codec::Rach2,
                                kind: FrameLabel::HAccept,
                            });
                        }
                        self.outbox.push((v, from, Msg::Finalize { survivor }));
                        self.commit(v, from, survivor, slot);
                    }
                }
            }
            Msg::Finalize { survivor } => {
                self.commit(v, from, survivor, slot);
            }
            Msg::HsFailed { round } => {
                if round != self.round {
                    return;
                }
                if self.devices[v as usize].is_head() {
                    self.m[v as usize].own_target = NONE;
                } else if let Some(parent) = self.devices[v as usize].parent {
                    self.send(v, parent, Msg::HsFailed { round });
                }
            }
            Msg::NewFragment { head } => {
                if !self.tree[v as usize].contains(&from) {
                    return;
                }
                if self.devices[v as usize].fragment == head
                    && self.devices[v as usize].parent == Some(from)
                {
                    return; // duplicate
                }
                self.devices[v as usize].fragment = head;
                self.devices[v as usize].head = head;
                self.devices[v as usize].parent = Some(from);
                let fwd: Vec<DeviceId> = self.tree[v as usize]
                    .iter()
                    .copied()
                    .filter(|&u| u != from)
                    .collect();
                self.devices[v as usize].children = fwd.clone();
                for c in fwd {
                    self.send(v, c, Msg::NewFragment { head });
                }
            }
        }
    }

    /// A granted (or denied) foreign connect at the target boundary.
    fn deliver_grant(
        &mut self,
        v: DeviceId,
        requester: DeviceId,
        granted: bool,
        my_size: u32,
        slot: Slot,
    ) {
        let Some(pos) = self.m[v as usize]
            .foreign
            .iter()
            .position(|&(r, _, _)| r == requester)
        else {
            return;
        };
        let (requester, req_fragment, req_size) = self.m[v as usize].foreign.swap_remove(pos);
        if !granted {
            return;
        }
        let _ = (req_fragment, req_size);
        // Advertise our snapshot; the requester decides the survivor and
        // confirms with `Finalize`, upon which we commit.
        self.m[v as usize].frag_size = my_size;
        self.m[v as usize].hs_peer = requester;
        self.send_accept(v, requester, slot);
    }

    fn send_accept(&mut self, v: DeviceId, to: DeviceId, slot: Slot) {
        let d = &self.devices[v as usize];
        let msg = Msg::Accept {
            fragment: d.fragment,
            fragment_size: self.m[v as usize].frag_size,
            head: d.head,
        };
        self.counters.add_rach2_tx(1);
        if S::ENABLED {
            // See the `Finalize` send: out-of-band RACH2 frames are
            // traced too, keeping timeline and counter tallies equal.
            self.sink.event(&TraceEvent::Tx {
                slot: slot.0,
                sender: v,
                codec: Codec::Rach2,
                kind: FrameLabel::HAccept,
            });
            self.sink.event(&TraceEvent::MergeAccept {
                slot: slot.0,
                round: self.round,
                device: v,
                peer: to,
            });
        }
        self.outbox.push((v, to, msg));
    }

    /// Algorithm 1's head-selection rule: the surviving head comes from
    /// the larger tree ("choose S_v.head from highest number of node's
    /// tree"); ties break to the smaller head id.
    fn decide_survivor(
        my_head: DeviceId,
        my_size: u32,
        their_head: DeviceId,
        their_size: u32,
    ) -> DeviceId {
        if my_size > their_size || (my_size == their_size && my_head < their_head) {
            my_head
        } else {
            their_head
        }
    }

    /// Commit the merge over tree edge `(x, y)` from `x`'s side, with a
    /// pre-agreed surviving head (both endpoints receive the same
    /// `survivor`, so the two sides always apply the identical merge).
    fn commit(&mut self, x: DeviceId, y: DeviceId, survivor: DeviceId, slot: Slot) {
        if S::ENABLED {
            self.sink.event(&TraceEvent::FragmentCommit {
                slot: slot.0,
                round: self.round,
                device: x,
                peer: y,
                survivor,
                old_head: self.devices[x as usize].head,
            });
        }
        if !self.tree[x as usize].contains(&y) {
            self.tree[x as usize].push(y);
            self.commits_total += 1;
        }
        self.m[x as usize].committed = true;
        self.m[x as usize].hs_peer = NONE;
        if std::env::var("FFD2D_DEBUG").is_ok() {
            eprintln!("  commit {}--{} (survivor={})", x, y, survivor);
        }
        if self.devices[x as usize].head == survivor {
            // Winning side: the peer becomes a child.
            if !self.devices[x as usize].children.contains(&y)
                && self.devices[x as usize].parent != Some(y)
            {
                self.devices[x as usize].children.push(y);
            }
        } else {
            // Losing side: adopt the surviving identity and flood it
            // into the old fragment.
            self.devices[x as usize].fragment = survivor;
            self.devices[x as usize].head = survivor;
            self.devices[x as usize].parent = Some(y);
            let fwd: Vec<DeviceId> = self.tree[x as usize]
                .iter()
                .copied()
                .filter(|&u| u != y)
                .collect();
            self.devices[x as usize].children = fwd.clone();
            for c in fwd {
                self.send(x, c, Msg::NewFragment { head: survivor });
            }
        }
    }

    fn handle_rach2(&mut self, receiver: DeviceId, sig: &ProximitySignal, slot: Slot) {
        // Accepts travel as reliable MAC-acknowledged signalling (see
        // `Msg::Accept`); an on-air HAccept frame is not used by this
        // engine, so only HConnect frames matter here.
        let FrameKind::HConnect {
            to,
            fragment,
            fragment_size,
            head,
        } = sig.kind
        else {
            return;
        };
        self.devices[receiver as usize]
            .table
            .update_fragment(sig.sender, fragment);
        if to != receiver {
            return;
        }
        if S::ENABLED {
            self.sink.event(&TraceEvent::MergeRequest {
                slot: slot.0,
                round: self.round,
                requester: sig.sender,
                target: receiver,
                req_fragment: fragment,
            });
        }
        if std::env::var("FFD2D_DEBUG").is_ok() && self.round >= 8 {
            eprintln!(
                "  r{} hconnect {}->{} (their frag={}, my frag={}, my hs_peer={}, link={})",
                self.round,
                sig.sender,
                receiver,
                fragment,
                self.devices[receiver as usize].fragment,
                self.m[receiver as usize].hs_peer as i64,
                self.tree[receiver as usize].contains(&sig.sender)
            );
        }
        let me = &self.devices[receiver as usize];
        if me.fragment == fragment {
            // Same fragment: either a stale edge choice by the
            // peer, or the peer missed our accept after a
            // committed merge. Reply either way — the accept
            // carries our current labels, which lets the peer
            // heal a missed commit (tree link exists) or abort a
            // void handshake (no link).
            self.send_accept(receiver, sig.sender, slot);
            return;
        }
        if self.m[receiver as usize].hs_peer == sig.sender {
            // Mutual choice (the GHS core edge): accept without
            // a head round-trip. Both boundaries exchange
            // accepts; the commit happens on Accept/Finalize.
            let _ = (head, fragment_size);
            self.send_accept(receiver, sig.sender, slot);
            return;
        }
        if self.tree[receiver as usize].contains(&sig.sender) {
            self.send_accept(receiver, sig.sender, slot);
            return;
        }
        if slot.0 > self.round_grace_end {
            return; // too late in the round for a grant trip
        }
        let already_pending = self.m[receiver as usize]
            .foreign
            .iter()
            .any(|&(r, _, _)| r == sig.sender);
        if !already_pending {
            self.m[receiver as usize]
                .foreign
                .push((sig.sender, fragment, fragment_size));
            let round = self.round;
            if self.devices[receiver as usize].is_head() {
                self.handle_msg(
                    receiver,
                    receiver,
                    Msg::GrantReq {
                        round,
                        origin: receiver,
                        requester: sig.sender,
                        req_fragment: fragment,
                        req_size: fragment_size,
                        ttl: GRANT_TTL,
                    },
                    slot,
                );
            } else if let Some(parent) = self.devices[receiver as usize].parent {
                self.send(
                    receiver,
                    parent,
                    Msg::GrantReq {
                        round,
                        origin: receiver,
                        requester: sig.sender,
                        req_fragment: fragment,
                        req_size: fragment_size,
                        ttl: GRANT_TTL,
                    },
                );
            }
        }
    }

    /// Apply every scheduled churn event due at or before `slot`, then
    /// (if anything happened) re-open the merge machinery so the tree
    /// heals. Called at slot-body start; in event-driven mode every
    /// churn slot is pre-scheduled as a wake, so both engines apply
    /// each event in exactly its scheduled slot.
    fn apply_churn(&mut self, slot: Slot) {
        let mut churned: Vec<DeviceId> = Vec::new();
        while self.next_churn < self.churn_events.len()
            && self.churn_events[self.next_churn].slot <= slot.0
        {
            let ev = self.churn_events[self.next_churn];
            self.next_churn += 1;
            churned.push(ev.device);
            self.rec.add("chaos.churn_events", 1);
            match ev.kind {
                ChurnKind::Leave => self.device_leave(ev.device, slot),
                ChurnKind::Join => self.device_join(ev.device, slot),
            }
        }
        if !churned.is_empty() {
            // Population changed: stale exactly the churned devices'
            // link-state cache rows; everyone else's stay hot.
            self.medium.note_churn_of(&churned);
            self.reopen_merging(slot);
        }
    }

    /// Power a device off: freeze its oscillator, strip its tree edges,
    /// count the fragments its departure orphans, and re-derive the
    /// survivors' fragment identities.
    fn device_leave(&mut self, d: DeviceId, slot: Slot) {
        if !self.active[d as usize] {
            return;
        }
        self.active[d as usize] = false;
        let nbrs: Vec<DeviceId> = std::mem::take(&mut self.tree[d as usize]);
        for &u in &nbrs {
            self.tree[u as usize].retain(|&x| x != d);
            let dev = &mut self.devices[u as usize];
            if dev.parent == Some(d) {
                dev.parent = None;
            }
            dev.children.retain(|&x| x != d);
        }
        self.devices[d as usize].parent = None;
        self.devices[d as usize].children.clear();
        let orphaned = self.refragment_after_leave(&nbrs);
        self.orphaned_fragments += orphaned;
        if S::ENABLED {
            self.sink.event(&TraceEvent::DeviceLeft {
                slot: slot.0,
                device: d,
                orphaned,
            });
        }
    }

    /// Power a device (back) on as a fresh singleton fragment. Stale
    /// pre-outage state is discarded — the device re-discovers its
    /// neighbours from live traffic.
    fn device_join(&mut self, d: DeviceId, slot: Slot) {
        if self.active[d as usize] {
            return;
        }
        self.active[d as usize] = true;
        let n = self.devices.len();
        let dev = &mut self.devices[d as usize];
        dev.fragment = d;
        dev.head = d;
        dev.parent = None;
        dev.children.clear();
        dev.table = NeighborTable::new(n);
        dev.coupling = if self.phase == Phase::Discovery {
            CouplingMode::Isolated
        } else {
            CouplingMode::TreeOnly
        };
        self.m[d as usize] = MState::default();
        if EV && self.live_ev {
            // Re-predict the thawed oscillator's next fire. (Stepped
            // windows materialize every slot, so the tick catches it;
            // the cutover reseed re-predicts the whole population.)
            self.touched.push(d);
        }
        if S::ENABLED {
            self.sink.event(&TraceEvent::DeviceJoined {
                slot: slot.0,
                device: d,
            });
        }
    }

    /// Rebuild fragment identities from the surviving tree edges after
    /// a departure: union-find over the live population, the minimum id
    /// of each component becomes its head, and parents re-orient toward
    /// it by BFS. Returns the number of fragments orphaned among
    /// `former` (the departed device's ex-neighbours): each component
    /// beyond the first.
    fn refragment_after_leave(&mut self, former: &[DeviceId]) -> u32 {
        let n = self.devices.len();
        let mut uf = ffd2d_graph::UnionFind::new(n);
        for v in 0..n {
            if !self.active[v] {
                continue;
            }
            for &u in &self.tree[v] {
                if self.active[u as usize] {
                    uf.union(v as DeviceId, u);
                }
            }
        }
        let mut former_roots: Vec<DeviceId> = former
            .iter()
            .filter(|&&u| self.active[u as usize])
            .map(|&u| uf.find(u))
            .collect();
        former_roots.sort_unstable();
        former_roots.dedup();
        let orphaned = (former_roots.len() as u32).saturating_sub(1);
        // Head = minimum id per live component (ids ascend, so the
        // first member seen is the minimum).
        let mut head = vec![NONE; n];
        for v in 0..n as DeviceId {
            if !self.active[v as usize] {
                continue;
            }
            let r = uf.find(v) as usize;
            if head[r] == NONE {
                head[r] = v;
            }
        }
        for v in 0..n as DeviceId {
            if !self.active[v as usize] {
                continue;
            }
            let h = head[uf.find(v) as usize];
            self.devices[v as usize].fragment = h;
            self.devices[v as usize].head = h;
        }
        // Re-orient every live component from its head.
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        for v in 0..n as DeviceId {
            if self.active[v as usize] && self.devices[v as usize].is_head() {
                seen[v as usize] = true;
                self.devices[v as usize].parent = None;
                queue.push_back(v);
            }
        }
        while let Some(v) = queue.pop_front() {
            let children: Vec<DeviceId> = self.tree[v as usize]
                .iter()
                .copied()
                .filter(|&u| self.active[u as usize] && !seen[u as usize])
                .collect();
            self.devices[v as usize].children = children.clone();
            for c in children {
                seen[c as usize] = true;
                self.devices[c as usize].parent = Some(v);
                queue.push_back(c);
            }
        }
        orphaned
    }

    /// Churn re-opens tree construction: return to the merge phase,
    /// grant extra rounds, and hold the phase open long enough for
    /// rejoining devices to re-discover their neighbours before the
    /// idle-round exit can fire.
    fn reopen_merging(&mut self, slot: Slot) {
        if self.phase == Phase::Discovery {
            return; // merging has not started; discovery handles it
        }
        let period = self.world.config().protocol.period_slots as u64;
        self.merge_deadline = self.merge_deadline.max(slot.0 + 3 * period);
        self.max_rounds = self.max_rounds.max(self.round + 16);
        self.stagnant_rounds = 0;
        if self.phase != Phase::Merge {
            self.phase = Phase::Merge;
            if S::ENABLED {
                self.sink.event(&TraceEvent::PhaseEnter {
                    slot: slot.0,
                    phase: ProtoPhase::Merge,
                });
            }
        }
        self.start_round(slot);
    }

    /// Schedule a wake-up slot, tallying scheduler pressure for an
    /// enabled recorder (a no-op push otherwise). Wake-ups landing on
    /// an already-scheduled slot coalesce inside the wheel.
    #[inline]
    fn push_wake(&mut self, s: u64) {
        self.rec.add("engine.wakeups_scheduled", 1);
        self.wake.push(s);
    }

    /// Flush the wheel's coalesce/stale tallies into the recorder.
    fn flush_wheel_stats(&mut self) {
        let (coalesced, stale) = self.wake.take_stats();
        if coalesced > 0 {
            self.rec.add("engine.coalesced_wakeups", coalesced);
        }
        if stale > 0 {
            self.rec.add("engine.wakeups_stale", stale);
        }
    }

    /// Queue a staggered fire transmission for a device whose firing
    /// instant was `base_age` slots ago (0 for a natural threshold
    /// crossing; the absorbing pulse's age for an absorption).
    fn enqueue_fire(&mut self, id: DeviceId, slot: Slot, min_jitter: u64, base_age: u8) {
        let j = self
            .rng
            .gen_range(min_jitter..FIRE_JITTER.max(min_jitter + 1));
        let at = (slot.0 + j) as usize % FIRE_RING;
        self.fire_queue[at].push((id, base_age.saturating_add(j as u8)));
        if EV && j > 0 {
            // Jittered transmissions land in a future slot, which must
            // be materialized for the ring take to find them (`j = 0`
            // entries are taken later in the *current*, already
            // materialized slot).
            self.push_wake(slot.0 + j);
        }
    }

    /// One slot of broadcast traffic: tick oscillators, transmit due
    /// (staggered) fires plus queued RACH2 frames through the medium,
    /// and couple decoded pulses with age compensation.
    fn broadcast_step(&mut self, slot: Slot) {
        let pathloss = self.world.channel_config().pathloss;
        let tx_power = self.world.channel_config().tx_power;

        // Natural fires from the slot tick. Cursor/touched maintenance
        // only pays off when skip-ahead will use it — stepped windows
        // of an adaptive run shed it (and reseed at the next cutover).
        for i in 0..self.devices.len() {
            if self.churned && !self.active[i] {
                continue; // departed devices are frozen
            }
            if self.devices[i].osc.tick() {
                if EV {
                    self.fired_this_slot = true;
                    if self.live_ev {
                        self.touched.push(i as DeviceId);
                    }
                }
                self.enqueue_fire(i as DeviceId, slot, 0, 0);
            } else if EV && self.live_ev {
                self.cursors[i] = self.cursors[i].map(Cursor::next);
            }
        }
        // Due transmissions. The ring bucket and the transmission list
        // are reusable scratch: taken here, returned below with their
        // capacity intact, so steady-state slots allocate nothing.
        let ring_at = slot.0 as usize % FIRE_RING;
        let mut due = core::mem::take(&mut self.fire_queue[ring_at]);
        let mut pending = core::mem::take(&mut self.pending_scratch);
        pending.clear();
        pending.extend(
            due.iter()
                // A device that left after staggering a fire never
                // transmits it.
                .filter(|&&(id, _)| !self.churned || self.active[id as usize])
                .map(|&(id, age)| ProximitySignal {
                    sender: id,
                    service: self.devices[id as usize].service,
                    kind: FrameKind::Fire {
                        fragment: self.devices[id as usize].fragment,
                        age,
                    },
                }),
        );
        due.clear();
        self.fire_queue[ring_at] = due;
        // Merge-phase keep-alive beacons: one per device per period, at
        // a per-device random offset. Synchronized fragments fire in a
        // tight window that self-jams; beacons keep fragment labels and
        // weights fresh without carrying timing.
        if self.phase == Phase::Merge {
            let period = self.world.config().protocol.period_slots as u64;
            for id in 0..self.devices.len() {
                if self.churned && !self.active[id] {
                    continue;
                }
                if slot.0 % period == self.beacon_offset[id] {
                    pending.push(ProximitySignal {
                        sender: id as DeviceId,
                        service: self.devices[id].service,
                        kind: FrameKind::Fire {
                            fragment: self.devices[id].fragment,
                            age: BEACON_AGE,
                        },
                    });
                }
            }
        }
        pending.append(&mut self.rach2_out);
        if pending.is_empty() {
            self.pending_scratch = pending;
            return;
        }

        let mut absorbed: Vec<(DeviceId, u8)> = Vec::new();
        let mut rach2_events: Vec<(DeviceId, ProximitySignal)> = Vec::new();
        let mut fault_drops = 0u64;
        let mut fault_dups = 0u64;
        {
            let faults = &self.world.config().faults;
            let has_frame_faults = faults.has_frame_faults();
            let chaos_key = self.chaos_key;
            let active_mask: Option<&[bool]> = if self.churned {
                Some(&self.active)
            } else {
                None
            };
            let devices = &mut self.devices;
            let prc = &self.prc;
            let touched = &mut self.touched;
            let live_ev = self.live_ev;
            self.medium.resolve_instrumented(
                self.world,
                slot,
                &pending,
                active_mask,
                &mut self.counters,
                &mut *self.sink,
                &mut *self.rec,
                |receiver, sig, rx_dbm, sink| {
                    // Frame faults apply at the engine boundary, after
                    // the decode decision: a dropped frame was on the
                    // air (counters unchanged) but never reaches the
                    // protocol; a duplicated one is handled twice. The
                    // fate is a stateless keyed draw, so it cannot
                    // depend on delivery order or worker count.
                    let mut copies = 1u32;
                    if has_frame_faults {
                        match faults.frame_fate(chaos_key, slot.0, sig.sender, receiver) {
                            FrameFate::Drop => {
                                fault_drops += 1;
                                if S::ENABLED {
                                    sink.event(&TraceEvent::FaultInjected {
                                        slot: slot.0,
                                        device: receiver,
                                        sender: sig.sender,
                                        kind: FaultKind::FrameDrop,
                                    });
                                }
                                return;
                            }
                            FrameFate::Duplicate => {
                                fault_dups += 1;
                                if S::ENABLED {
                                    sink.event(&TraceEvent::FaultInjected {
                                        slot: slot.0,
                                        device: receiver,
                                        sender: sig.sender,
                                        kind: FaultKind::FrameDup,
                                    });
                                }
                                copies = 2;
                            }
                            FrameFate::Deliver => {}
                        }
                    }
                    for _ in 0..copies {
                        match sig.kind {
                            FrameKind::Fire { fragment, age } => {
                                let dev = &mut devices[receiver as usize];
                                dev.table.observe_fire(
                                    sig.sender,
                                    Dbm(rx_dbm),
                                    sig.service,
                                    fragment,
                                    slot,
                                    &pathloss,
                                    tx_power,
                                );
                                if age != BEACON_AGE {
                                    let before = if S::ENABLED || (EV && live_ev) {
                                        dev.osc.phase()
                                    } else {
                                        0.0
                                    };
                                    let fired = dev.hear_fire_delayed(sig.sender, prc, age as u32);
                                    if S::ENABLED || (EV && live_ev) {
                                        let after = dev.osc.phase();
                                        if S::ENABLED && (after != before || fired) {
                                            sink.event(&TraceEvent::PhaseAdjust {
                                                slot: slot.0,
                                                device: receiver,
                                                sender: sig.sender,
                                                before,
                                                after,
                                                absorbed: fired,
                                            });
                                        }
                                        if EV && live_ev && (after != before || fired) {
                                            touched.push(receiver);
                                        }
                                    }
                                    if fired {
                                        absorbed.push((receiver, age));
                                    }
                                }
                            }
                            _ => rach2_events.push((receiver, *sig)),
                        }
                    }
                },
            );
        }
        self.counters.add_fault_dropped_frames(fault_drops);
        self.counters.add_fault_dup_frames(fault_dups);
        if fault_drops > 0 {
            self.rec.add("chaos.frames_dropped", fault_drops);
        }
        if fault_dups > 0 {
            self.rec.add("chaos.frames_duplicated", fault_dups);
        }
        for (receiver, sig) in rach2_events {
            self.handle_rach2(receiver, &sig, slot);
        }
        // Absorbed devices fire now; their transmissions stagger into
        // the following slots.
        for (id, age) in absorbed {
            self.enqueue_fire(id, slot, 1, age);
        }
        self.pending_scratch = pending;
    }

    /// Smallest covering arc of the population's phases, in turns.
    /// Departed devices keep free-running oscillators but are absent
    /// from the air, so they are excluded from the convergence metric.
    fn phase_spread(&mut self) -> f64 {
        self.phases_scratch.clear();
        let (churned, active) = (self.churned, &self.active);
        self.phases_scratch.extend(
            self.devices
                .iter()
                .enumerate()
                .filter(|(i, _)| !churned || active[*i])
                .map(|(_, d)| d.osc.phase()),
        );
        ffd2d_osc::sync::phase_spread(&self.phases_scratch)
    }

    /// One materialized slot, wrapped in a phase-keyed scoped timer
    /// when a recorder listens. The key is derived from the phase *at
    /// slot entry*, so a transition inside the body bills to the phase
    /// that paid for the work.
    fn slot_body(&mut self, slot: Slot) -> Option<u64> {
        if !R::ENABLED {
            return self.slot_body_inner(slot);
        }
        let key = match self.phase {
            Phase::Discovery => "engine.slot.discovery",
            Phase::Merge => "engine.slot.merge",
            Phase::Sync => "engine.slot.sync",
        };
        let t_slot = self.rec.start();
        let probe = self.slot_body_inner(slot);
        self.rec.add("engine.slots_materialized", 1);
        self.rec.stop(key, t_slot);
        probe
    }

    /// One materialized slot — the body shared verbatim by the stepped
    /// and event-driven loops. Returns `Some(slot)` when convergence is
    /// declared (the caller breaks out of its loop).
    fn slot_body_inner(&mut self, slot: Slot) -> Option<u64> {
        let world = self.world;
        let cfg = world.config();
        let n = self.devices.len();
        let s = slot.0;

        // Scheduled churn fires before anything else in the slot, so a
        // join participates (and a leave is silent) from this slot on.
        if self.next_churn < self.churn_events.len() {
            self.apply_churn(slot);
        }

        // Phase transitions.
        match self.phase {
            Phase::Discovery if s >= self.discovery_end => {
                self.phase = Phase::Merge;
                if S::ENABLED {
                    self.sink.event(&TraceEvent::PhaseEnter {
                        slot: s,
                        phase: ProtoPhase::Merge,
                    });
                }
                for d in self.devices.iter_mut() {
                    d.coupling = CouplingMode::TreeOnly;
                }
                self.start_round(slot);
            }
            Phase::Merge if s >= self.round_end => {
                if self.commits_total == self.commits_at_round_start {
                    self.stagnant_rounds += 1;
                } else {
                    self.stagnant_rounds = 0;
                }
                self.commits_at_round_start = self.commits_total;
                // Done when all heads are idle, when rounds stopped
                // producing merges (stale phantom edges), or at the
                // safety cap. A recent churn event holds the phase open
                // (`merge_deadline`, 0 when no churn ever happened) so
                // a rejoining device gets time to be discovered before
                // the idle-round exit can fire.
                if ((self.mergecmds_this_round == 0 || self.stagnant_rounds >= 4)
                    && s >= self.merge_deadline)
                    || self.round >= self.max_rounds
                {
                    self.phase = Phase::Sync;
                    if S::ENABLED {
                        self.sink.event(&TraceEvent::PhaseEnter {
                            slot: s,
                            phase: ProtoPhase::Sync,
                        });
                    }
                    for d in self.devices.iter_mut() {
                        d.coupling = CouplingMode::TreeOnly;
                    }
                } else {
                    self.start_round(slot);
                }
            }
            _ => {}
        }

        // Deliver last slot's unicasts. The swap hands the handlers an
        // empty outbox to push replies into; the delivered batch buffer
        // is reused across slots (no per-slot allocation).
        core::mem::swap(&mut self.inbox, &mut self.outbox);
        let mut batch = core::mem::take(&mut self.inbox);
        for &(from, to, msg) in &batch {
            // In-flight unicasts involving a device that churned between
            // send and delivery are lost with it.
            if self.churned && (!self.active[from as usize] || !self.active[to as usize]) {
                continue;
            }
            self.handle_msg(from, to, msg, slot);
        }
        batch.clear();
        self.inbox = batch;

        // Boundary handshake (re)transmissions — only while enough
        // round time remains for the full grant/accept/finalize
        // exchange (late handshakes would straddle the round
        // boundary and leave half-committed edges).
        if self.phase == Phase::Merge && s <= self.round_grace_end {
            for v in 0..n as DeviceId {
                if self.churned && !self.active[v as usize] {
                    continue;
                }
                let st = &self.m[v as usize];
                if st.hs_peer != NONE && !st.committed && st.hs_next_tx == s {
                    let d = &self.devices[v as usize];
                    let sig = ProximitySignal {
                        sender: v,
                        service: d.service,
                        kind: FrameKind::HConnect {
                            to: st.hs_peer,
                            fragment: d.fragment,
                            fragment_size: st.frag_size,
                            head: d.head,
                        },
                    };
                    self.rach2_out.push(sig);
                    let st = &mut self.m[v as usize];
                    if st.hs_retries > 0 {
                        st.hs_retries -= 1;
                        let next = s
                            + HANDSHAKE_TIMEOUT
                            + self.rng.gen_range(0..cfg.protocol.handshake_window as u64);
                        st.hs_next_tx = next;
                        if EV {
                            self.push_wake(next);
                        }
                    }
                }
            }
        }

        // Broadcast traffic + coupling.
        self.broadcast_step(slot);

        // Per-slot population summary — the "slot tick" of the
        // trace. O(n log n), gathered only when a sink listens.
        if S::ENABLED {
            let fragments = self.fragment_count();
            let phase_spread = self.phase_spread();
            let discovered_links: u64 = self
                .devices
                .iter()
                .map(|d| d.table.discovered() as u64)
                .sum();
            self.sink.event(&TraceEvent::SlotStats {
                slot: s,
                fragments,
                phase_spread,
                discovered_links,
                ground_truth_links: self.ground_truth_links,
            });
        }

        // Convergence: all phases within one slot of each other.
        if self.phase == Phase::Sync && s.is_multiple_of(SYNC_CHECK_INTERVAL) {
            let tol = 1.0 / cfg.protocol.period_slots as f64 + 1e-12;
            if n > 0 && self.phase_spread() <= tol {
                if S::ENABLED {
                    self.sink.event(&TraceEvent::Converged { slot: s });
                }
                return Some(s);
            }
        }
        None
    }

    /// Seed the wake queue: every device's first natural fire plus the
    /// discovery→merge boundary. (A device whose oscillator needs `k`
    /// ticks fires in slot `k - 1`: slot bodies tick once each, starting
    /// at slot 0.)
    fn schedule_initial(&mut self) {
        self.push_wake(self.discovery_end);
        for i in 0..self.devices.len() {
            let k = u64::from(self.devices[i].osc.ticks_to_next_fire());
            self.push_wake(k - 1);
        }
        // Churn slots must materialize: joins/leaves happen at the top
        // of the slot body, and the heap keeps them in slot order.
        for i in 0..self.churn_events.len() {
            let at = self.churn_events[i].slot;
            self.push_wake(at);
        }
    }

    /// Pop the next slot to materialize. The wheel already coalesced
    /// duplicates and dropped stale pushes, so every pop is a distinct,
    /// strictly increasing slot; `None` ends the run (pops are ordered,
    /// so once one reaches the horizon every remaining candidate is
    /// past it too).
    fn next_wake(&mut self, max_slots: u64) -> Option<u64> {
        if R::ENABLED {
            self.flush_wheel_stats();
        }
        let s = self.wake.pop()?;
        debug_assert!(s >= self.synced_next, "wheel popped a processed slot");
        if s >= max_slots {
            return None;
        }
        self.rec.add("engine.wakeups_fired", 1);
        if R::ENABLED {
            self.rec
                .observe("engine.wake_heap_depth", self.wake.pending() as u64);
            self.rec
                .observe("engine.wheel_occupancy", self.wake.in_window() as u64);
        }
        Some(s)
    }

    /// Stepped-window counterpart of [`next_wake`](Engine::next_wake):
    /// consume the wheel entry (if any) at exactly slot `s`, keeping
    /// the wheel's clock in lockstep with the materialized slots.
    /// Returns whether a wake was pending — the "would the event
    /// engine have woken here?" half of the density signal.
    fn claim_wake(&mut self, s: u64) -> bool {
        if R::ENABLED {
            self.flush_wheel_stats();
        }
        let woke = self.wake.claim(s);
        if woke {
            self.rec.add("engine.wakeups_fired", 1);
            if R::ENABLED {
                self.rec
                    .observe("engine.wheel_occupancy", self.wake.in_window() as u64);
            }
        }
        woke
    }

    /// Fast-forward every device through the skipped slots
    /// `[synced_next, s)`. These are pure ticks by construction of the
    /// wake set (a fire inside the window would have been scheduled as
    /// a wake), so devices holding a trajectory cursor warp in O(1);
    /// the rest tick literally.
    fn advance_to(&mut self, s: u64) {
        let ticks = s - self.synced_next;
        if ticks == 0 {
            return;
        }
        let mut warps = 0u64;
        let mut literal = 0u64;
        for i in 0..self.devices.len() {
            // Departed devices are frozen: their oscillators stop with
            // them, exactly as in the stepped loop's tick skip.
            if self.churned && !self.active[i] {
                continue;
            }
            let fast = match self.cursors[i] {
                Some(c) => self.traj.advance(c, ticks),
                None => None,
            };
            match fast {
                Some((phase, moved)) => {
                    self.devices[i].osc.warp(phase, ticks);
                    self.cursors[i] = Some(moved);
                    warps += 1;
                }
                None => {
                    self.cursors[i] = None;
                    let fires = self.devices[i].osc.advance_by(ticks);
                    debug_assert_eq!(
                        fires, 0,
                        "device {i} fired inside a skipped window ending at slot {s}"
                    );
                    literal += 1;
                }
            }
        }
        self.synced_next = s;
        if R::ENABLED {
            self.rec.add("engine.slots_skipped", ticks);
            self.rec.add("osc.cursor_warps", warps);
            self.rec.add("osc.literal_advances", literal);
        }
    }

    /// Re-arm the wake queue after materializing slot `s`.
    fn post_schedule(&mut self, s: u64) {
        // Unicasts sent this slot deliver next slot.
        if !self.outbox.is_empty() {
            self.push_wake(s + 1);
        }
        // Devices whose phase changed: re-derive the trajectory cursor
        // from the (canonical) reset phase and re-predict the fire.
        while let Some(v) = self.touched.pop() {
            let phase = self.devices[v as usize].osc.phase();
            // The shared trajectory is tabulated for the nominal
            // period; clock-skewed devices must tick literally.
            let cur = if self.skewed[v as usize] {
                None
            } else {
                self.traj.cursor_for_start(phase)
            };
            self.cursors[v as usize] = cur;
            let k = match cur {
                Some(c) => {
                    self.rec.add("osc.cursor_derived", 1);
                    u64::from(self.traj.ticks_to_fire(c))
                }
                None => {
                    self.rec.add("osc.cursor_fallback", 1);
                    u64::from(self.devices[v as usize].osc.ticks_to_next_fire())
                }
            };
            self.push_wake(s + k);
        }
        match self.phase {
            // The discovery→merge boundary is scheduled up front.
            Phase::Discovery => {}
            // Keep-alive beacons: materialize the next slot in which any
            // device's beacon offset comes up. Each beacon slot re-arms
            // the next one, so the chain spans the whole phase.
            Phase::Merge => {
                if let Some(b) = self.next_beacon_slot(s) {
                    self.push_wake(b);
                }
            }
            // Convergence probes run on the SYNC_CHECK_INTERVAL grid;
            // like the beacons, each probe re-arms the next.
            Phase::Sync => {
                self.push_wake(s + (SYNC_CHECK_INTERVAL - s % SYNC_CHECK_INTERVAL));
            }
        }
    }

    /// Feed the density tracker after materializing slot `s` and apply
    /// the execution-strategy cutover it decides (adaptive mode only).
    /// `woke` is the scheduler half of the busy signal: did a wheel
    /// entry land on this slot?
    fn update_cutover(&mut self, s: u64, woke: bool) {
        let busy = woke || self.fired_this_slot;
        let stepped = self.density.observe(s, busy);
        if stepped != self.live_ev {
            return;
        }
        self.rec.add("engine.cutover_transitions", 1);
        self.live_ev = !stepped;
        if self.live_ev {
            self.reseed_event_wakes(s);
        }
    }

    /// Entering an event-driven window from a stepped one: cursors and
    /// per-device fire predictions went unmaintained, so drop every
    /// cursor back to the literal-ticking fallback (the engine-start
    /// state) and re-predict each live oscillator's next fire. Deadline,
    /// outbox, beacon and probe wakes kept flowing into the wheel
    /// throughout the stepped window, so they need no repair.
    fn reseed_event_wakes(&mut self, s: u64) {
        self.touched.clear();
        for i in 0..self.devices.len() {
            self.cursors[i] = None;
            if self.churned && !self.active[i] {
                continue;
            }
            let k = u64::from(self.devices[i].osc.ticks_to_next_fire());
            self.push_wake(s + k);
        }
    }

    /// The first slot strictly after `s` holding any device's
    /// merge-phase beacon offset.
    fn next_beacon_slot(&self, s: u64) -> Option<u64> {
        if self.beacon_residues.is_empty() {
            return None;
        }
        let period = u64::from(self.world.config().protocol.period_slots);
        let q = s + 1;
        let rem = q % period;
        let idx = self.beacon_residues.partition_point(|&r| r < rem);
        Some(match self.beacon_residues.get(idx) {
            Some(&r) => q + (r - rem),
            None => q + (period - rem) + self.beacon_residues[0],
        })
    }

    fn run(mut self) -> RunOutcome {
        let t_run = self.rec.start();
        let world = self.world;
        let cfg = world.config();
        let n = self.devices.len();
        self.discovery_end =
            cfg.protocol.discovery_periods as u64 * cfg.protocol.period_slots as u64;
        self.max_rounds = 2 * (usize::BITS - n.leading_zeros()) + 16;
        // Completeness denominator for per-slot stats (constant over a
        // static run; the graph is built lazily either way).
        self.ground_truth_links = if S::ENABLED {
            2 * world.proximity_graph().m() as u64
        } else {
            0
        };
        let mut convergence: Option<u64> = None;
        let mut reconvergence: Option<u64> = None;
        let mut last_slot = 0u64;
        if S::ENABLED {
            self.sink.event(&TraceEvent::PhaseEnter {
                slot: 0,
                phase: ProtoPhase::Discovery,
            });
        }

        // Fault-free runs stop at the first successful convergence
        // probe (the paper's metric). With scheduled faults the run
        // keeps going until a probe succeeds *after* the last fault, so
        // graceful degradation (re-convergence time) is observable.
        let last_fault = self.last_fault_slot;
        let max_slots = cfg.sim.max_slots.0;
        if EV {
            self.schedule_initial();
            loop {
                // Acquire the next slot under the current strategy:
                // event-driven windows pop the wheel and skip ahead,
                // stepped windows of an adaptive run materialize every
                // slot (claiming keeps the wheel's clock in lockstep).
                let (s, woke) = if self.live_ev {
                    match self.next_wake(max_slots) {
                        Some(s) => (s, true),
                        None => break,
                    }
                } else {
                    let s = self.synced_next;
                    if s >= max_slots {
                        break;
                    }
                    (s, self.claim_wake(s))
                };
                self.advance_to(s);
                last_slot = s;
                self.fired_this_slot = false;
                let probe = self.slot_body(Slot(s));
                self.synced_next = s + 1;
                if let Some(c) = probe {
                    if convergence.is_none() {
                        convergence = Some(c);
                    }
                    match last_fault {
                        None => break,
                        Some(l) if c > l => {
                            reconvergence = Some(c - l);
                            break;
                        }
                        _ => {}
                    }
                }
                self.post_schedule(s);
                if self.adaptive {
                    self.update_cutover(s, woke);
                }
            }
        } else {
            for s in 0..max_slots {
                last_slot = s;
                let probe = self.slot_body(Slot(s));
                if let Some(c) = probe {
                    if convergence.is_none() {
                        convergence = Some(c);
                    }
                    match last_fault {
                        None => break,
                        Some(l) if c > l => {
                            reconvergence = Some(c - l);
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }

        if S::ENABLED {
            self.sink.event(&TraceEvent::RunEnd {
                slot: last_slot,
                converged: convergence.is_some(),
            });
            self.sink.finish();
        }
        self.rec.stop("engine.run_ns", t_run);
        self.finish(convergence, reconvergence)
    }

    fn finish(self, convergence: Option<u64>, reconvergence: Option<u64>) -> RunOutcome {
        let n = self.devices.len();
        let mut tree_edges: Vec<(DeviceId, DeviceId)> = Vec::new();
        for v in 0..n as DeviceId {
            for &u in &self.tree[v as usize] {
                if v < u {
                    tree_edges.push((v, u));
                }
            }
        }
        tree_edges.sort();
        let discovered_links: u64 = self
            .devices
            .iter()
            .map(|d| d.table.discovered() as u64)
            .sum();
        let service_matches: u64 = self
            .devices
            .iter()
            .map(|d| d.table.service_matches(d.service).len() as u64)
            .sum();
        RunOutcome {
            convergence_time: convergence.map(SlotDuration),
            counters: self.counters,
            tree_edges,
            merge_rounds: self.round,
            discovered_links,
            ground_truth_links: 2 * self.world.proximity_graph().m() as u64,
            service_matches,
            n_devices: n,
            reconvergence_time: reconvergence.map(SlotDuration),
            orphaned_fragments: self.orphaned_fragments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffd2d_graph::tree::is_spanning_tree;

    fn cfg(n: usize, seed: u64) -> ScenarioConfig {
        ScenarioConfig::table1(n)
            .seeded(seed)
            .with_max_slots(SlotDuration(120_000))
    }

    #[test]
    fn small_ideal_world_converges_with_a_spanning_tree() {
        let out = StProtocol::run(&cfg(12, 1).ideal_channel());
        assert!(out.converged(), "{out:?}");
        assert_eq!(out.tree_edges.len(), 11, "tree edges {:?}", out.tree_edges);
        let edges: Vec<ffd2d_graph::Edge> = out
            .tree_edges
            .iter()
            .map(|&(u, v)| ffd2d_graph::Edge::new(u, v, ffd2d_graph::W::new(0.0)))
            .collect();
        assert!(is_spanning_tree(12, &edges));
    }

    #[test]
    fn table1_scenario_converges() {
        let out = StProtocol::run(&cfg(50, 2));
        assert!(out.converged(), "{out:?}");
        assert!(out.merge_rounds >= 1);
        assert!(out.messages() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = StProtocol::run(&cfg(20, 3));
        let b = StProtocol::run(&cfg(20, 3));
        assert_eq!(a, b);
        // A different seed changes the deployment and the whole
        // trajectory; compare full outputs rather than the (slot-
        // quantized, collision-prone) convergence time alone.
        let c = StProtocol::run(&cfg(20, 4));
        assert_ne!(a, c);
    }

    #[test]
    fn tree_matches_sequential_oracle_on_ideal_channel() {
        // With no shadowing/fading, perfect discovery makes the
        // distributed tree equal the sequential Algorithm-1 tree (the
        // unique maximum spanning tree).
        let scenario = cfg(15, 5).ideal_channel();
        let world = World::new(&scenario);
        let out = StProtocol::run_in(&world);
        assert!(out.converged());
        let oracle = crate::reference::build_spanning_tree(world.proximity_graph());
        let oracle_edges: Vec<(DeviceId, DeviceId)> =
            oracle.forest.edges.iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(out.tree_edges, oracle_edges);
    }

    #[test]
    fn discovery_is_nearly_complete() {
        let out = StProtocol::run(&cfg(30, 6));
        assert!(
            out.discovery_completeness() > 0.9,
            "completeness {}",
            out.discovery_completeness()
        );
        assert!(out.service_matches > 0);
    }

    #[test]
    fn two_devices_sync_quickly() {
        let out = StProtocol::run(&cfg(2, 7).ideal_channel());
        assert!(out.converged());
        assert_eq!(out.tree_edges.len(), 1);
    }

    #[test]
    fn message_counts_are_plausible() {
        let out = StProtocol::run(&cfg(40, 8));
        // Fires at least: discovery_periods × n.
        assert!(out.counters.rach1_tx >= 3 * 40);
        // Some merge signalling must have happened.
        assert!(out.counters.rach2_tx > 0, "{:?}", out.counters);
        assert!(out.counters.unicast_tx > 0);
    }
}
