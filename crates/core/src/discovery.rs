//! Per-device neighbour tables — simultaneous neighbour & service
//! discovery.
//!
//! Every proximity signal a device decodes teaches it four things at
//! once (this is the paper's "neighbour discovery and service discovery
//! simultaneously"):
//!
//! * the sender exists and is audible (**neighbour discovery**);
//! * the received power, smoothed over observations, is the link's PS
//!   strength — the spanning-tree **edge weight** of §IV;
//! * inverting the path-loss model over that power yields an **RSSI
//!   distance estimate** (eqs. (6)–(12)) — the ranging contribution;
//! * the preamble's service class reveals the sender's **application
//!   interest**, and the payload its current **fragment**.
//!
//! [`NeighborTable`] is the per-device store of those facts. Weights are
//! EWMA-smoothed: a single deep fade must not permanently misrank an
//! edge, but the table must also track fragment ids promptly.

use serde::{Deserialize, Serialize};

use ffd2d_phy::codec::ServiceClass;
use ffd2d_radio::pathloss::PathLoss;
use ffd2d_radio::rssi::RangingEstimate;
use ffd2d_radio::units::Dbm;
use ffd2d_sim::deployment::{DeviceId, Meters};
use ffd2d_sim::time::Slot;

/// EWMA smoothing factor for PS-strength estimates.
const WEIGHT_EWMA_ALPHA: f64 = 0.25;

/// Everything a device knows about one neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborInfo {
    /// Smoothed PS strength in dBm (the §IV edge weight).
    pub weight_dbm: f64,
    /// Latest RSSI distance estimate.
    pub est_distance: Meters,
    /// Advertised service interest.
    pub service: ServiceClass,
    /// Sender's fragment at last contact.
    pub fragment: DeviceId,
    /// Slot of the last decoded PS.
    pub last_heard: Slot,
    /// Number of PSs decoded from this neighbour.
    pub samples: u32,
}

/// One device's view of its neighbourhood.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeighborTable {
    entries: Vec<Option<NeighborInfo>>,
    known: u32,
}

impl NeighborTable {
    /// An empty table for a population of `n` devices.
    pub fn new(n: usize) -> NeighborTable {
        NeighborTable {
            entries: vec![None; n],
            known: 0,
        }
    }

    /// Number of distinct neighbours discovered.
    #[inline]
    pub fn discovered(&self) -> u32 {
        self.known
    }

    /// Look up a neighbour.
    #[inline]
    pub fn get(&self, id: DeviceId) -> Option<&NeighborInfo> {
        self.entries[id as usize].as_ref()
    }

    /// Record a decoded firing PS.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_fire(
        &mut self,
        sender: DeviceId,
        rx_power: Dbm,
        service: ServiceClass,
        fragment: DeviceId,
        slot: Slot,
        pathloss: &PathLoss,
        tx_power: Dbm,
    ) {
        let est = RangingEstimate::from_rx(tx_power, rx_power, pathloss);
        match &mut self.entries[sender as usize] {
            Some(info) => {
                info.weight_dbm = info.weight_dbm * (1.0 - WEIGHT_EWMA_ALPHA)
                    + rx_power.get() * WEIGHT_EWMA_ALPHA;
                info.est_distance = est.distance;
                info.service = service;
                info.fragment = fragment;
                info.last_heard = slot;
                info.samples += 1;
            }
            slot_entry @ None => {
                *slot_entry = Some(NeighborInfo {
                    weight_dbm: rx_power.get(),
                    est_distance: est.distance,
                    service,
                    fragment,
                    last_heard: slot,
                    samples: 1,
                });
                self.known += 1;
            }
        }
    }

    /// Update only the fragment label of a known neighbour (learned from
    /// merge traffic rather than a fire).
    pub fn update_fragment(&mut self, sender: DeviceId, fragment: DeviceId) {
        if let Some(info) = &mut self.entries[sender as usize] {
            info.fragment = fragment;
        }
    }

    /// The heaviest known edge toward a neighbour *outside* fragment
    /// `my_fragment` — the per-node half of Algorithm 2's
    /// "highest weighted edge ∉ S_v adjacent to v". Ties break toward
    /// the smaller neighbour id, deterministically.
    pub fn best_outgoing(&self, my_fragment: DeviceId) -> Option<(DeviceId, f64)> {
        self.best_outgoing_fresh(my_fragment, Slot(u64::MAX), u64::MAX)
    }

    /// Like [`NeighborTable::best_outgoing`], but only trusts entries
    /// heard within `max_age_slots` of `now`: a fragment label that has
    /// not been refreshed recently may be stale (the neighbour merged
    /// elsewhere), and proposing it would waste a merge round on a void
    /// handshake.
    pub fn best_outgoing_fresh(
        &self,
        my_fragment: DeviceId,
        now: Slot,
        max_age_slots: u64,
    ) -> Option<(DeviceId, f64)> {
        let cutoff = now.0.saturating_sub(max_age_slots);
        let mut best: Option<(DeviceId, f64)> = None;
        for (id, entry) in self.entries.iter().enumerate() {
            let Some(info) = entry else { continue };
            if info.fragment == my_fragment || info.last_heard.0 < cutoff {
                continue;
            }
            let candidate = (id as DeviceId, info.weight_dbm);
            best = Some(match best {
                None => candidate,
                Some(cur) => {
                    if candidate.1 > cur.1 || (candidate.1 == cur.1 && candidate.0 < cur.0) {
                        candidate
                    } else {
                        cur
                    }
                }
            });
        }
        best
    }

    /// Ids of discovered neighbours sharing service `mine`
    /// (application-level proximity).
    pub fn service_matches(&self, mine: ServiceClass) -> Vec<DeviceId> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(id, e)| {
                e.as_ref()
                    .filter(|info| info.service.matches(mine))
                    .map(|_| id as DeviceId)
            })
            .collect()
    }

    /// Iterate over `(id, info)` of all discovered neighbours.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &NeighborInfo)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(id, e)| e.as_ref().map(|info| (id as DeviceId, info)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TX: Dbm = Dbm(23.0);
    const PL: PathLoss = PathLoss::PaperPiecewise;

    fn observe(t: &mut NeighborTable, sender: DeviceId, dbm: f64, fragment: DeviceId) {
        t.observe_fire(
            sender,
            Dbm(dbm),
            ServiceClass::new(1),
            fragment,
            Slot(0),
            &PL,
            TX,
        );
    }

    #[test]
    fn first_observation_creates_entry() {
        let mut t = NeighborTable::new(10);
        assert_eq!(t.discovered(), 0);
        observe(&mut t, 3, -60.0, 3);
        assert_eq!(t.discovered(), 1);
        let Some(info) = t.get(3) else {
            panic!("neighbour 3 missing after first observation")
        };
        assert_eq!(info.weight_dbm, -60.0);
        assert_eq!(info.samples, 1);
        assert!(info.est_distance.0 > 0.0);
    }

    #[test]
    fn ewma_smooths_weight() {
        let mut t = NeighborTable::new(10);
        observe(&mut t, 3, -60.0, 3);
        observe(&mut t, 3, -80.0, 3);
        let Some(info) = t.get(3) else {
            panic!("neighbour 3 missing after two observations")
        };
        let w = info.weight_dbm;
        assert!((w - (-65.0)).abs() < 1e-9, "got {w}");
        assert_eq!(info.samples, 2);
        assert_eq!(t.discovered(), 1);
    }

    #[test]
    fn ranging_estimate_is_plausible() {
        // −60 dBm from 23 dBm tx: loss 83 dB → 40+40log d = 83 → ~11.9 m.
        let mut t = NeighborTable::new(4);
        observe(&mut t, 1, -60.0, 1);
        let Some(info) = t.get(1) else {
            panic!("neighbour 1 missing after observation")
        };
        let d = info.est_distance.0;
        assert!((d - 11.88).abs() < 0.05, "distance {d}");
    }

    #[test]
    fn best_outgoing_skips_own_fragment() {
        let mut t = NeighborTable::new(10);
        observe(&mut t, 1, -50.0, 7); // strongest but same fragment
        observe(&mut t, 2, -70.0, 9);
        observe(&mut t, 3, -65.0, 9);
        let Some(best) = t.best_outgoing(7) else {
            panic!("fragment 7 should see an outgoing neighbour")
        };
        assert_eq!(best.0, 3);
        assert!((best.1 - -65.0).abs() < 1e-12);
        // From fragment 9's perspective, node 1 is outgoing.
        assert_eq!(t.best_outgoing(9).map(|b| b.0), Some(1));
    }

    #[test]
    fn best_outgoing_none_when_all_internal() {
        let mut t = NeighborTable::new(5);
        observe(&mut t, 1, -50.0, 42);
        assert!(t.best_outgoing(42).is_none());
        assert!(NeighborTable::new(5).best_outgoing(0).is_none());
    }

    #[test]
    fn best_outgoing_tie_breaks_to_lower_id() {
        let mut t = NeighborTable::new(10);
        observe(&mut t, 4, -60.0, 1);
        observe(&mut t, 2, -60.0, 1);
        assert_eq!(t.best_outgoing(0).map(|b| b.0), Some(2));
    }

    #[test]
    fn fresh_filter_excludes_stale_entries() {
        let mut t = NeighborTable::new(10);
        t.observe_fire(1, Dbm(-50.0), ServiceClass::new(0), 1, Slot(100), &PL, TX);
        t.observe_fire(2, Dbm(-70.0), ServiceClass::new(0), 2, Slot(900), &PL, TX);
        // At slot 1000 with a 300-slot window, only neighbour 2 counts.
        let Some(best) = t.best_outgoing_fresh(0, Slot(1000), 300) else {
            panic!("fresh neighbour 2 should survive the 300-slot window")
        };
        assert_eq!(best.0, 2);
        // The unbounded variant still sees the stronger stale entry.
        assert_eq!(t.best_outgoing(0).map(|b| b.0), Some(1));
        // Everything stale -> none.
        assert!(t.best_outgoing_fresh(0, Slot(10_000), 300).is_none());
    }

    #[test]
    fn fragment_updates() {
        let mut t = NeighborTable::new(5);
        observe(&mut t, 1, -50.0, 1);
        t.update_fragment(1, 99);
        assert_eq!(t.get(1).map(|i| i.fragment), Some(99));
        assert!(t.best_outgoing(99).is_none());
        // Updating an unknown neighbour is a no-op.
        t.update_fragment(2, 5);
        assert!(t.get(2).is_none());
    }

    #[test]
    fn service_matching() {
        let mut t = NeighborTable::new(6);
        t.observe_fire(1, Dbm(-50.0), ServiceClass::new(2), 1, Slot(0), &PL, TX);
        t.observe_fire(2, Dbm(-50.0), ServiceClass::new(3), 2, Slot(0), &PL, TX);
        t.observe_fire(3, Dbm(-50.0), ServiceClass::new(2), 3, Slot(0), &PL, TX);
        assert_eq!(t.service_matches(ServiceClass::new(2)), vec![1, 3]);
        assert!(t.service_matches(ServiceClass::new(5)).is_empty());
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = NeighborTable::new(8);
        observe(&mut t, 5, -55.0, 5);
        observe(&mut t, 2, -65.0, 2);
        let ids: Vec<DeviceId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![2, 5]);
    }
}
