//! Property-based tests for the core protocol layer.

use proptest::prelude::*;

use ffd2d_core::discovery::NeighborTable;
use ffd2d_core::ranking::BrightnessRanking;
use ffd2d_core::reference::build_spanning_tree;
use ffd2d_graph::mst::kruskal_max_st;
use ffd2d_graph::spatial::SpatialGrid;
use ffd2d_graph::weight::W;
use ffd2d_graph::WeightedGraph;
use ffd2d_phy::codec::ServiceClass;
use ffd2d_radio::pathloss::PathLoss;
use ffd2d_radio::units::Dbm;
use ffd2d_sim::time::Slot;

proptest! {
    /// The sequential Algorithm 1 equals Kruskal on arbitrary graphs
    /// with distinct weights.
    #[test]
    fn algorithm1_equals_kruskal(n in 3usize..20, mask in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut g = WeightedGraph::new(n);
        let mut w = -120.0;
        let mut k = 0;
        'outer: for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if k >= mask.len() {
                    break 'outer;
                }
                if mask[k] {
                    w += 0.5;
                    g.add_edge(a, b, W::new(w));
                }
                k += 1;
            }
        }
        let st = build_spanning_tree(&g);
        let kr = kruskal_max_st(&g);
        prop_assert_eq!(st.forest.edges, kr.edges);
    }

    /// EWMA weights stay within the convex hull of observations, and
    /// the entry always reflects the latest fragment/service.
    #[test]
    fn neighbor_table_ewma_bounds(obs in proptest::collection::vec((-110.0f64..-30.0, 0u32..8, 0u8..4), 1..40)) {
        let mut t = NeighborTable::new(4);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (i, &(dbm, frag, svc)) in obs.iter().enumerate() {
            lo = lo.min(dbm);
            hi = hi.max(dbm);
            t.observe_fire(
                1,
                Dbm(dbm),
                ServiceClass::new(svc),
                frag,
                Slot(i as u64),
                &PathLoss::PaperPiecewise,
                Dbm(23.0),
            );
        }
        let info = t.get(1).unwrap();
        prop_assert!(info.weight_dbm >= lo - 1e-9 && info.weight_dbm <= hi + 1e-9);
        let last = obs.last().unwrap();
        prop_assert_eq!(info.fragment, last.1);
        prop_assert_eq!(info.service, ServiceClass::new(last.2));
        prop_assert_eq!(info.samples as usize, obs.len());
        prop_assert_eq!(t.discovered(), 1);
    }

    /// best_outgoing never returns a same-fragment neighbour and always
    /// returns the maximum eligible weight.
    #[test]
    fn best_outgoing_is_correct(entries in proptest::collection::vec((-110.0f64..-30.0, 0u32..3), 1..10)) {
        let n = entries.len() + 1;
        let mut t = NeighborTable::new(n);
        for (i, &(dbm, frag)) in entries.iter().enumerate() {
            t.observe_fire(
                (i + 1) as u32,
                Dbm(dbm),
                ServiceClass::KEEP_ALIVE,
                frag,
                Slot(0),
                &PathLoss::PaperPiecewise,
                Dbm(23.0),
            );
        }
        let my_fragment = 0u32;
        match t.best_outgoing(my_fragment) {
            Some((id, w)) => {
                let info = t.get(id).unwrap();
                prop_assert_ne!(info.fragment, my_fragment);
                for (other, oinfo) in t.iter() {
                    if oinfo.fragment != my_fragment {
                        prop_assert!(w >= oinfo.weight_dbm - 1e-12, "missed {other}");
                    }
                }
            }
            None => {
                for (_, info) in t.iter() {
                    prop_assert_eq!(info.fragment, my_fragment);
                }
            }
        }
    }

    /// The brightness ranking is a permutation consistent with the
    /// values, and next_brighter chains cover the whole population.
    #[test]
    fn ranking_is_consistent(vals in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let r = BrightnessRanking::build(&vals);
        // Walk the chain from the dimmest: must visit everyone once in
        // non-decreasing brightness order.
        let mut order: Vec<u32> = r.ascending().collect();
        prop_assert_eq!(order.len(), vals.len());
        for w in order.windows(2) {
            prop_assert!(vals[w[0] as usize] <= vals[w[1] as usize]);
        }
        order.sort_unstable();
        order.dedup();
        prop_assert_eq!(order.len(), vals.len(), "not a permutation");
        // next_brighter from every element agrees with rank + 1.
        for id in 0..vals.len() as u32 {
            let rank = r.rank(id);
            match r.next_brighter(id) {
                Some(j) => prop_assert_eq!(r.rank(j), rank + 1),
                None => prop_assert_eq!(rank, vals.len() - 1),
            }
        }
    }

    /// The spatial grid's disc query returns exactly the brute-force
    /// audible set (inclusive boundary), for arbitrary positions, query
    /// centres and radii.
    #[test]
    fn spatial_grid_matches_brute_force(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..80),
        cell in 3.0f64..60.0,
        qx in 0.0f64..100.0,
        qy in 0.0f64..100.0,
        r in 0.0f64..150.0,
    ) {
        let grid = SpatialGrid::new(100.0, 100.0, cell, &points);
        let got = grid.within_vec(qx, qy, r);
        let expected: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| {
                let (dx, dy) = (x - qx, y - qy);
                dx * dx + dy * dy <= r * r
            })
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Quantized placements: every point sits exactly on a cell corner
    /// (the boundary-ownership edge case) and duplicates are common
    /// (co-located devices). Queries centred on lattice points with
    /// radii that are exact multiples of the cell size hit the boundary
    /// `d == r` with equality, which must be *inclusive*.
    #[test]
    fn spatial_grid_handles_boundaries_and_colocated(
        lattice in proptest::collection::vec((0u32..11, 0u32..11), 1..60),
        qcell in (0u32..11, 0u32..11),
        rcells in 0u32..12,
        cell in 1.0f64..25.0,
    ) {
        let points: Vec<(f64, f64)> = lattice
            .iter()
            .map(|&(cx, cy)| (cx as f64 * cell, cy as f64 * cell))
            .collect();
        let (w, h) = (10.0 * cell, 10.0 * cell);
        let grid = SpatialGrid::new(w, h, cell, &points);
        let (qx, qy) = (qcell.0 as f64 * cell, qcell.1 as f64 * cell);
        let r = rcells as f64 * cell;
        let got = grid.within_vec(qx, qy, r);
        let expected: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| {
                let (dx, dy) = (x - qx, y - qy);
                dx * dx + dy * dy <= r * r
            })
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(&got, &expected);
        // Co-located points must all be reported together: any reported
        // point drags every duplicate of it along.
        for &id in &got {
            let p = points[id as usize];
            for (j, &q) in points.iter().enumerate() {
                if q == p {
                    prop_assert!(got.contains(&(j as u32)), "duplicate {j} missing");
                }
            }
        }
    }

    /// Re-bucketing after movement answers queries identically to a
    /// freshly-built grid over the moved points.
    #[test]
    fn spatial_grid_rebucket_equals_fresh(
        points in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..40),
        moved in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..40),
        r in 0.0f64..80.0,
    ) {
        let n = points.len().min(moved.len());
        let before = &points[..n];
        let after = &moved[..n];
        let mut grid = SpatialGrid::new(50.0, 50.0, 7.0, before);
        grid.rebucket(after);
        let fresh = SpatialGrid::new(50.0, 50.0, 7.0, after);
        for &(qx, qy) in after {
            prop_assert_eq!(grid.within_vec(qx, qy, r), fresh.within_vec(qx, qy, r));
        }
    }
}
