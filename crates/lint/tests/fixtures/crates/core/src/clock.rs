//! Seeded `wall-clock` violation: reading the wall clock in a
//! deterministic crate.

use std::time::Instant;

pub fn elapsed_ns() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
