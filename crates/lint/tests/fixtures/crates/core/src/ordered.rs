//! Seeded `ordered-iteration` violation: a hash map declared in a
//! deterministic crate with no justification.

use std::collections::HashMap;

pub struct Index {
    pub map: HashMap<u64, u32>,
}
