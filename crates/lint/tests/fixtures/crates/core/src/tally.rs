//! Seeded `counter-discipline` violation: a raw `+=` on a counter
//! field instead of the saturating helper.

pub struct Counters {
    pub rx_ok: u64,
}

pub fn bump(c: &mut Counters) {
    c.rx_ok += 1;
}
