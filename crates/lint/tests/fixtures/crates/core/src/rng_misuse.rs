//! Seeded `rng-discipline` violation: ad-hoc seed arithmetic outside
//! `ffd2d_sim::rng`.

pub fn derive(seed: u64) -> u64 {
    seed ^ 0xBEEF
}
