//! Seeded `panic-discipline` violation: the file name matches an
//! engine hot path, so the bare unwrap below must be flagged.

pub fn parent_of(p: Option<u32>) -> u32 {
    p.unwrap()
}
