//! Fixture crate root: carries both required headers, so the hygiene
//! rule stays quiet and the seeded violations in the sibling files are
//! the only findings this crate produces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
