//! Seeded `crate-hygiene` violation: this crate root carries the docs
//! lint but omits the mandatory unsafe-forbid attribute.

#![warn(missing_docs)]
