// ffd2d-lint: allow(rng-discipline) — fixture: stale suppression covering nothing
//! Seeded `unused-allow` violation: the directive above suppresses
//! nothing, so the meta rule flags it as a hole in the audit trail.

pub fn nothing() {}
