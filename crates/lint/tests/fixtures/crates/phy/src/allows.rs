//! A correctly-justified suppression: the violation below is covered
//! by an allow with a reason, so it must NOT be reported — but it must
//! show up in the report's `allows_used` tally.

use std::time::Instant;

pub fn timed() -> Instant {
    // ffd2d-lint: allow(wall-clock) — fixture: stands in for recorder-gated timing
    Instant::now()
}
