//! Seeded `bare-allow` violation: the suppression works, but it
//! carries no reason string, so the meta rule flags it.

pub struct S {
    // ffd2d-lint: allow(ordered-iteration)
    pub m: std::collections::HashMap<u64, u32>,
}
