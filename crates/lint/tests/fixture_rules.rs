//! End-to-end rule coverage: a fixture mini-workspace with exactly one
//! seeded violation per rule, plus the self-clean gate on the real
//! workspace the binary enforces in CI.

use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn each_rule_catches_its_seeded_fixture_violation() {
    let report = ffd2d_lint::scan_workspace(&fixture_root()).expect("fixture scan");
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect();

    let expected: &[(&str, &str, u32)] = &[
        ("ordered-iteration", "crates/core/src/ordered.rs", 7),
        ("wall-clock", "crates/core/src/clock.rs", 7),
        ("rng-discipline", "crates/core/src/rng_misuse.rs", 5),
        ("counter-discipline", "crates/core/src/tally.rs", 9),
        ("panic-discipline", "crates/core/src/st_protocol.rs", 5),
        ("crate-hygiene", "crates/graph/src/lib.rs", 1),
        ("bare-allow", "crates/phy/src/bare.rs", 5),
        ("unused-allow", "crates/phy/src/stale.rs", 1),
    ];
    for want in expected {
        assert!(
            got.contains(want),
            "missing expected finding {want:?}; got {got:#?}"
        );
    }
    assert_eq!(
        got.len(),
        expected.len(),
        "unexpected extra findings: {got:#?}"
    );
}

#[test]
fn justified_allow_suppresses_and_is_tallied() {
    let report = ffd2d_lint::scan_workspace(&fixture_root()).expect("fixture scan");
    // No finding may point at the correctly-suppressed file.
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.file != "crates/phy/src/allows.rs"),
        "allow with reason failed to suppress: {:#?}",
        report.findings
    );
    // Two directives suppressed something: the justified one in
    // allows.rs and the reason-less one in bare.rs (which is still
    // *used* — that is exactly why it gets its own bare-allow finding
    // rather than an unused-allow one).
    assert_eq!(report.allows_used, 2);
}

#[test]
fn fixture_json_report_names_every_finding() {
    let report = ffd2d_lint::scan_workspace(&fixture_root()).expect("fixture scan");
    let json = report.to_json();
    for rule in [
        "ordered-iteration",
        "wall-clock",
        "rng-discipline",
        "counter-discipline",
        "panic-discipline",
        "crate-hygiene",
        "bare-allow",
        "unused-allow",
    ] {
        assert!(json.contains(rule), "JSON report missing rule {rule}");
    }
}

/// The gate CI enforces with `--deny`: the shipped workspace must scan
/// clean — every violation either fixed or carrying a reasoned allow.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = ffd2d_lint::scan_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace has unsuppressed determinism findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned",
        report.files_scanned
    );
}
