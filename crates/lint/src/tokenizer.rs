//! Lightweight Rust lexer for the lint passes.
//!
//! Produces identifier / punctuation / literal tokens tagged with line
//! numbers; comments and string *contents* are stripped so rule passes
//! can match token sequences without being fooled by prose. Line
//! comments are additionally searched for `ffd2d-lint: allow(...)`
//! suppression directives.
//!
//! This is deliberately not a full lexer — just enough of one to stay
//! honest about strings (including raw strings), nested block comments,
//! char literals vs. lifetimes, and multi-char operators the rules care
//! about (`::`, `+=`, `-=`, `->`).

use std::collections::BTreeMap;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text. Literals are normalized: every string collapses to
    /// `""`, every char literal to `''`; numbers keep their digits.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A parsed `// ffd2d-lint: allow(rule, …) — reason` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Rules the directive suppresses.
    pub rules: Vec<String>,
    /// Whether a non-empty reason string follows the rule list.
    pub has_reason: bool,
    /// Set by the rule passes when the directive suppresses a finding.
    pub used: bool,
}

/// Marker the suppression comments carry.
pub const DIRECTIVE_TAG: &str = "ffd2d-lint:";

/// Tokenize `text`; returns the token stream and any allow directives
/// keyed by the line their comment sits on.
pub fn tokenize(text: &str) -> (Vec<Tok>, BTreeMap<u32, AllowDirective>) {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut allows = BTreeMap::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = match text[i..].chars().next() {
            Some(c) => c,
            None => break,
        };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += c.len_utf8(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr_newline(bytes, i);
                // Directives live in plain `//` comments only — doc
                // comments (`///`, `//!`) merely *describe* the syntax.
                let doc = matches!(bytes.get(i + 2), Some(b'/') | Some(b'!'));
                if !doc {
                    if let Some(d) = parse_directive(&text[i..end]) {
                        allows.insert(line, d);
                    }
                }
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
                toks.push(Tok {
                    text: "\"\"".into(),
                    line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                toks.push(Tok {
                    text: "\"\"".into(),
                    line,
                });
            }
            '\'' => {
                // Char literal or lifetime. A char literal closes with a
                // `'` within a couple of chars (`'x'`, `'\n'`, `'\u{..}'`);
                // a lifetime never closes.
                if let Some(end) = char_literal_end(text, i) {
                    toks.push(Tok {
                        text: "''".into(),
                        line,
                    });
                    i = end;
                } else {
                    // Lifetime: consume the quote + identifier.
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                }
            }
            c if c == '_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    text: text[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_continue(bytes[i])
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())))
                {
                    i += 1;
                }
                toks.push(Tok {
                    text: text[start..i].to_string(),
                    line,
                });
            }
            _ => {
                // Punctuation; join the few multi-char operators the
                // rules match on. Non-ASCII chars (legal only inside
                // comments/strings/idents in real Rust) pass through as
                // single opaque tokens.
                let len = if c.is_ascii() {
                    let two = &bytes[i..(i + 2).min(bytes.len())];
                    let joined = matches!(
                        two,
                        b"::"
                            | b"+="
                            | b"-="
                            | b"*="
                            | b"/="
                            | b"^="
                            | b"|="
                            | b"&="
                            | b"->"
                            | b"=>"
                    );
                    if joined {
                        2
                    } else {
                        1
                    }
                } else {
                    c.len_utf8()
                };
                toks.push(Tok {
                    text: text[i..i + len].to_string(),
                    line,
                });
                i += len;
            }
        }
    }
    (toks, allows)
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| from + p)
        .unwrap_or(bytes.len())
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphanumeric()
}

/// Skip a normal (possibly `b`-prefixed) string starting at the `"`.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Does `r…` / `b…` at `i` start a raw or byte string (`r"`, `r#"`,
/// `br"`, `b"`, …)? Otherwise it's an ordinary identifier.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    j > i && j < bytes.len() && bytes[j] == b'"'
}

/// Skip a raw/byte string starting at its `r`/`b` prefix.
fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = i < bytes.len() && bytes[i] == b'r';
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < bytes.len() && bytes[i] == b'"');
    if !raw {
        return skip_string(bytes, i, line);
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// If `'` at `i` opens a char literal, return the byte index just past
/// its closing quote; `None` means it's a lifetime.
fn char_literal_end(text: &str, i: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let next = text[i + 1..].chars().next()?;
    if next == '\\' {
        // Escape: find the closing quote within a small window
        // (`'\u{10FFFF}'` is the longest).
        let mut j = i + 2;
        let limit = (i + 12).min(bytes.len());
        while j < limit {
            if bytes[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    // `'x'` — any single char (possibly multi-byte) then a quote.
    let after = i + 1 + next.len_utf8();
    if next != '\'' && bytes.get(after) == Some(&b'\'') {
        return Some(after + 1);
    }
    None
}

/// Parse a `ffd2d-lint: allow(a, b) — reason` directive out of a line
/// comment's text, if present.
fn parse_directive(comment: &str) -> Option<AllowDirective> {
    let at = comment.find(DIRECTIVE_TAG)?;
    let rest = comment[at + DIRECTIVE_TAG.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix("—")
        .or_else(|| tail.strip_prefix("--"))
        .or_else(|| tail.strip_prefix('-'))
        .or_else(|| tail.strip_prefix('–'))
        .map(str::trim)
        .unwrap_or("");
    Some(AllowDirective {
        rules,
        has_reason: !reason.is_empty(),
        used: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).0.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let t = texts("let x = \"HashMap in a string\"; // HashMap in a comment\n/* Instant */ y");
        assert!(t.contains(&"x".to_string()));
        assert!(t.contains(&"\"\"".to_string()));
        assert!(!t.contains(&"HashMap".to_string()));
        assert!(!t.contains(&"Instant".to_string()));
        assert!(t.contains(&"y".to_string()));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let t = texts("r#\"Instant::now()\"# 'a' '\\n' fn f<'a>(x: &'a str) {}");
        assert!(!t.contains(&"Instant".to_string()));
        assert_eq!(t.iter().filter(|s| *s == "''").count(), 2);
        assert!(t.contains(&"f".to_string()));
        assert!(!t.iter().any(|s| s == "a" || s == "'a"));
    }

    #[test]
    fn multi_char_ops_join() {
        let t = texts("a += 1; b::c(); d -> e");
        assert!(t.contains(&"+=".to_string()));
        assert!(t.contains(&"::".to_string()));
        assert!(t.contains(&"->".to_string()));
    }

    #[test]
    fn line_numbers_advance() {
        let (toks, _) = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn directive_parsing() {
        let (_, allows) =
            tokenize("// ffd2d-lint: allow(wall-clock) — recorder-gated timing\nlet x = 1;\n");
        let d = allows.get(&1).expect("directive on line 1");
        assert_eq!(d.rules, vec!["wall-clock".to_string()]);
        assert!(d.has_reason);

        let (_, allows) = tokenize("// ffd2d-lint: allow(panic-discipline)\nx();\n");
        assert!(!allows.get(&1).unwrap().has_reason);

        let (_, allows) = tokenize("// ffd2d-lint: allow(a, b) -- two rules\n");
        assert_eq!(allows.get(&1).unwrap().rules.len(), 2);
    }
}
