//! The determinism-invariant rule passes.
//!
//! Each pass walks the token stream of one [`SourceFile`] and emits
//! candidate findings; suppression via `ffd2d-lint: allow(...)`
//! directives (same line or the line directly above) is resolved here,
//! and the two meta rules (`bare-allow`, `unused-allow`) keep the
//! suppressions themselves auditable.

use crate::tokenizer::AllowDirective;
use crate::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose non-test code must not let hash-iteration order escape:
/// everything that executes between seed and `RunOutcome`.
const DETERMINISTIC_CRATES: &[&str] = &["core", "sim", "phy", "osc", "graph", "radio", "chaos"];

/// Crates allowed to read the wall clock: the telemetry layer itself
/// (recorder-gated, provably outcome-neutral) and the offline harnesses.
const WALL_CLOCK_EXEMPT: &[&str] = &["telemetry", "bench", "experiments", "lint"];

/// Crates exempt from RNG-stream discipline: offline harnesses that
/// never run inside a simulated trial.
const RNG_EXEMPT: &[&str] = &["bench", "experiments", "lint"];

/// The one sanctioned home of seed arithmetic and RNG construction.
const RNG_HOME: &str = "crates/sim/src/rng.rs";

/// Fields of `ffd2d_sim::counters::Counters` (mirrored in trace
/// timeline rows): only the saturating helpers may mutate them.
const COUNTER_FIELDS: &[&str] = &[
    "rach1_tx",
    "rach2_tx",
    "unicast_tx",
    "rx_ok",
    "rx_collision",
    "rx_below_threshold",
    "fault_dropped_frames",
    "fault_dup_frames",
];

/// The saturating tally helpers themselves — the only files where raw
/// arithmetic on counter fields is the implementation, not a bypass.
const COUNTER_HOMES: &[&str] = &["crates/sim/src/counters.rs"];

/// Engine/medium hot paths where a panic is never an acceptable way to
/// surface a bug mid-run.
const PANIC_HOT_PATHS: &[&str] = &[
    "crates/core/src/st_protocol.rs",
    "crates/core/src/world.rs",
    "crates/baseline/src/fst.rs",
    "crates/phy/src/medium.rs",
];

/// Methods whose call on a hash container lets iteration order escape.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Run every rule over `source`; returns the unsuppressed findings and
/// the number of allow directives that suppressed something.
pub fn check_file(source: &SourceFile) -> (Vec<Finding>, usize) {
    let mut allows: BTreeMap<u32, AllowDirective> = source.allows.clone();
    let mut raw: Vec<(&'static str, u32, String)> = Vec::new();

    ordered_iteration(source, &mut raw);
    wall_clock(source, &mut raw);
    rng_discipline(source, &mut raw);
    counter_discipline(source, &mut raw);
    panic_discipline(source, &mut raw);
    crate_hygiene(source, &mut raw);

    let mut findings = Vec::new();
    for (rule, line, message) in raw {
        let suppressed = [line, line.saturating_sub(1)].iter().any(|l| {
            allows
                .get_mut(l)
                .filter(|d| d.rules.iter().any(|r| r == rule))
                .map(|d| {
                    d.used = true;
                    true
                })
                .unwrap_or(false)
        });
        if !suppressed {
            findings.push(Finding {
                rule,
                file: source.scope.rel_path.clone(),
                line,
                message,
            });
        }
    }

    // Meta rules: suppressions must carry a reason and must suppress
    // something — a stale allow is a hole in the audit trail.
    let mut allows_used = 0usize;
    for (line, d) in &allows {
        if d.used {
            allows_used += 1;
            if !d.has_reason {
                findings.push(Finding {
                    rule: "bare-allow",
                    file: source.scope.rel_path.clone(),
                    line: *line,
                    message: format!(
                        "allow({}) has no reason string; write `ffd2d-lint: allow(rule) — why`",
                        d.rules.join(", ")
                    ),
                });
            }
        } else {
            findings.push(Finding {
                rule: "unused-allow",
                file: source.scope.rel_path.clone(),
                line: *line,
                message: format!(
                    "allow({}) suppressed nothing; remove it or fix the rule list",
                    d.rules.join(", ")
                ),
            });
        }
    }
    (findings, allows_used)
}

/// Walk back over a `foo::bar::` path prefix: returns the index of the
/// first segment of the path containing the token at `k`.
fn path_start(source: &SourceFile, k: usize) -> usize {
    let mut j = k;
    while j >= 2 && source.toks[j - 1].text == "::" {
        j -= 2;
    }
    j
}

fn tok(source: &SourceFile, k: usize) -> &str {
    source.toks.get(k).map(|t| t.text.as_str()).unwrap_or("")
}

/// Rule `ordered-iteration`: in deterministic crates, flag (a) any
/// hash-container type in a binding position or constructor — the
/// container itself must be justified, since a later `for … in` over it
/// is one edit away — and (b) iteration-order-escaping calls on
/// bindings known to be hash-typed.
fn ordered_iteration(source: &SourceFile, out: &mut Vec<(&'static str, u32, String)>) {
    if !DETERMINISTIC_CRATES.contains(&source.scope.crate_name.as_str()) {
        return;
    }
    let toks = &source.toks;

    // Names bound to HashMap/HashSet (fields, params, lets).
    let mut hash_idents: BTreeSet<&str> = BTreeSet::new();
    for k in 0..toks.len() {
        let t = &toks[k].text;
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        let j = path_start(source, k);
        if j >= 2 && tok(source, j - 1) == ":" {
            hash_idents.insert(&toks[j - 2].text);
        }
        // `let [mut] name = [path::]Hash{Map,Set}::…`
        if tok(source, k + 1) == "::" {
            let mut b = j;
            let floor = j.saturating_sub(6);
            while b > floor {
                b -= 1;
                if toks[b].text == "let" {
                    let name = if tok(source, b + 1) == "mut" {
                        b + 2
                    } else {
                        b + 1
                    };
                    hash_idents.insert(&toks[name].text);
                    break;
                }
                if toks[b].text == ";" || toks[b].text == "{" {
                    break;
                }
            }
        }
    }

    for k in 0..toks.len() {
        if source.in_test[k] {
            continue;
        }
        let t = toks[k].text.as_str();
        // (a) hash container in a type/constructor position.
        if t == "HashMap" || t == "HashSet" {
            let j = path_start(source, k);
            let prev = if j == 0 { "" } else { tok(source, j - 1) };
            let decl = matches!(prev, ":" | "->" | "<");
            let construct = tok(source, k + 1) == "::"
                && matches!(
                    tok(source, k + 2),
                    "new" | "with_capacity" | "default" | "from"
                );
            if decl || construct {
                out.push((
                    "ordered-iteration",
                    toks[k].line,
                    format!(
                        "{t} in deterministic crate `{}`: iteration order could escape into \
                         outcomes — use BTreeMap/BTreeSet or justify with an allow proving \
                         order never escapes",
                        source.scope.crate_name
                    ),
                ));
            }
        }
        // (b) order-escaping method call on a known hash binding.
        if hash_idents.contains(t)
            && tok(source, k + 1) == "."
            && ITER_METHODS.contains(&tok(source, k + 2))
            && tok(source, k + 3) == "("
        {
            out.push((
                "ordered-iteration",
                toks[k].line,
                format!(
                    "`{}.{}()` iterates a hash container: order escapes into downstream state",
                    t,
                    tok(source, k + 2)
                ),
            ));
        }
        // (b') `for … in <expr containing a hash binding>`.
        if t == "for" && tok(source, k + 1) != "<" {
            let mut j = k + 1;
            let mut saw_in = false;
            while j < toks.len() && j < k + 40 {
                match toks[j].text.as_str() {
                    "in" => saw_in = true,
                    "{" | ";" => break,
                    name if saw_in && hash_idents.contains(name) => {
                        out.push((
                            "ordered-iteration",
                            toks[k].line,
                            format!(
                                "`for … in` over hash container `{name}`: iteration order escapes"
                            ),
                        ));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// Rule `wall-clock`: `Instant::now()` / any `SystemTime` use outside
/// the telemetry/bench/experiments crates. Timing a deterministic path
/// is fine only when recorder-gated and provably outcome-neutral —
/// which an allow must assert.
fn wall_clock(source: &SourceFile, out: &mut Vec<(&'static str, u32, String)>) {
    if WALL_CLOCK_EXEMPT.contains(&source.scope.crate_name.as_str()) {
        return;
    }
    for (k, token) in source.toks.iter().enumerate() {
        if source.in_test[k] {
            continue;
        }
        let t = token.text.as_str();
        if t == "Instant" && tok(source, k + 1) == "::" && tok(source, k + 2) == "now" {
            out.push((
                "wall-clock",
                token.line,
                "Instant::now() in a deterministic crate: wall-clock must never reach RNG \
                 streams or outcomes"
                    .to_string(),
            ));
        }
        if t == "SystemTime" {
            out.push((
                "wall-clock",
                token.line,
                "SystemTime in a deterministic crate: wall-clock must never reach RNG streams \
                 or outcomes"
                    .to_string(),
            ));
        }
    }
}

/// Rule `rng-discipline`: seed arithmetic and generator construction
/// belong in `ffd2d_sim::rng`; everywhere else draws must route through
/// a named `StreamId`.
fn rng_discipline(source: &SourceFile, out: &mut Vec<(&'static str, u32, String)>) {
    if RNG_EXEMPT.contains(&source.scope.crate_name.as_str()) || source.scope.rel_path == RNG_HOME {
        return;
    }
    let toks = &source.toks;
    for k in 0..toks.len() {
        if source.in_test[k] {
            continue;
        }
        let t = toks[k].text.as_str();
        match t {
            "thread_rng" | "from_entropy" => out.push((
                "rng-discipline",
                toks[k].line,
                format!("`{t}` is nondeterministic by construction"),
            )),
            "seed_from_u64" | "from_seed" | "from_state" | "with_raw_stream"
                if tok(source, k + 1) == "(" =>
            {
                out.push((
                    "rng-discipline",
                    toks[k].line,
                    format!(
                        "`{t}(` constructs an RNG outside ffd2d_sim::rng — use \
                         StreamRng::new with a named StreamId"
                    ),
                ))
            }
            "SplitMix64"
                if tok(source, k + 1) == "::" && matches!(tok(source, k + 2), "mix" | "new") =>
            {
                out.push((
                    "rng-discipline",
                    toks[k].line,
                    "seed mixing outside ffd2d_sim::rng — add a named derivation helper there \
                     instead"
                        .to_string(),
                ))
            }
            _ => {}
        }
        // Seed arithmetic heuristic: an identifier containing "seed"
        // fed through xor / wrapping arithmetic.
        if t.to_ascii_lowercase().contains("seed")
            && t.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            let next = tok(source, k + 1);
            let arith = next == "^"
                || (k > 0 && toks[k - 1].text == "^")
                || (next == "." && tok(source, k + 2).starts_with("wrapping_"));
            if arith {
                out.push((
                    "rng-discipline",
                    toks[k].line,
                    format!(
                        "seed arithmetic on `{t}` outside ffd2d_sim::rng — derivation must \
                         live with the stream discipline"
                    ),
                ));
            }
        }
    }
}

/// Rule `counter-discipline`: raw `+=`/`-=` on `Counters` fields (and
/// their trace-timeline mirrors) wraps at the u64 ceiling; the
/// saturating helpers are the only sanctioned mutation.
fn counter_discipline(source: &SourceFile, out: &mut Vec<(&'static str, u32, String)>) {
    if COUNTER_HOMES.contains(&source.scope.rel_path.as_str()) || source.scope.crate_name == "lint"
    {
        return;
    }
    for (k, token) in source.toks.iter().enumerate() {
        if source.in_test[k] {
            continue;
        }
        let t = token.text.as_str();
        if COUNTER_FIELDS.contains(&t) && matches!(tok(source, k + 1), "+=" | "-=") {
            out.push((
                "counter-discipline",
                token.line,
                format!(
                    "raw `{t} {}` — use the saturating Counters helpers (note_*/add_*) so \
                     fleet-scale tallies clamp instead of wrapping",
                    tok(source, k + 1)
                ),
            ));
        }
    }
}

/// Rule `panic-discipline`: `unwrap()`/`expect(` in engine/medium hot
/// paths. A mid-run panic tears down the trial, and recovery paths
/// differ across engines — surface errors as values instead.
fn panic_discipline(source: &SourceFile, out: &mut Vec<(&'static str, u32, String)>) {
    if !PANIC_HOT_PATHS.contains(&source.scope.rel_path.as_str()) {
        return;
    }
    let toks = &source.toks;
    for k in 0..toks.len() {
        if source.in_test[k] {
            continue;
        }
        let t = toks[k].text.as_str();
        if (t == "unwrap" || t == "expect")
            && k > 0
            && toks[k - 1].text == "."
            && tok(source, k + 1) == "("
        {
            out.push((
                "panic-discipline",
                toks[k].line,
                format!("`.{t}(` in an engine/medium hot path — handle the None/Err or justify with an allow"),
            ));
        }
    }
}

/// Rule `crate-hygiene`: every workspace crate root carries
/// `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
fn crate_hygiene(source: &SourceFile, out: &mut Vec<(&'static str, u32, String)>) {
    if !source.scope.is_lib_root {
        return;
    }
    if !source.text.contains("#![forbid(unsafe_code)]") {
        out.push((
            "crate-hygiene",
            1,
            format!(
                "crate `{}` is missing `#![forbid(unsafe_code)]`",
                source.scope.crate_name
            ),
        ));
    }
    if !source.text.contains("#![warn(missing_docs)]")
        && !source.text.contains("#![deny(missing_docs)]")
    {
        out.push((
            "crate-hygiene",
            1,
            format!(
                "crate `{}` is missing `#![warn(missing_docs)]`",
                source.scope.crate_name
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileScope;

    fn check(rel: &str, src: &str) -> Vec<Finding> {
        let source = SourceFile::parse(FileScope::from_rel_path(rel), src.to_string());
        check_file(&source).0
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_container_flagged_in_deterministic_crate_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u32> }\n";
        assert_eq!(
            rules_of(&check("crates/core/src/x.rs", src)),
            ["ordered-iteration"]
        );
        assert!(check("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn iteration_over_hash_binding_flagged() {
        let src = "struct S { m: HashMap<u64, u32> }\nfn f(s: &S) { for k in s.m.keys() {} }\n";
        let f = check("crates/core/src/x.rs", src);
        assert!(f.iter().any(|f| f.message.contains("keys")), "{f:?}");
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts() {
        let src = "struct S {\n    // ffd2d-lint: allow(ordered-iteration) — lookup-only\n    m: HashMap<u64, u32>,\n}\n";
        let source = SourceFile::parse(
            FileScope::from_rel_path("crates/core/src/x.rs"),
            src.to_string(),
        );
        let (findings, used) = check_file(&source);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn bare_allow_is_flagged() {
        let src = "// ffd2d-lint: allow(ordered-iteration)\nstruct S { m: HashMap<u64, u32> }\n";
        let f = check("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["bare-allow"]);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// ffd2d-lint: allow(wall-clock) — stale\nfn f() {}\n";
        let f = check("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["unused-allow"]);
    }

    #[test]
    fn wall_clock_scoping() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_of(&check("crates/phy/src/x.rs", src)), ["wall-clock"]);
        assert!(check("crates/telemetry/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); x.unwrap(); }\n}\n";
        assert!(check("crates/phy/src/medium.rs", src).is_empty());
    }

    #[test]
    fn rng_discipline_patterns() {
        let src = "fn f(seed: u64) { let r = Xoshiro256StarStar::seed_from_u64(seed ^ 1); }\n";
        let f = check("crates/core/src/x.rs", src);
        assert!(f.iter().all(|f| f.rule == "rng-discipline"));
        assert_eq!(f.len(), 2, "{f:?}"); // construction + seed xor
        assert!(check("crates/sim/src/rng.rs", src).is_empty());
    }

    #[test]
    fn counter_discipline_flags_raw_bumps() {
        let src = "fn f(c: &mut Counters) { c.rx_ok += 1; }\n";
        assert_eq!(
            rules_of(&check("crates/phy/src/x.rs", src)),
            ["counter-discipline"]
        );
        // The helpers' own home is exempt.
        assert!(check("crates/sim/src/counters.rs", src).is_empty());
    }

    #[test]
    fn panic_discipline_only_in_hot_paths() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_of(&check("crates/core/src/world.rs", src)),
            ["panic-discipline"]
        );
        assert!(check("crates/core/src/outcome.rs", src).is_empty());
        // unwrap_or is fine.
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(check("crates/core/src/world.rs", src).is_empty());
    }

    #[test]
    fn crate_hygiene_requires_headers() {
        let f = check("crates/core/src/lib.rs", "//! docs\n");
        assert_eq!(rules_of(&f), ["crate-hygiene", "crate-hygiene"]);
        let clean = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        assert!(check("crates/core/src/lib.rs", clean).is_empty());
    }
}
