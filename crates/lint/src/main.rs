//! `ffd2d-lint` CLI — scan the workspace for determinism-invariant
//! violations.
//!
//! ```text
//! ffd2d-lint [--root DIR] [--json] [--json-out FILE] [--deny] [FILES…]
//! ```
//!
//! * `--root DIR`     workspace root to scan (default: `.`, walking up
//!   to the first directory containing `crates/` if needed)
//! * `--json`         print the machine-readable report to stdout
//! * `--json-out F`   additionally write the JSON report to `F`
//!   (published as a CI artifact on failure)
//! * `--deny`         exit 2 when any unsuppressed finding remains
//! * `FILES…`         scan only these files (fixture/debug use) instead
//!   of the whole workspace
//!
//! Exit codes: 0 clean (or findings without `--deny`), 2 findings under
//! `--deny`, 1 usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut deny = false;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--json-out" => match args.next() {
                Some(f) => json_out = Some(PathBuf::from(f)),
                None => return usage("--json-out needs a path"),
            },
            "--deny" => deny = true,
            "--help" | "-h" => {
                eprintln!("ffd2d-lint [--root DIR] [--json] [--json-out FILE] [--deny] [FILES…]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    // Walk up from `root` to the workspace root if invoked from a
    // member crate (cargo run sets cwd to the invocation dir).
    if files.is_empty() && !root.join("crates").is_dir() {
        let mut probe = root.canonicalize().unwrap_or_else(|_| root.clone());
        while !probe.join("crates").is_dir() {
            let Some(parent) = probe.parent() else { break };
            probe = parent.to_path_buf();
        }
        if probe.join("crates").is_dir() {
            root = probe;
        }
    }

    let report = if files.is_empty() {
        ffd2d_lint::scan_workspace(&root)
    } else {
        ffd2d_lint::scan_files(&root, &files)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ffd2d-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("ffd2d-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "ffd2d-lint: {} finding(s), {} file(s) scanned, {} allow(s) in use",
            report.findings.len(),
            report.files_scanned,
            report.allows_used
        );
    }

    if deny && !report.is_clean() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ffd2d-lint: {msg}");
    eprintln!("usage: ffd2d-lint [--root DIR] [--json] [--json-out FILE] [--deny] [FILES…]");
    ExitCode::FAILURE
}
