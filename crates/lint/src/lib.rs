//! # ffd2d-lint — workspace determinism-invariant checker
//!
//! Every layer of this workspace leans on one contract: **same seed ⇒
//! bit-identical [`RunOutcome`]s and byte-identical JSONL**, regardless
//! of engine mode, worker count, or instrumentation. The runtime
//! equivalence suites (`engine_equivalence`, `medium_equivalence`,
//! `telemetry`, `chaos`, `gain_cache`) verify that contract after the
//! fact, on the configurations they happen to exercise. This crate
//! closes the gap from the other side: a std-only, hand-rolled source
//! scanner that flags the *code patterns* which historically break the
//! guarantee, before any simulation runs.
//!
//! [`RunOutcome`]: ../ffd2d_core/struct.RunOutcome.html
//!
//! ## Rules
//!
//! | rule | invariant | guarded at runtime by |
//! |------|-----------|----------------------|
//! | `ordered-iteration` | no `HashMap`/`HashSet` whose iteration order can escape in deterministic crates | `engine_equivalence`, `medium_equivalence` |
//! | `wall-clock` | `Instant::now`/`SystemTime` only in telemetry/bench/experiments | `telemetry` (outcome-neutrality) |
//! | `rng-discipline` | seed arithmetic and RNG construction live in `ffd2d_sim::rng`; draws route through a `StreamId` | `determinism`, `chaos` |
//! | `counter-discipline` | `Counters` fields bump through the saturating helpers, never raw `+=` | `trace` (tally↔counter reconciliation) |
//! | `panic-discipline` | no `unwrap()`/`expect(` in engine/medium hot paths | all suites (a panic is the loudest nondeterminism) |
//! | `crate-hygiene` | every crate carries `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` | — |
//!
//! Two meta rules keep suppressions honest: `bare-allow` (an allow
//! without a reason string) and `unused-allow` (an allow that suppressed
//! nothing this run).
//!
//! ## Suppression
//!
//! Findings are suppressed by an explicit, auditable inline comment on
//! the same line or the line directly above:
//!
//! ```text
//! // ffd2d-lint: allow(ordered-iteration) — lookup-only; order never escapes
//! index: HashMap<u64, u32>,
//! ```
//!
//! The reason (after `—` or `--`) is mandatory.
//!
//! ## Scope and limitations
//!
//! The scanner walks `crates/*/src/**/*.rs` plus the facade's `src/`.
//! Test code (`#[cfg(test)]` modules, `#[test]` functions, `tests/`
//! directories) is exempt from all rules except `crate-hygiene`:
//! tests may clock, seed ad-hoc RNGs, and unwrap freely. `vendor/` is
//! never scanned — the stubs there mirror external crate APIs verbatim.
//!
//! This is a lightweight tokenizer, not a type checker (`syn` is not
//! available offline — the vendored deps are stubs). It tracks hash
//! containers by binding-name heuristics and pattern-matches token
//! sequences, so renaming a `HashMap` binding through an opaque alias
//! can evade it. The point is not adversarial soundness but catching
//! the accidental `for … in map` or `Instant::now()` that review
//! misses — cheaply, on every push, over the whole workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod rules;
pub mod tokenizer;

use tokenizer::{tokenize, AllowDirective, Tok};

/// All enforced rule names, in report order.
pub const RULES: &[&str] = &[
    "ordered-iteration",
    "wall-clock",
    "rng-discipline",
    "counter-discipline",
    "panic-discipline",
    "crate-hygiene",
    "bare-allow",
    "unused-allow",
];

/// One diagnostic: a named rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Path relative to the scanned root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of a scan: findings plus bookkeeping for the report footer.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of allow directives that suppressed at least one finding.
    pub allows_used: usize,
}

impl Report {
    /// True when the tree lints clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Hand-rolled JSON rendering (the workspace convention — vendored
    /// serde is a stub without a JSON backend).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"allows_used\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.allows_used,
            self.is_clean()
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Which crate a source file belongs to, for rule scoping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileScope {
    /// Crate directory name (`core`, `sim`, …) or `ffd2d` for the
    /// facade's `src/`.
    pub crate_name: String,
    /// Path relative to the scan root, `/`-separated.
    pub rel_path: String,
    /// True for the crate's `src/lib.rs` (hygiene-rule target).
    pub is_lib_root: bool,
}

impl FileScope {
    /// Derive the scope of `rel_path` (already `/`-separated).
    pub fn from_rel_path(rel_path: &str) -> FileScope {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let (crate_name, is_lib_root) = if parts.len() >= 4 && parts[0] == "crates" {
            (
                parts[1].to_string(),
                rel_path == format!("crates/{}/src/lib.rs", parts[1]),
            )
        } else {
            ("ffd2d".to_string(), rel_path == "src/lib.rs")
        };
        FileScope {
            crate_name,
            rel_path: rel_path.to_string(),
            is_lib_root,
        }
    }
}

/// A tokenized source file ready for rule passes.
pub struct SourceFile {
    /// Scoping info (crate, relative path).
    pub scope: FileScope,
    /// Raw text (hygiene rule and directive checks read it directly).
    pub text: String,
    /// Code tokens (comments and string contents stripped).
    pub toks: Vec<Tok>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: Vec<bool>,
    /// Allow directives keyed by the line they sit on.
    pub allows: BTreeMap<u32, AllowDirective>,
}

impl SourceFile {
    /// Tokenize `text` under `scope`.
    pub fn parse(scope: FileScope, text: String) -> SourceFile {
        let (toks, allows) = tokenize(&text);
        let in_test = mark_test_regions(&toks);
        SourceFile {
            scope,
            text,
            toks,
            in_test,
            allows,
        }
    }
}

/// Mark token spans covered by `#[cfg(test)]` / `#[test]` attributes:
/// the attribute itself plus the item that follows (brace-matched block,
/// or up to `;` for block-less items).
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // Collect the attribute token span.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut attr_end = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            attr_end = Some(j);
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(attr_end) = attr_end else { break };
            let is_test_attr = toks[i + 2..attr_end].iter().any(|t| t.text == "test");
            if is_test_attr {
                // Swallow any further attributes, then the item: to the
                // matching `}` of its first brace, or to a `;` if one
                // comes first (block-less item).
                let mut k = attr_end + 1;
                let mut end = toks.len();
                let mut brace_depth = 0usize;
                let mut entered = false;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            brace_depth += 1;
                            entered = true;
                        }
                        "}" => {
                            brace_depth = brace_depth.saturating_sub(1);
                            if entered && brace_depth == 0 {
                                end = k + 1;
                                break;
                            }
                        }
                        ";" if !entered => {
                            end = k + 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                for flag in in_test.iter_mut().take(end.min(toks.len())).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Scan the whole workspace rooted at `root`: `crates/*/src/**/*.rs`
/// plus the facade's `src/**/*.rs`. `vendor/`, `tests/`, `target/` are
/// never visited.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, &mut files)?;
    }
    files.sort();
    scan_files(root, &files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Scan an explicit file list. Paths must live under `root`; rule
/// scoping is derived from each file's path relative to it.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(path)?;
        let source = SourceFile::parse(FileScope::from_rel_path(&rel), text);
        report.files_scanned += 1;
        let (mut findings, used) = rules::check_file(&source);
        report.allows_used += used;
        report.findings.append(&mut findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(rel: &str, text: &str) -> SourceFile {
        SourceFile::parse(FileScope::from_rel_path(rel), text.to_string())
    }

    #[test]
    fn scope_derivation() {
        let s = FileScope::from_rel_path("crates/core/src/world.rs");
        assert_eq!(s.crate_name, "core");
        assert!(!s.is_lib_root);
        let s = FileScope::from_rel_path("crates/sim/src/lib.rs");
        assert!(s.is_lib_root);
        let s = FileScope::from_rel_path("src/lib.rs");
        assert_eq!(s.crate_name, "ffd2d");
        assert!(s.is_lib_root);
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = parse(
            "crates/core/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n",
        );
        let texts: Vec<(&str, bool)> = src
            .toks
            .iter()
            .zip(&src.in_test)
            .map(|(t, &b)| (t.text.as_str(), b))
            .collect();
        assert!(texts.contains(&("live", false)));
        assert!(texts.contains(&("tests", true)));
        assert!(texts.contains(&("t", true)));
        assert!(texts.contains(&("live2", false)));
    }

    #[test]
    fn json_report_shape() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "wall-clock",
            file: "crates/core/src/x.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
        });
        r.files_scanned = 1;
        let json = r.to_json();
        assert!(json.contains("\"rule\": \"wall-clock\""));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"clean\": false"));
    }
}
