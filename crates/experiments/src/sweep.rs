//! The Figs. 3 & 4 Monte-Carlo sweep.
//!
//! The paper's two result figures come from the same simulations:
//!
//! * **Fig. 3** — mean convergence time versus number of nodes, for the
//!   proposed ST method and the FST baseline;
//! * **Fig. 4** — mean number of control-message exchanges until
//!   convergence, same axes.
//!
//! [`run_paper_sweep`] runs `trials` independent deployments per node
//! count, executes *both* protocols in each (paired on the identical
//! world: same positions, shadowing, fading — so the comparison is a
//! matched-pairs design), and reduces to the two figures plus a
//! markdown table for EXPERIMENTS.md.
//!
//! Trials that do not converge within the horizon are **censored at the
//! horizon** (the value plotted is a lower bound) and reported in the
//! `censored` columns — at large populations FST routinely fails to
//! converge at all, which is itself the paper's point.

use serde::{Deserialize, Serialize};

use ffd2d_baseline::FstProtocol;
use ffd2d_core::{
    EngineMode, FaultPlan, GainCacheMode, Parallelism, ScenarioConfig, StProtocol, World,
};
use ffd2d_metrics::{Figure, Series, Summary, Table};
use ffd2d_parallel::{run_trials, SweepConfig};
use ffd2d_sim::time::SlotDuration;

/// Sweep parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepParams {
    /// Node counts (the x-axis of Figs. 3–4).
    pub node_counts: Vec<usize>,
    /// Monte-Carlo trials per node count.
    pub trials: u32,
    /// Simulation horizon per trial (censoring point).
    pub horizon: SlotDuration,
    /// Master seed.
    pub master_seed: u64,
    /// Engine execution strategy. Outcome-neutral (locked by
    /// `tests/engine_equivalence.rs`): the published CSVs are identical
    /// under both modes, only wall clock changes.
    pub engine: EngineMode,
    /// Intra-run medium parallelism. Also outcome-neutral. `Off` by
    /// default: the sweep already parallelizes across trials, and a
    /// second layer would oversubscribe the cores. Single-run
    /// invocations (`--trials 1`) flip this to `Auto` via
    /// [`crate::sweep_params_from_args`].
    pub medium: Parallelism,
    /// Fault-injection spec (`--faults`): a churn preset name or a
    /// `.json` plan path, resolved per node count via
    /// [`FaultPlan::resolve`]. `None` runs the clean sweep (and is then
    /// provably outcome-neutral — the CSVs are bit-identical to a build
    /// without the chaos subsystem at all).
    pub faults: Option<String>,
    /// Epoch-keyed gain cache in the fast medium. Outcome-neutral
    /// (locked by `tests/gain_cache.rs`): `Off` recomputes every mean
    /// link gain per slot, `Epoch` (the default) reuses rows across
    /// slots until positions or membership change. Only wall clock
    /// moves.
    pub gain_cache: GainCacheMode,
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams {
            node_counts: vec![50, 100, 200, 400, 600, 800, 1000],
            trials: 5,
            horizon: SlotDuration(30_000),
            master_seed: 0x0F19_3D2D,
            engine: EngineMode::default(),
            medium: Parallelism::default(),
            faults: None,
            gain_cache: GainCacheMode::default(),
        }
    }
}

impl SweepParams {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> SweepParams {
        SweepParams {
            node_counts: vec![20, 50, 100],
            trials: 2,
            horizon: SlotDuration(30_000),
            master_seed: 7,
            engine: EngineMode::default(),
            medium: Parallelism::default(),
            faults: None,
            gain_cache: GainCacheMode::default(),
        }
    }
}

/// Per-(protocol, node-count) reduced results.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellStats {
    /// Convergence time in ms (censored at the horizon).
    pub time_ms: Summary,
    /// Total control messages transmitted.
    pub messages: Summary,
    /// Fraction of reception attempts lost to preamble collisions.
    pub collision_rate: Summary,
    /// Fraction of reception attempts lost below the detection
    /// threshold (the channel's share of the loss).
    pub rx_loss: Summary,
    /// Trials that failed to converge within the horizon.
    pub censored: u32,
    /// Re-convergence time after the last scheduled fault, in ms (only
    /// trials that re-converged contribute; empty on clean sweeps).
    pub reconv_ms: Summary,
    /// Trials that re-converged after the last scheduled fault.
    pub reconverged: u32,
    /// Frames dropped by fault injection, per trial.
    pub fault_drops: Summary,
}

/// The complete sweep output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Parameters the sweep ran with.
    pub params: SweepParams,
    /// Per node count: `(n, ST stats, FST stats)`.
    pub cells: Vec<(usize, CellStats, CellStats)>,
}

/// One trial's paired raw outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PairedOutcome {
    st_time: u64,
    st_msgs: u64,
    st_collision: f64,
    st_rx_loss: f64,
    st_converged: bool,
    st_reconv_ms: Option<u64>,
    st_fault_drops: u64,
    fst_time: u64,
    fst_msgs: u64,
    fst_collision: f64,
    fst_rx_loss: f64,
    fst_converged: bool,
    fst_reconv_ms: Option<u64>,
    fst_fault_drops: u64,
}

/// Run the full paired sweep.
pub fn run_paper_sweep(params: &SweepParams) -> SweepReport {
    let cfg = SweepConfig {
        master_seed: params.master_seed,
        trials: params.trials,
    };
    let horizon = params.horizon;
    let engine = params.engine;
    let medium = params.medium;
    let gain_cache = params.gain_cache;
    // Presets scale with the cell's population and horizon, so the plan
    // is resolved once per node count, up front — a bad spec fails the
    // whole sweep before any trial runs.
    let plans: Vec<FaultPlan> = params
        .node_counts
        .iter()
        .map(|&n| match &params.faults {
            Some(spec) => FaultPlan::resolve(spec, n, horizon.0)
                .unwrap_or_else(|e| panic!("--faults {spec:?}: {e}")),
            None => FaultPlan::none(),
        })
        .collect();
    let plans = &plans;
    let grouped = run_trials(&params.node_counts, &cfg, |&n, ctx| {
        let scenario = ScenarioConfig::table1(n)
            .seeded(ctx.seed)
            .with_max_slots(horizon)
            .with_engine(engine)
            .with_parallelism(medium)
            .with_gain_cache(gain_cache)
            .with_faults(plans[ctx.param_index].clone());
        let world = World::new(&scenario);
        let st = StProtocol::run_in(&world);
        let fst = FstProtocol::run_in(&world);
        PairedOutcome {
            st_time: st.time_or(horizon).as_millis(),
            st_msgs: st.messages(),
            st_collision: st.counters.collision_rate(),
            st_rx_loss: st.counters.rx_loss_rate(),
            st_converged: st.converged(),
            st_reconv_ms: st.reconvergence_time.map(|d| d.as_millis()),
            st_fault_drops: st.counters.fault_dropped_frames,
            fst_time: fst.time_or(horizon).as_millis(),
            fst_msgs: fst.messages(),
            fst_collision: fst.counters.collision_rate(),
            fst_rx_loss: fst.counters.rx_loss_rate(),
            fst_converged: fst.converged(),
            fst_reconv_ms: fst.reconvergence_time.map(|d| d.as_millis()),
            fst_fault_drops: fst.counters.fault_dropped_frames,
        }
    });

    let cells = params
        .node_counts
        .iter()
        .zip(grouped)
        .map(|(&n, outcomes)| {
            let mut st = CellStats {
                time_ms: Summary::new(),
                messages: Summary::new(),
                collision_rate: Summary::new(),
                rx_loss: Summary::new(),
                censored: 0,
                reconv_ms: Summary::new(),
                reconverged: 0,
                fault_drops: Summary::new(),
            };
            let mut fst = st;
            for o in outcomes {
                st.time_ms.push(o.st_time as f64);
                st.messages.push(o.st_msgs as f64);
                st.collision_rate.push(o.st_collision);
                st.rx_loss.push(o.st_rx_loss);
                st.censored += u32::from(!o.st_converged);
                if let Some(r) = o.st_reconv_ms {
                    st.reconv_ms.push(r as f64);
                    st.reconverged += 1;
                }
                st.fault_drops.push(o.st_fault_drops as f64);
                fst.time_ms.push(o.fst_time as f64);
                fst.messages.push(o.fst_msgs as f64);
                fst.collision_rate.push(o.fst_collision);
                fst.rx_loss.push(o.fst_rx_loss);
                fst.censored += u32::from(!o.fst_converged);
                if let Some(r) = o.fst_reconv_ms {
                    fst.reconv_ms.push(r as f64);
                    fst.reconverged += 1;
                }
                fst.fault_drops.push(o.fst_fault_drops as f64);
            }
            (n, st, fst)
        })
        .collect();
    SweepReport {
        params: params.clone(),
        cells,
    }
}

impl SweepReport {
    fn figure(&self, title: &str, y_axis: &str, pick: impl Fn(&CellStats) -> Summary) -> Figure {
        let mut st = Series::new("ST (proposed)");
        let mut fst = Series::new("FST (Chao et al.)");
        for &(n, st_c, fst_c) in &self.cells {
            let s = pick(&st_c);
            st.push_with_error(n as f64, s.mean(), s.ci95_half_width());
            let f = pick(&fst_c);
            fst.push_with_error(n as f64, f.mean(), f.ci95_half_width());
        }
        let mut fig = Figure::new(title, "number of nodes", y_axis);
        fig.series.push(st);
        fig.series.push(fst);
        fig
    }

    /// Fig. 3 — convergence time (ms) vs. node count.
    pub fn fig3(&self) -> Figure {
        self.figure(
            "Fig. 3 — convergence time, ST vs FST",
            "convergence time (ms)",
            |c| c.time_ms,
        )
    }

    /// Fig. 4 — message exchanges vs. node count.
    pub fn fig4(&self) -> Figure {
        self.figure(
            "Fig. 4 — average message exchanges, ST vs FST",
            "messages until convergence",
            |c| c.messages,
        )
    }

    /// The `results/fig3.csv` export: the Fig. 3 convergence-time means
    /// plus the robustness columns a faulted sweep (`--faults`) adds —
    /// per-protocol re-convergence time after the last scheduled fault
    /// and the count of trials that re-converged. On a clean sweep the
    /// re-convergence columns are `0.000` / `0` throughout.
    pub fn fig3_csv(&self) -> String {
        let mut out = String::from(
            "n,st_time_ms_mean,st_time_ms_ci95,fst_time_ms_mean,fst_time_ms_ci95,\
             st_censored,fst_censored,st_reconv_ms_mean,fst_reconv_ms_mean,\
             st_reconverged,fst_reconverged\n",
        );
        for &(n, st, fst) in &self.cells {
            out.push_str(&format!(
                "{n},{:.3},{:.3},{:.3},{:.3},{},{},{:.3},{:.3},{},{}\n",
                st.time_ms.mean(),
                st.time_ms.ci95_half_width(),
                fst.time_ms.mean(),
                fst.time_ms.ci95_half_width(),
                st.censored,
                fst.censored,
                st.reconv_ms.mean(),
                fst.reconv_ms.mean(),
                st.reconverged,
                fst.reconverged,
            ));
        }
        out
    }

    /// The `results/fig4.csv` export: the Fig. 4 message means plus the
    /// loss-attribution columns (collision rate and below-threshold rx
    /// loss per protocol) that diagnose *why* message counts move — at
    /// large n the FST mesh drowns in collisions while ST's staggered
    /// tree traffic does not. A faulted sweep also reports the injected
    /// frame drops and the re-convergence means (zero on clean sweeps).
    pub fn fig4_csv(&self) -> String {
        let mut out = String::from(
            "n,st_msgs_mean,st_msgs_ci95,fst_msgs_mean,fst_msgs_ci95,\
             st_collision_rate,fst_collision_rate,st_rx_loss,fst_rx_loss,\
             st_fault_drops,fst_fault_drops,st_reconv_ms_mean,fst_reconv_ms_mean\n",
        );
        for &(n, st, fst) in &self.cells {
            out.push_str(&format!(
                "{n},{:.3},{:.3},{:.3},{:.3},{:.6},{:.6},{:.6},{:.6},{:.1},{:.1},{:.3},{:.3}\n",
                st.messages.mean(),
                st.messages.ci95_half_width(),
                fst.messages.mean(),
                fst.messages.ci95_half_width(),
                st.collision_rate.mean(),
                fst.collision_rate.mean(),
                st.rx_loss.mean(),
                fst.rx_loss.mean(),
                st.fault_drops.mean(),
                fst.fault_drops.mean(),
                st.reconv_ms.mean(),
                fst.reconv_ms.mean(),
            ));
        }
        out
    }

    /// Markdown table for EXPERIMENTS.md.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "n",
            "ST time ms (±ci95)",
            "FST time ms (±ci95)",
            "ST msgs",
            "FST msgs",
            "ST censored",
            "FST censored",
        ]);
        for &(n, st, fst) in &self.cells {
            t.push_row([
                n.to_string(),
                format!(
                    "{:.0} (±{:.0})",
                    st.time_ms.mean(),
                    st.time_ms.ci95_half_width()
                ),
                format!(
                    "{:.0} (±{:.0})",
                    fst.time_ms.mean(),
                    fst.time_ms.ci95_half_width()
                ),
                format!("{:.0}", st.messages.mean()),
                format!("{:.0}", fst.messages.mean()),
                format!("{}/{}", st.censored, self.params.trials),
                format!("{}/{}", fst.censored, self.params.trials),
            ]);
        }
        t
    }

    /// The first node count at which the ST mean drops strictly below
    /// the FST mean for the given metric — the crossover the paper's
    /// figures highlight.
    pub fn crossover(&self, messages: bool) -> Option<usize> {
        self.cells
            .iter()
            .find(|&&(_, st, fst)| {
                if messages {
                    st.messages.mean() < fst.messages.mean()
                } else {
                    st.time_ms.mean() < fst.time_ms.mean()
                }
            })
            .map(|&(n, _, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_full_shape() {
        let report = run_paper_sweep(&SweepParams::quick());
        assert_eq!(report.cells.len(), 3);
        for &(_, st, fst) in &report.cells {
            assert_eq!(st.time_ms.count(), 2);
            assert_eq!(fst.time_ms.count(), 2);
            assert!(st.messages.mean() > 0.0);
            assert!(fst.messages.mean() > 0.0);
        }
        let fig3 = report.fig3();
        assert_eq!(fig3.series.len(), 2);
        assert_eq!(fig3.series[0].points.len(), 3);
        let csv = report.fig4().to_csv();
        assert!(csv.contains("ST (proposed)"));
        let fig4 = report.fig4_csv();
        assert!(fig4.starts_with("n,st_msgs_mean"));
        assert!(fig4.contains("st_collision_rate"));
        assert_eq!(fig4.lines().count(), 4);
        let fig3 = report.fig3_csv();
        assert!(fig3.starts_with("n,st_time_ms_mean"));
        assert!(fig3.contains("st_reconv_ms_mean"));
        assert_eq!(fig3.lines().count(), 4);
        // Clean sweep: the robustness columns stay quiet.
        for line in fig3.lines().skip(1) {
            assert!(line.ends_with(",0.000,0.000,0,0"), "{line}");
        }
        for &(_, st, fst) in &report.cells {
            assert!(st.collision_rate.mean() >= 0.0 && st.collision_rate.mean() < 1.0);
            assert!(fst.rx_loss.mean() >= 0.0 && fst.rx_loss.mean() <= 1.0);
        }
        let table = report.to_table();
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_paper_sweep(&SweepParams::quick());
        let b = run_paper_sweep(&SweepParams::quick());
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.1.time_ms.mean(), y.1.time_ms.mean());
            assert_eq!(x.2.messages.mean(), y.2.messages.mean());
        }
    }

    #[test]
    fn sweep_csvs_identical_under_all_engines() {
        // The engine flag is outcome-neutral: the published figure CSVs
        // must not depend on it.
        let mut p = SweepParams::quick();
        p.node_counts = vec![20, 50];
        p.engine = EngineMode::Stepped;
        let stepped = run_paper_sweep(&p);
        p.engine = EngineMode::EventDriven;
        let event = run_paper_sweep(&p);
        p.engine = EngineMode::Adaptive;
        let adaptive = run_paper_sweep(&p);
        assert_eq!(stepped.fig3().to_csv(), event.fig3().to_csv());
        assert_eq!(stepped.fig4_csv(), event.fig4_csv());
        assert_eq!(stepped.fig3().to_csv(), adaptive.fig3().to_csv());
        assert_eq!(stepped.fig4_csv(), adaptive.fig4_csv());
    }

    #[test]
    fn sweep_csvs_identical_under_medium_parallelism() {
        // The intra-run medium sharding is outcome-neutral too: forcing
        // it on cannot move the published CSVs.
        let mut p = SweepParams::quick();
        p.node_counts = vec![20, 50];
        let off = run_paper_sweep(&p);
        p.medium = Parallelism::Fixed(2);
        let sharded = run_paper_sweep(&p);
        assert_eq!(off.fig3().to_csv(), sharded.fig3().to_csv());
        assert_eq!(off.fig4_csv(), sharded.fig4_csv());
    }

    #[test]
    fn sweep_csvs_identical_with_gain_cache_off() {
        // The epoch-keyed gain cache is outcome-neutral: disabling it
        // recomputes every mean link gain but cannot move the CSVs.
        let mut p = SweepParams::quick();
        p.node_counts = vec![20, 50];
        let cached = run_paper_sweep(&p);
        p.gain_cache = GainCacheMode::Off;
        let uncached = run_paper_sweep(&p);
        assert_eq!(cached.fig3().to_csv(), uncached.fig3().to_csv());
        assert_eq!(cached.fig4_csv(), uncached.fig4_csv());
    }

    #[test]
    fn small_n_favors_fst_messages() {
        // The left side of Fig. 4: mesh beats tree on messages at tiny n.
        let params = SweepParams {
            node_counts: vec![20],
            trials: 2,
            horizon: SlotDuration(60_000),
            master_seed: 3,
            engine: EngineMode::default(),
            medium: Parallelism::default(),
            faults: None,
            gain_cache: GainCacheMode::default(),
        };
        let report = run_paper_sweep(&params);
        let (_, st, fst) = report.cells[0];
        assert!(fst.messages.mean() < st.messages.mean());
    }
}
