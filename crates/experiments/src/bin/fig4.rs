//! Regenerates the paper's Fig. 4 (average number of message exchanges
//! vs. number of nodes, ST vs. FST). Same sweep as fig3.

use ffd2d_experiments::sweep::run_paper_sweep;

fn main() {
    let params = ffd2d_experiments::sweep_params_from_args();
    eprintln!(
        "running paired sweep: n = {:?}, {} trials, horizon {} slots ...",
        params.node_counts, params.trials, params.horizon.0
    );
    let report = run_paper_sweep(&params);
    println!("{}", report.to_table().to_markdown());
    if let Some(x) = report.crossover(true) {
        println!("message crossover (ST below FST) at n = {x}");
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig3.csv", report.fig3().to_csv());
    let _ = std::fs::write("results/fig4.csv", report.fig4().to_csv());
    eprintln!("wrote results/fig3.csv and results/fig4.csv (shared sweep)");
}
