//! Regenerates the paper's Fig. 4 (average number of message exchanges
//! vs. number of nodes, ST vs. FST). Same sweep as fig3; fig4.csv also
//! carries the loss-attribution columns (collision rate, below-threshold
//! rx loss) that explain the message-count divergence.
//!
//! Usage: fig4 [--quick] [--trials N] [--max-n M] [--nodes LIST] [--horizon SLOTS]
//!             [--engine stepped|event|adaptive] [--medium-workers off|auto|K]
//!             [--faults churn-light|churn-heavy|lossy|PLAN.json]
//!             [--trace DIR] [--telemetry DIR]
//! With `--telemetry DIR`, replays trial 0 of each cell self-profiled:
//! run manifests per cell plus a sweep rollup under DIR (see
//! `perf_inspect`). `--engine` selects the slot engine (default: adaptive);
//! `--medium-workers` shards per-slot medium resolution inside a run
//! (default: off for sweeps, auto when `--trials 1`). Both knobs are
//! outcome-neutral: the CSVs are bit-identical under every setting,
//! only wall clock differs. `--faults` injects a seeded churn / frame-
//! loss schedule; fig4.csv then also reports injected frame drops and
//! re-convergence means.

use ffd2d_experiments::sweep::run_paper_sweep;

fn main() {
    // Validate `--trace` / `--telemetry` usage before paying for the
    // sweep.
    let trace_dir = ffd2d_experiments::trace_dir_from_args();
    let telemetry_dir = ffd2d_experiments::telemetry_dir_from_args();
    let params = ffd2d_experiments::sweep_params_from_args();
    eprintln!(
        "running paired sweep: n = {:?}, {} trials, horizon {} slots ...",
        params.node_counts, params.trials, params.horizon.0
    );
    let report = run_paper_sweep(&params);
    println!("{}", report.to_table().to_markdown());
    if let Some(x) = report.crossover(true) {
        println!("message crossover (ST below FST) at n = {x}");
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig3.csv", report.fig3_csv());
    let _ = std::fs::write("results/fig4.csv", report.fig4_csv());
    eprintln!("wrote results/fig3.csv and results/fig4.csv (shared sweep)");
    if let Some(dir) = trace_dir {
        match ffd2d_experiments::write_sweep_traces(&params, &dir) {
            Ok(paths) => eprintln!(
                "traced trial 0 of each cell: {} JSONL logs under {} + timeline CSVs under results/",
                paths.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("--trace failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = telemetry_dir {
        match ffd2d_experiments::write_sweep_telemetry(&params, &dir) {
            Ok(paths) => eprintln!(
                "profiled trial 0 of each cell: {} manifests under {} (render with perf_inspect)",
                paths.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("--telemetry failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
