//! Regenerates the paper's Table I from the live configuration
//! defaults (experiment E1).

fn main() {
    println!("{}", ffd2d_experiments::table1::render().to_markdown());
}
