//! §V complexity claim: O(n²) basic FFA vs. O(n log n) ordered FFA.

use ffd2d_experiments::complexity::{run, ComplexityParams};

fn main() {
    let report = run(&ComplexityParams::default());
    println!("{}", report.to_table().to_markdown());
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/complexity.csv", report.to_figure().to_csv());
    eprintln!("wrote results/complexity.csv");
}
