//! Render a hot-path breakdown from a telemetry run manifest written by
//! `--telemetry` (see `fig3 --help` text).
//!
//! Usage: perf_inspect <manifest.json> [more.json ...]
//!
//! For each manifest, prints the config echo, the total wall clock, a
//! stage table (stage, calls, total ms, p50/p95/p99, % of run — timers
//! sorted by total time), the work counters, and the workload-shape
//! observations. Durations vary run to run, but at the same seed the
//! *structure* — every counter and every timer's call count — is
//! deterministic, so two manifests of the same cell disagree only in
//! the nanosecond columns.

use std::process::ExitCode;

use ffd2d_telemetry::{HistogramSummary, ManifestSummary};

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: perf_inspect <manifest.json> [more.json ...]");
        return ExitCode::from(2);
    }
    let mut first = true;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf_inspect: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let manifest = match ManifestSummary::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("perf_inspect: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if !first {
            println!();
        }
        first = false;
        print_manifest(path, &manifest);
    }
    ExitCode::SUCCESS
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn print_manifest(path: &str, m: &ManifestSummary) {
    println!("manifest: {path}");
    println!("run: {}", m.label);
    let config: Vec<String> = m.config.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("config: {}", config.join(" "));
    println!("wall clock: {:.3} ms", ms(m.wall_clock_ns));

    // Stage table: every timer, heaviest first. "% of run" is against
    // the total wall clock; stages nest (engine.run_ns contains the
    // slot timers, which contain medium.resolve_ns), so the column is
    // per-stage inclusive time, not a partition of 100%.
    let mut timers: Vec<&HistogramSummary> = m.timers.iter().collect();
    timers.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
    println!("\nhot-path breakdown (inclusive per stage):");
    println!(
        "  {:<24} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "stage", "calls", "total ms", "p50 ns", "p95 ns", "p99 ns", "% run"
    );
    if timers.is_empty() {
        println!("  (no timers recorded)");
    }
    for t in timers {
        let pct = if m.wall_clock_ns > 0 {
            100.0 * t.total as f64 / m.wall_clock_ns as f64
        } else {
            0.0
        };
        println!(
            "  {:<24} {:>10} {:>12.3} {:>10} {:>10} {:>10} {:>7.1}%",
            t.name,
            t.count,
            ms(t.total),
            t.p50,
            t.p95,
            t.p99,
            pct
        );
    }

    println!("\ncounters:");
    if m.counters.is_empty() {
        println!("  (none)");
    }
    for (k, v) in &m.counters {
        println!("  {k:<28} {v:>14}");
    }

    if !m.observations.is_empty() {
        println!("\nworkload shape (observations):");
        println!(
            "  {:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "metric", "samples", "p50", "p95", "p99", "max"
        );
        for o in &m.observations {
            println!(
                "  {:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
                o.name, o.count, o.p50, o.p95, o.p99, o.max
            );
        }
    }

    // Derived headline ratios. A family that was instrumented but saw
    // zero lookups renders `n/a` — never `0.0%` or NaN. A family whose
    // keys are absent entirely (e.g. `--gain-cache off` emits no
    // gain-cache counters) is skipped.
    if m.has_counter("medium.gain_cache_hits") || m.has_counter("medium.gain_cache_misses") {
        let hits = m.counter("medium.gain_cache_hits");
        let fills = m.counter("medium.gain_cache_misses");
        print!("\ngain-cache row hit rate: ");
        if hits + fills > 0 {
            println!(
                "{:.1}% ({hits} rows served / {fills} rows filled)",
                100.0 * hits as f64 / (hits + fills) as f64
            );
        } else {
            println!("n/a (no lookups)");
        }
    }
    if m.has_counter("engine.slots_materialized") || m.has_counter("engine.slots_skipped") {
        let materialized = m.counter("engine.slots_materialized");
        let skipped = m.counter("engine.slots_skipped");
        if materialized + skipped > 0 {
            println!(
                "slots: {materialized} materialized, {skipped} skipped ({:.1}% idle warped past)",
                100.0 * skipped as f64 / (materialized + skipped) as f64
            );
        } else {
            println!("slots: n/a (no slots ran)");
        }
    }
    // Wake-up scheduler health. Stale = pushed behind the clock and
    // dropped; coalesced = merged into an already-pending slot (with
    // the slot wheel, the old ~98% dense-cell stale rate shows up as
    // coalescing instead). A stepped run schedules no wakes, so the
    // family is absent and both lines render `n/a`.
    let scheduled = m.counter("engine.wakeups_scheduled");
    print!("stale-wakeup rate: ");
    if scheduled > 0 {
        let stale = m.counter("engine.wakeups_stale");
        println!(
            "{:.1}% ({stale} dropped / {scheduled} scheduled)",
            100.0 * stale as f64 / scheduled as f64
        );
    } else {
        println!("n/a (no wakes scheduled)");
    }
    print!("coalescing rate: ");
    if scheduled > 0 {
        let coalesced = m.counter("engine.coalesced_wakeups");
        println!(
            "{:.1}% ({coalesced} merged / {scheduled} scheduled)",
            100.0 * coalesced as f64 / scheduled as f64
        );
    } else {
        println!("n/a (no wakes scheduled)");
    }
    if m.has_counter("engine.cutover_transitions") {
        println!(
            "adaptive cutovers: {}",
            m.counter("engine.cutover_transitions")
        );
    }
}
