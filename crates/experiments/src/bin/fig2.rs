//! Regenerates an instance of the paper's Fig. 2 (the firefly spanning
//! tree over 17 UEs). Pass a seed to vary the deployment.

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let fig = ffd2d_experiments::fig2::build(seed);
    print!("{}", fig.rendering);
}
